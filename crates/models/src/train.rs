//! Training loops, evaluation and throughput measurement.

use crate::ar::ActionModel;
use crate::{ModelError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snappix_nn::{Adam, LrSchedule, Optimizer, Session};
use snappix_tensor::Tensor;
use snappix_video::Dataset;

/// Options shared by the action-recognition training loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Passes over the dataset.
    pub epochs: usize,
    /// Clips per gradient step.
    pub batch_size: usize,
    /// Peak Adam learning rate.
    pub lr: f32,
    /// Optional gradient-norm clip.
    pub clip_norm: Option<f32>,
    /// Enables warmup-cosine scheduling (the paper's ViT recipe shape).
    pub cosine_schedule: bool,
    /// Batch-order seed.
    pub seed: u64,
}

impl TrainOptions {
    /// A fast smoke configuration for tests and examples.
    pub fn quick() -> Self {
        TrainOptions {
            epochs: 2,
            batch_size: 8,
            lr: 2e-3,
            clip_norm: Some(5.0),
            cosine_schedule: false,
            seed: 11,
        }
    }

    /// The configuration the experiment harness uses (more epochs, cosine
    /// decay).
    pub fn experiment(epochs: usize) -> Self {
        TrainOptions {
            epochs,
            batch_size: 8,
            lr: 2e-3,
            clip_norm: Some(5.0),
            cosine_schedule: true,
            seed: 11,
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Cross-entropy loss after each gradient step.
    pub losses: Vec<f32>,
    /// Gradient steps taken.
    pub steps: usize,
}

impl TrainReport {
    /// Mean loss over the final quarter of training (a stable "final
    /// loss" estimate).
    pub fn final_loss(&self) -> f32 {
        if self.losses.is_empty() {
            return f32::NAN;
        }
        let tail = (self.losses.len() / 4).max(1);
        let slice = &self.losses[self.losses.len() - tail..];
        slice.iter().sum::<f32>() / slice.len() as f32
    }
}

/// Trains an action model with Adam + cross-entropy.
///
/// # Errors
///
/// Fails for an empty dataset, a zero batch size, or any graph error from
/// the model.
pub fn train_action_model(
    model: &mut dyn ActionModel,
    dataset: &Dataset,
    options: &TrainOptions,
) -> Result<TrainReport> {
    if dataset.is_empty() || options.batch_size == 0 || options.epochs == 0 {
        return Err(ModelError::Input {
            context: "training needs data, a batch size and at least one epoch".to_string(),
        });
    }
    let steps_per_epoch = dataset.len().div_ceil(options.batch_size);
    let total_steps = steps_per_epoch * options.epochs;
    let schedule = if options.cosine_schedule {
        Some(LrSchedule::WarmupCosine {
            base: options.lr,
            warmup_steps: (total_steps / 10).max(1),
            total_steps,
        })
    } else {
        None
    };
    let mut optimizer = Adam::new(options.lr);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut losses = Vec::with_capacity(total_steps);
    for _epoch in 0..options.epochs {
        let offset = rng.random_range(0..dataset.len());
        for step in 0..steps_per_epoch {
            let global_step = losses.len();
            if let Some(s) = &schedule {
                optimizer.set_learning_rate(s.at(global_step));
            }
            let batch = dataset.batch(offset + step * options.batch_size, options.batch_size);
            let (loss, mut grads) = {
                let mut sess = Session::new(model.store());
                let logits = model.build_logits(&mut sess, &batch.videos)?;
                let loss_var = sess.graph.cross_entropy_logits(logits, &batch.labels)?;
                let loss = sess
                    .graph
                    .value(loss_var)
                    .item()
                    .map_err(ModelError::from)?;
                let grads = sess.backward(loss_var)?;
                (loss, grads)
            };
            if let Some(max_norm) = options.clip_norm {
                grads.clip_global_norm(max_norm);
            }
            optimizer.step(model.store_mut(), &grads)?;
            losses.push(loss);
        }
    }
    Ok(TrainReport {
        steps: losses.len(),
        losses,
    })
}

/// Clip-1 crop-1 accuracy (%) of `model` over the whole `dataset`,
/// evaluated with one inference session per shard across the shared
/// worker pool ([`snappix_tensor::parallel`]).
///
/// The worker count follows `SNAPPIX_THREADS` / the scoped
/// [`with_threads`](snappix_tensor::parallel::with_threads) override —
/// an 8-core box uses 8 shards (the historical implementation capped
/// itself at 4), and `SNAPPIX_THREADS=1` makes the sweep
/// deterministic-serial.
///
/// # Errors
///
/// Fails for an empty dataset or any graph error from the model.
pub fn evaluate_accuracy(model: &dyn ActionModel, dataset: &Dataset) -> Result<f32> {
    if dataset.is_empty() {
        return Err(ModelError::Input {
            context: "evaluation needs a non-empty dataset".to_string(),
        });
    }
    let shards = snappix_tensor::parallel::par_ranges(dataset.len(), |range| -> Result<usize> {
        let mut correct = 0usize;
        const EVAL_BATCH: usize = 8;
        let mut i = range.start;
        while i < range.end {
            let size = EVAL_BATCH.min(range.end - i);
            let mut videos = Vec::with_capacity(size);
            let mut labels = Vec::with_capacity(size);
            for k in 0..size {
                let s = dataset.sample(i + k);
                videos.push(s.video.into_frames());
                labels.push(s.label);
            }
            let refs: Vec<&Tensor> = videos.iter().collect();
            let batch = Tensor::stack(&refs, 0).map_err(ModelError::from)?;
            let mut sess = Session::inference(model.store());
            let logits = model.build_logits(&mut sess, &batch)?;
            let pred = sess
                .graph
                .value(logits)
                .argmax_axis(1)
                .map_err(ModelError::from)?;
            correct += pred.iter().zip(&labels).filter(|(p, l)| *p == *l).count();
            i += size;
        }
        Ok(correct)
    });
    let mut correct = 0usize;
    for shard in shards {
        correct += shard?;
    }
    Ok(100.0 * correct as f32 / dataset.len() as f32)
}

/// Measures inference throughput (clips/second) of `model` on a fixed
/// clip batch, mirroring the paper's "inference/sec" column of Table I.
///
/// # Errors
///
/// Fails when the batch does not match the model.
pub fn measure_inference_rate(
    model: &dyn ActionModel,
    videos: &Tensor,
    iterations: usize,
) -> Result<f64> {
    if iterations == 0 {
        return Err(ModelError::Input {
            context: "need at least one iteration".to_string(),
        });
    }
    let batch = videos.shape()[0];
    // A pooled session mirrors how the umbrella `Pipeline` serves
    // inference: graph and binding allocations are reused across calls.
    let mut pool = snappix_nn::SessionPool::new();
    // Warm-up pass (graph allocation paths, caches).
    {
        let mut sess = pool.inference(model.store());
        model.build_logits(&mut sess, videos)?;
        pool.reclaim(sess);
    }
    let start = std::time::Instant::now();
    for _ in 0..iterations {
        let mut sess = pool.inference(model.store());
        model.build_logits(&mut sess, videos)?;
        pool.reclaim(sess);
    }
    let elapsed = start.elapsed().as_secs_f64();
    Ok(batch as f64 * iterations as f64 / elapsed.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SnapPixAr, VitConfig};
    use snappix_ce::patterns;
    use snappix_video::{ssv2_like, ucf101_like};

    fn small_model(classes: usize) -> SnapPixAr {
        let mask = patterns::sparse_random(8, (8, 8), &mut StdRng::seed_from_u64(1)).unwrap();
        SnapPixAr::new(VitConfig::snappix_s(16, 16, classes), mask).unwrap()
    }

    #[test]
    fn training_reduces_loss() {
        let data = Dataset::new(ucf101_like(8, 16, 16), 32);
        let mut model = small_model(8);
        let report = train_action_model(
            &mut model,
            &data,
            &TrainOptions {
                epochs: 6,
                batch_size: 8,
                lr: 2e-3,
                clip_norm: Some(5.0),
                cosine_schedule: true,
                seed: 3,
            },
        )
        .unwrap();
        let early: f32 = report.losses[..4].iter().sum::<f32>() / 4.0;
        assert!(
            report.final_loss() < early,
            "loss should fall: {} -> {}",
            early,
            report.final_loss()
        );
        assert_eq!(report.steps, 6 * 4);
    }

    #[test]
    fn trained_model_beats_chance() {
        let data = Dataset::new(ucf101_like(8, 24, 24), 120);
        let (train, test) = data.split(0.8);
        let mut model = {
            let mask = patterns::sparse_random(8, (8, 8), &mut StdRng::seed_from_u64(1)).unwrap();
            SnapPixAr::new(VitConfig::snappix_s(24, 24, 8), mask).unwrap()
        };
        train_action_model(&mut model, &train, &TrainOptions::experiment(12)).unwrap();
        let acc = evaluate_accuracy(&model, &test).unwrap();
        // Chance is 12.5% on 8 classes.
        assert!(acc > 25.0, "trained accuracy {acc}% should beat chance");
    }

    /// Regression test for the hardcoded `.min(4)` thread cap: the sweep
    /// must produce the same accuracy at any worker count (1, 2, more
    /// than the dataset), since shard boundaries only regroup batches and
    /// inference is batch-grouping-invariant.
    #[test]
    fn evaluation_accuracy_is_thread_count_invariant() {
        use snappix_tensor::parallel::with_threads;
        let model = small_model(8);
        let data = Dataset::new(ssv2_like(8, 16, 16), 13);
        let reference = with_threads(1, || evaluate_accuracy(&model, &data).unwrap());
        for threads in [2usize, 5, 50] {
            let acc = with_threads(threads, || evaluate_accuracy(&model, &data).unwrap());
            assert_eq!(acc, reference, "{threads} threads");
        }
    }

    #[test]
    fn evaluation_and_training_validate_inputs() {
        let mut model = small_model(8);
        let empty = Dataset::new(ssv2_like(8, 16, 16), 0);
        assert!(train_action_model(&mut model, &empty, &TrainOptions::quick()).is_err());
        assert!(evaluate_accuracy(&model, &empty).is_err());
        let data = Dataset::new(ssv2_like(8, 16, 16), 4);
        let mut opts = TrainOptions::quick();
        opts.batch_size = 0;
        assert!(train_action_model(&mut model, &data, &opts).is_err());
    }

    #[test]
    fn inference_rate_is_positive_and_scales() {
        let model = small_model(8);
        let data = Dataset::new(ssv2_like(8, 16, 16), 4);
        let batch = data.batch(0, 4);
        let rate = measure_inference_rate(&model, &batch.videos, 2).unwrap();
        assert!(rate > 0.0);
        assert!(measure_inference_rate(&model, &batch.videos, 0).is_err());
    }

    #[test]
    fn final_loss_of_empty_report_is_nan() {
        let r = TrainReport {
            losses: vec![],
            steps: 0,
        };
        assert!(r.final_loss().is_nan());
    }

    #[test]
    fn snappix_is_faster_than_video_vit_at_matched_width() {
        // Table I's throughput relationship: coded-image input (16 tokens)
        // beats 16-frame video input (64 tokens) at the same width.
        use crate::baselines::VideoVit;
        let snappix = small_model(8);
        let video = VideoVit::new(8, 16, 16, 8).unwrap();
        let data = Dataset::new(ssv2_like(8, 16, 16), 4);
        let batch = data.batch(0, 4);
        let r_snap = measure_inference_rate(&snappix, &batch.videos, 3).unwrap();
        let r_video = measure_inference_rate(&video, &batch.videos, 3).unwrap();
        assert!(
            r_snap > r_video,
            "SnapPix {r_snap:.1}/s should beat VideoViT {r_video:.1}/s"
        );
    }
}
