//! ViT configuration and the SnapPix-S / SnapPix-B presets.

use crate::{ModelError, Result};

/// Configuration of a CE-optimized vision transformer.
///
/// The paper's SnapPix-B uses ViT-B (87M parameters) and SnapPix-S uses
/// ViT-S (22M); the presets here keep the *architecture family and the
/// S-to-B scaling relationship* at a CPU-trainable size (see DESIGN.md for
/// the substitution rationale). The patch size is always set equal to the
/// coded-exposure tile (Sec. IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VitConfig {
    /// Variant name used in experiment tables.
    pub name: String,
    /// Input image height.
    pub height: usize,
    /// Input image width.
    pub width: usize,
    /// Patch (= CE tile) side in pixels.
    pub patch: usize,
    /// Token embedding width.
    pub dim: usize,
    /// Number of transformer blocks.
    pub depth: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Hidden width of each MLP as a multiple of `dim`.
    pub mlp_ratio: usize,
    /// Output classes for the action-recognition head.
    pub num_classes: usize,
}

impl VitConfig {
    /// The SnapPix-S preset (small, fast — the paper's ViT-S role).
    pub fn snappix_s(height: usize, width: usize, num_classes: usize) -> Self {
        VitConfig {
            name: "SnapPix-S".to_string(),
            height,
            width,
            patch: 8,
            dim: 32,
            depth: 2,
            heads: 4,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// The SnapPix-B preset (larger, more accurate — the paper's ViT-B
    /// role; ~4x the parameters of S, mirroring the 22M -> 87M ratio).
    pub fn snappix_b(height: usize, width: usize, num_classes: usize) -> Self {
        VitConfig {
            name: "SnapPix-B".to_string(),
            height,
            width,
            patch: 8,
            dim: 64,
            depth: 4,
            heads: 8,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// Number of patch tokens.
    pub fn num_tokens(&self) -> usize {
        (self.height / self.patch) * (self.width / self.patch)
    }

    /// Pixels per patch.
    pub fn patch_pixels(&self) -> usize {
        self.patch * self.patch
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when extents are zero, the patch
    /// does not divide the image, or `dim` is not divisible by `heads`.
    pub fn validate(&self) -> Result<()> {
        if self.height == 0 || self.width == 0 || self.patch == 0 {
            return Err(ModelError::Config {
                context: format!("{}: zero extent", self.name),
            });
        }
        if !self.height.is_multiple_of(self.patch) || !self.width.is_multiple_of(self.patch) {
            return Err(ModelError::Config {
                context: format!(
                    "{}: patch {} does not divide {}x{}",
                    self.name, self.patch, self.height, self.width
                ),
            });
        }
        if self.dim == 0 || self.heads == 0 || !self.dim.is_multiple_of(self.heads) {
            return Err(ModelError::Config {
                context: format!(
                    "{}: dim {} not divisible by heads {}",
                    self.name, self.dim, self.heads
                ),
            });
        }
        if self.depth == 0 || self.mlp_ratio == 0 {
            return Err(ModelError::Config {
                context: format!("{}: zero depth or mlp ratio", self.name),
            });
        }
        if self.num_classes == 0 {
            return Err(ModelError::Config {
                context: format!("{}: zero classes", self.name),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_scale() {
        let s = VitConfig::snappix_s(32, 32, 10);
        let b = VitConfig::snappix_b(32, 32, 10);
        s.validate().unwrap();
        b.validate().unwrap();
        assert!(b.dim > s.dim);
        assert!(b.depth > s.depth);
        assert_eq!(s.patch, 8, "patch must match the CE tile");
        assert_eq!(s.num_tokens(), 16);
        assert_eq!(s.patch_pixels(), 64);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = VitConfig::snappix_s(32, 32, 10);
        c.patch = 5;
        assert!(c.validate().is_err());
        let mut c = VitConfig::snappix_s(32, 32, 10);
        c.heads = 3;
        assert!(c.validate().is_err());
        let mut c = VitConfig::snappix_s(32, 32, 10);
        c.num_classes = 0;
        assert!(c.validate().is_err());
        let mut c = VitConfig::snappix_s(32, 32, 10);
        c.depth = 0;
        assert!(c.validate().is_err());
        let mut c = VitConfig::snappix_s(0, 32, 10);
        c.height = 0;
        assert!(c.validate().is_err());
    }
}
