//! CE-optimized reconstruction pre-training (paper Sec. IV, Eqn. 3).
//!
//! `Y_hat = D(E(random_masking(f(Y))))`: the video `Y` is compressed by
//! the CE function `f`, a large fraction of the coded image's tiles is
//! masked away, the ViT encoder `E` sees only the visible tiles, and the
//! decoder `D` must reconstruct the *original video* — both inpainting the
//! masked tiles (spatial structure) and upsampling the temporal signal out
//! of the coded exposure (temporal dynamics). Following the paper, only
//! 50% of the frames are predicted to keep pre-training cheap.

use crate::vit::random_token_split;
use crate::{ModelError, Result, VitConfig, VitEncoder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snappix_ce::{encode_batch_normalized, ExposureMask};
use snappix_nn::{
    xavier_uniform, Adam, Linear, Optimizer, ParamId, ParamStore, Session, TransformerBlock,
};
use snappix_tensor::Tensor;
use snappix_video::Dataset;

/// Configuration of the MAE-style pre-trainer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaeConfig {
    /// Encoder configuration (shared with the downstream task models).
    pub vit: VitConfig,
    /// Number of exposure slots `t` in each clip.
    pub slots: usize,
    /// Percentage of tiles masked away, in hundredths (85 = the paper's
    /// 85%).
    pub mask_ratio_pct: usize,
    /// Decoder width.
    pub decoder_dim: usize,
    /// Decoder depth.
    pub decoder_depth: usize,
}

impl MaeConfig {
    /// The paper-shaped default: 85% masking, a thin 1-block decoder, and
    /// half the frames predicted.
    pub fn for_encoder(vit: VitConfig, slots: usize) -> Self {
        MaeConfig {
            vit,
            slots,
            mask_ratio_pct: 85,
            decoder_dim: 32,
            decoder_depth: 1,
        }
    }

    /// Frame indices the decoder predicts (every other frame — 50%, as in
    /// the paper's accelerated pre-training).
    pub fn predicted_frames(&self) -> Vec<usize> {
        (0..self.slots).step_by(2).collect()
    }
}

/// The coded-image-to-video masked-autoencoder pre-trainer.
pub struct MaePretrainer {
    store: ParamStore,
    encoder: VitEncoder,
    enc_to_dec: Linear,
    mask_token: ParamId,
    dec_pos: ParamId,
    dec_blocks: Vec<TransformerBlock>,
    head: Linear,
    mask: ExposureMask,
    config: MaeConfig,
    optimizer: Adam,
    rng: StdRng,
}

impl std::fmt::Debug for MaePretrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaePretrainer")
            .field("config", &self.config)
            .field("params", &self.store.num_scalars())
            .finish()
    }
}

impl MaePretrainer {
    /// Builds the pre-trainer around `mask` (whose tile must equal the
    /// ViT patch).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] on geometry mismatches.
    pub fn new(config: MaeConfig, mask: ExposureMask, lr: f32) -> Result<Self> {
        config.vit.validate()?;
        let (th, tw) = mask.tile();
        if th != config.vit.patch || tw != config.vit.patch {
            return Err(ModelError::Config {
                context: format!(
                    "CE tile {th}x{tw} must equal ViT patch {}",
                    config.vit.patch
                ),
            });
        }
        if mask.num_slots() != config.slots {
            return Err(ModelError::Config {
                context: format!(
                    "mask has {} slots, config expects {}",
                    mask.num_slots(),
                    config.slots
                ),
            });
        }
        if config.mask_ratio_pct >= 100 || config.decoder_dim == 0 || config.decoder_depth == 0 {
            return Err(ModelError::Config {
                context: "mask ratio must be < 100% and the decoder non-empty".to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(0x3ae);
        let mut store = ParamStore::new();
        let encoder = VitEncoder::new(&mut store, "enc", config.vit.clone(), &mut rng)?;
        let n = config.vit.num_tokens();
        let p = config.vit.patch_pixels();
        let dd = config.decoder_dim;
        let enc_to_dec = Linear::new(&mut store, "dec.embed", config.vit.dim, dd, &mut rng);
        let mask_token = store.register(
            "dec.mask_token",
            Tensor::rand_uniform(&mut rng, &[1, dd], -0.05, 0.05),
        );
        let dec_pos = store.register(
            "dec.pos",
            xavier_uniform(&mut rng, &[n, dd], n, dd).scale(0.1),
        );
        let mut dec_blocks = Vec::with_capacity(config.decoder_depth);
        for d in 0..config.decoder_depth {
            dec_blocks.push(TransformerBlock::new(
                &mut store,
                &format!("dec.block{d}"),
                dd,
                4.min(dd),
                dd * 2,
                &mut rng,
            )?);
        }
        let f = config.predicted_frames().len();
        let head = Linear::new(&mut store, "dec.head", dd, f * p, &mut rng);
        Ok(MaePretrainer {
            store,
            encoder,
            enc_to_dec,
            mask_token,
            dec_pos,
            dec_blocks,
            head,
            mask,
            config,
            optimizer: Adam::new(lr),
            rng,
        })
    }

    /// The pre-trainer's configuration.
    pub fn config(&self) -> &MaeConfig {
        &self.config
    }

    /// The parameter store (encoder weights live under `enc.*`).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// One pre-training step on `[batch, t, h, w]` clips; returns the MSE
    /// reconstruction loss before the update.
    ///
    /// # Errors
    ///
    /// Fails when the clips do not match the mask/encoder geometry.
    pub fn step(&mut self, videos: &Tensor) -> Result<f32> {
        let n = self.config.vit.num_tokens();
        let ratio = self.config.mask_ratio_pct as f32 / 100.0;
        let (visible, masked) = random_token_split(n, ratio, &mut self.rng);
        let loss_and_grads = {
            let coded = encode_batch_normalized(videos, &self.mask)?;
            let batch = coded.shape()[0];
            let patch = self.config.vit.patch;
            let target = video_patch_targets(videos, &self.config.predicted_frames(), patch)?;

            let mut sess = Session::new(&self.store);
            let input = sess.input(coded);
            let patches = sess.graph.extract_patches(input, patch, patch)?;
            let enc_tokens = self.encoder.forward_visible(&mut sess, patches, &visible)?;
            let dec_vis = self.enc_to_dec.forward(&mut sess, enc_tokens)?;

            // Mask tokens for the hidden positions.
            let mt = sess.param(self.mask_token);
            let ones = sess.input(Tensor::ones(&[batch, masked.len(), 1]));
            let mask_tokens = sess.graph.mul(ones, mt)?;

            // Scrambled order: visible tokens first, then mask tokens;
            // reorder back to original tile positions.
            let scrambled = sess.graph.concat(&[dec_vis, mask_tokens], 1)?;
            let mut position = vec![0usize; n];
            for (k, &v) in visible.iter().enumerate() {
                position[v] = k;
            }
            for (k, &m) in masked.iter().enumerate() {
                position[m] = visible.len() + k;
            }
            let ordered = crate::vit::gather_axis1(&mut sess, scrambled, &position)?;

            let pos = sess.param(self.dec_pos);
            let mut x = sess.graph.add(ordered, pos)?;
            for block in &self.dec_blocks {
                x = block.forward(&mut sess, x)?;
            }
            let pred = self.head.forward(&mut sess, x)?;
            let loss = sess.graph.mse_loss(pred, &target)?;
            let loss_value = sess.graph.value(loss).item().map_err(ModelError::from)?;
            let grads = sess.backward(loss)?;
            (loss_value, grads)
        };
        let (loss_value, grads) = loss_and_grads;
        self.optimizer.step(&mut self.store, &grads)?;
        Ok(loss_value)
    }

    /// Pre-trains for `steps` gradient steps over `dataset`, returning the
    /// per-step loss history.
    ///
    /// # Errors
    ///
    /// Fails on geometry mismatches or an empty dataset.
    pub fn train(
        &mut self,
        dataset: &Dataset,
        steps: usize,
        batch_size: usize,
    ) -> Result<Vec<f32>> {
        if dataset.is_empty() || batch_size == 0 {
            return Err(ModelError::Input {
                context: "pre-training needs a non-empty dataset and batch".to_string(),
            });
        }
        let mut history = Vec::with_capacity(steps);
        for _ in 0..steps {
            let start = self.rng.random_range(0..dataset.len());
            let batch = dataset.batch(start, batch_size);
            history.push(self.step(&batch.videos)?);
        }
        Ok(history)
    }

    /// Copies the pre-trained encoder weights into `target` (matching by
    /// parameter name and shape), returning how many tensors were
    /// transferred. This is how fine-tuning initializes
    /// [`crate::SnapPixAr`] and [`crate::SnapPixRec`].
    pub fn transfer_encoder(&self, target: &mut ParamStore) -> usize {
        transfer_matching_params(&self.store, target)
    }
}

/// Copies every parameter whose name and shape match from `src` to `dst`;
/// returns the number of tensors copied.
pub(crate) fn transfer_matching_params(src: &ParamStore, dst: &mut ParamStore) -> usize {
    let mut copied = 0;
    let dst_ids = dst.ids();
    for id in dst_ids {
        let name = dst.name(id).to_string();
        if let Some((_, _, value)) = src.iter().find(|(_, n, _)| *n == name) {
            if value.shape() == dst.value(id).shape() {
                let v = value.clone();
                *dst.value_mut(id) = v;
                copied += 1;
            }
        }
    }
    copied
}

/// Builds reconstruction targets: for each requested frame, the frame's
/// tile patches, laid out as `[batch, tokens, frames * patch_pixels]` with
/// the frame index varying slowest within each token's feature vector.
pub(crate) fn video_patch_targets(
    videos: &Tensor,
    frames: &[usize],
    patch: usize,
) -> Result<Tensor> {
    if videos.rank() != 4 {
        return Err(ModelError::Input {
            context: format!("expected [b, t, h, w] videos, got {:?}", videos.shape()),
        });
    }
    let (batch, t, h, w) = (
        videos.shape()[0],
        videos.shape()[1],
        videos.shape()[2],
        videos.shape()[3],
    );
    for &f in frames {
        if f >= t {
            return Err(ModelError::Input {
                context: format!("target frame {f} out of {t}"),
            });
        }
    }
    let n = (h / patch) * (w / patch);
    let p = patch * patch;
    let mut out = Tensor::zeros(&[batch, n, frames.len() * p]);
    let dst_stride = frames.len() * p;
    for b in 0..batch {
        for (fi, &f) in frames.iter().enumerate() {
            let frame = videos.index_axis(0, b)?.index_axis(0, f)?;
            let patches = frame.extract_patches(patch, patch)?; // [n, p]
            let ps = patches.as_slice().to_vec();
            let os = out.as_mut_slice();
            for token in 0..n {
                for k in 0..p {
                    os[(b * n + token) * dst_stride + fi * p + k] = ps[token * p + k];
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_ce::patterns;
    use snappix_video::ssv2_like;

    fn config() -> MaeConfig {
        MaeConfig::for_encoder(VitConfig::snappix_s(16, 16, 10), 8)
    }

    fn mask() -> ExposureMask {
        patterns::long_exposure(8, (8, 8)).unwrap()
    }

    #[test]
    fn construction_validates_geometry() {
        assert!(MaePretrainer::new(config(), mask(), 1e-3).is_ok());
        let wrong_tile = patterns::long_exposure(8, (4, 4)).unwrap();
        assert!(MaePretrainer::new(config(), wrong_tile, 1e-3).is_err());
        let wrong_slots = patterns::long_exposure(4, (8, 8)).unwrap();
        assert!(MaePretrainer::new(config(), wrong_slots, 1e-3).is_err());
        let mut bad = config();
        bad.mask_ratio_pct = 100;
        assert!(MaePretrainer::new(bad, mask(), 1e-3).is_err());
    }

    #[test]
    fn predicted_frames_are_half() {
        let c = config();
        let f = c.predicted_frames();
        assert_eq!(f, vec![0, 2, 4, 6]);
    }

    #[test]
    fn video_patch_targets_layout() {
        // 1 clip, 2 frames of 2x2, patch 2 -> 1 token, 2*4 features.
        let videos = Tensor::arange(8).reshape(&[1, 2, 2, 2]).unwrap();
        let t = video_patch_targets(&videos, &[0, 1], 2).unwrap();
        assert_eq!(t.shape(), &[1, 1, 8]);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert!(video_patch_targets(&videos, &[2], 2).is_err());
        assert!(video_patch_targets(&Tensor::zeros(&[2, 2, 2]), &[0], 2).is_err());
    }

    #[test]
    fn pretraining_reduces_loss() {
        let data = Dataset::new(ssv2_like(8, 16, 16), 16);
        let mut mae = MaePretrainer::new(config(), mask(), 3e-3).unwrap();
        let history = mae.train(&data, 30, 4).unwrap();
        let early: f32 = history[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = history[history.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            late < early,
            "pre-training loss should fall: early {early}, late {late}"
        );
    }

    #[test]
    fn transfer_encoder_moves_weights() {
        let mae = MaePretrainer::new(config(), mask(), 1e-3).unwrap();
        let mut ar = crate::SnapPixAr::new(VitConfig::snappix_s(16, 16, 10), mask()).unwrap();
        use crate::ActionModel;
        let before = ar
            .store()
            .iter()
            .find(|(_, n, _)| *n == "enc.patch_embed.weight")
            .map(|(_, _, v)| v.clone())
            .unwrap();
        let copied = mae.transfer_encoder(ar.store_mut());
        assert!(copied > 0, "encoder tensors must transfer");
        let after = ar
            .store()
            .iter()
            .find(|(_, n, _)| *n == "enc.patch_embed.weight")
            .map(|(_, _, v)| v.clone())
            .unwrap();
        assert!(!before.approx_eq(&after, 1e-9), "weights should change");
        // Decoder-only weights must not be expected by the AR model.
        assert!(ar.store().iter().all(|(_, n, _)| !n.starts_with("dec.")));
    }

    #[test]
    fn training_validates_inputs() {
        let mut mae = MaePretrainer::new(config(), mask(), 1e-3).unwrap();
        let empty = Dataset::new(ssv2_like(8, 16, 16), 0);
        assert!(mae.train(&empty, 1, 4).is_err());
        let data = Dataset::new(ssv2_like(8, 16, 16), 4);
        assert!(mae.train(&data, 1, 0).is_err());
        // Wrong clip geometry.
        assert!(mae.step(&Tensor::zeros(&[2, 4, 16, 16])).is_err());
    }
}
