//! The CE-optimized ViT encoder (paper Sec. IV).

use crate::{Result, VitConfig};
use rand::Rng;
use snappix_autograd::Var;
use snappix_nn::{xavier_uniform, Linear, ParamId, ParamStore, Session, TransformerBlock};

/// Patch-token transformer encoder whose patch size equals the CE tile.
///
/// Because the exposure pattern is tile-repetitive, every patch sees the
/// *same* within-tile exposure layout; the patch embedding and the MLPs
/// can therefore learn a single correction for the pixel non-uniformity,
/// while multi-head attention shares scene context across patches — the
/// co-design argument of Sec. IV.
#[derive(Debug, Clone)]
pub struct VitEncoder {
    config: VitConfig,
    patch_embed: Linear,
    pos_embed: ParamId,
    blocks: Vec<TransformerBlock>,
}

impl VitEncoder {
    /// Registers an encoder's weights under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::Config`] for an invalid configuration.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        config: VitConfig,
        rng: &mut R,
    ) -> Result<Self> {
        config.validate()?;
        let p = config.patch_pixels();
        let n = config.num_tokens();
        let patch_embed = Linear::new(store, &format!("{name}.patch_embed"), p, config.dim, rng);
        let pos_embed = store.register(
            format!("{name}.pos_embed"),
            xavier_uniform(rng, &[n, config.dim], n, config.dim).scale(0.1),
        );
        let mut blocks = Vec::with_capacity(config.depth);
        for d in 0..config.depth {
            blocks.push(TransformerBlock::new(
                store,
                &format!("{name}.block{d}"),
                config.dim,
                config.heads,
                config.dim * config.mlp_ratio,
                rng,
            )?);
        }
        Ok(VitEncoder {
            config,
            patch_embed,
            pos_embed,
            blocks,
        })
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &VitConfig {
        &self.config
    }

    /// Encodes full patch sequences: `[batch, n, p]` pixels to
    /// `[batch, n, dim]` token features.
    ///
    /// # Errors
    ///
    /// Fails when the patch count or width disagrees with the
    /// configuration.
    pub fn forward_patches(&self, sess: &mut Session<'_>, patches: Var) -> Result<Var> {
        let tokens = self.patch_embed.forward(sess, patches)?;
        let pos = sess.param(self.pos_embed);
        let mut x = sess.graph.add(tokens, pos)?;
        for block in &self.blocks {
            x = block.forward(sess, x)?;
        }
        Ok(x)
    }

    /// Encodes only the `visible` patch positions (MAE pre-training,
    /// Sec. IV): gathers those patches and their positional embeddings,
    /// then runs the blocks on the shortened sequence.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range indices or mismatched patch shapes.
    pub fn forward_visible(
        &self,
        sess: &mut Session<'_>,
        patches: Var,
        visible: &[usize],
    ) -> Result<Var> {
        let picked = gather_axis1(sess, patches, visible)?;
        let tokens = self.patch_embed.forward(sess, picked)?;
        let pos = sess.param(self.pos_embed);
        let pos_picked = sess.graph.gather_rows(pos, visible)?;
        let mut x = sess.graph.add(tokens, pos_picked)?;
        for block in &self.blocks {
            x = block.forward(sess, x)?;
        }
        Ok(x)
    }

    /// Mean-pools token features `[batch, n, dim]` into clip features
    /// `[batch, dim]`.
    ///
    /// # Errors
    ///
    /// Fails for non-rank-3 input.
    pub fn pool(&self, sess: &mut Session<'_>, tokens: Var) -> Result<Var> {
        Ok(sess.graph.mean_axis(tokens, 1, false)?)
    }
}

/// Gathers `indices` along axis 1 of a `[batch, n, d]` variable (the same
/// indices for every batch element), returning
/// `[batch, indices.len(), d]`.
///
/// Implemented as permute -> flatten -> row gather -> unflatten so it
/// rides on the existing differentiable ops.
///
/// # Errors
///
/// Fails for non-rank-3 input or out-of-range indices.
pub fn gather_axis1(sess: &mut Session<'_>, x: Var, indices: &[usize]) -> Result<Var> {
    let shape = sess.graph.value(x).shape().to_vec();
    if shape.len() != 3 {
        return Err(crate::ModelError::Input {
            context: format!("gather_axis1 expects rank 3, got {shape:?}"),
        });
    }
    let (b, n, d) = (shape[0], shape[1], shape[2]);
    let perm = sess.graph.permute(x, &[1, 0, 2])?; // [n, b, d]
    let flat = sess.graph.reshape(perm, &[n, b * d])?;
    let picked = sess.graph.gather_rows(flat, indices)?; // [v, b*d]
    let unflat = sess.graph.reshape(picked, &[indices.len(), b, d])?;
    Ok(sess.graph.permute(unflat, &[1, 0, 2])?)
}

/// Splits token positions `0..n` into `(visible, masked)` with
/// `mask_ratio` of positions masked, shuffled by `rng`. Both lists are
/// sorted; at least one token stays visible and, when `mask_ratio > 0.0`
/// and `n > 1`, at least one is masked.
pub fn random_token_split<R: Rng + ?Sized>(
    n: usize,
    mask_ratio: f32,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut masked_count = ((n as f32) * mask_ratio).round() as usize;
    if masked_count >= n {
        masked_count = n - 1;
    }
    if mask_ratio > 0.0 && n > 1 && masked_count == 0 {
        masked_count = 1;
    }
    let mut masked: Vec<usize> = order[..masked_count].to_vec();
    let mut visible: Vec<usize> = order[masked_count..].to_vec();
    masked.sort_unstable();
    visible.sort_unstable();
    (visible, masked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use snappix_tensor::Tensor;

    fn encoder() -> (ParamStore, VitEncoder) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let enc = VitEncoder::new(
            &mut store,
            "enc",
            VitConfig::snappix_s(16, 16, 10),
            &mut rng,
        )
        .unwrap();
        (store, enc)
    }

    #[test]
    fn forward_patches_shapes() {
        let (store, enc) = encoder();
        // 16x16 image, 8px patch -> 4 tokens of 64 pixels.
        let mut sess = Session::inference(&store);
        let patches = sess.input(Tensor::zeros(&[2, 4, 64]));
        let tokens = enc.forward_patches(&mut sess, patches).unwrap();
        assert_eq!(sess.graph.value(tokens).shape(), &[2, 4, 32]);
        let pooled = enc.pool(&mut sess, tokens).unwrap();
        assert_eq!(sess.graph.value(pooled).shape(), &[2, 32]);
    }

    #[test]
    fn forward_visible_shortens_sequence() {
        let (store, enc) = encoder();
        let mut sess = Session::inference(&store);
        let patches = sess.input(Tensor::zeros(&[2, 4, 64]));
        let tokens = enc.forward_visible(&mut sess, patches, &[0, 3]).unwrap();
        assert_eq!(sess.graph.value(tokens).shape(), &[2, 2, 32]);
    }

    #[test]
    fn position_embedding_breaks_permutation_symmetry() {
        let (store, enc) = encoder();
        let mut rng = StdRng::seed_from_u64(5);
        let tile = Tensor::rand_uniform(&mut rng, &[1, 1, 64], -1.0, 1.0);
        let zeros = Tensor::zeros(&[1, 1, 64]);
        // Same patch content at position 0 vs position 3.
        let at0 = Tensor::concat(&[&tile, &zeros, &zeros, &zeros], 1).unwrap();
        let at3 = Tensor::concat(&[&zeros, &zeros, &zeros, &tile], 1).unwrap();
        let run = |input: Tensor| {
            let mut sess = Session::inference(&store);
            let p = sess.input(input);
            let t = enc.forward_patches(&mut sess, p).unwrap();
            let pooled = enc.pool(&mut sess, t).unwrap();
            sess.graph.value(pooled).clone()
        };
        assert!(!run(at0).approx_eq(&run(at3), 1e-4));
    }

    #[test]
    fn gather_axis1_selects_rows() {
        let store = ParamStore::new();
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::arange(12).reshape(&[2, 3, 2]).unwrap());
        let g = gather_axis1(&mut sess, x, &[2, 0]).unwrap();
        let v = sess.graph.value(g);
        assert_eq!(v.shape(), &[2, 2, 2]);
        // batch 0: rows [4,5] then [0,1]; batch 1: [10,11] then [6,7].
        assert_eq!(v.as_slice(), &[4.0, 5.0, 0.0, 1.0, 10.0, 11.0, 6.0, 7.0]);
        let bad = sess.input(Tensor::zeros(&[2, 2]));
        assert!(gather_axis1(&mut sess, bad, &[0]).is_err());
    }

    #[test]
    fn random_token_split_partitions() {
        let mut rng = StdRng::seed_from_u64(1);
        let (vis, masked) = random_token_split(16, 0.85, &mut rng);
        assert_eq!(vis.len() + masked.len(), 16);
        assert!(!vis.is_empty());
        assert!(
            (2..=4).contains(&vis.len()),
            "85% of 16 masked -> ~2-3 visible"
        );
        let mut all: Vec<usize> = vis.iter().chain(masked.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn random_token_split_edge_ratios() {
        let mut rng = StdRng::seed_from_u64(2);
        let (vis, masked) = random_token_split(4, 0.0, &mut rng);
        assert_eq!(vis.len(), 4);
        assert!(masked.is_empty());
        let (vis, masked) = random_token_split(4, 1.0, &mut rng);
        assert_eq!(vis.len(), 1, "at least one token stays visible");
        assert_eq!(masked.len(), 3);
        let (vis, masked) = random_token_split(16, 0.01, &mut rng);
        assert!(!masked.is_empty(), "a positive ratio masks at least one");
        assert_eq!(vis.len() + masked.len(), 16);
    }
}
