//! Vision models and training loops for the SnapPix reproduction
//! (paper Sec. IV and the baselines of Sec. VI).
//!
//! Implements, at CPU-trainable scale:
//!
//! * the **CE-optimized ViT** ([`VitEncoder`]) whose patch size equals the
//!   exposure tile, letting patch-wise MLPs absorb within-tile pixel
//!   non-uniformity while attention shares context across tiles;
//! * **MAE-style pre-training** ([`MaePretrainer`]): mask most tiles of a
//!   coded image and reconstruct the *original video* ("coded
//!   image-to-video" prediction, paper Eqn. 3);
//! * the **action-recognition** ([`SnapPixAr`]) and **reconstruction**
//!   ([`SnapPixRec`]) task heads;
//! * the paper's **baselines**: [`Svc2d`] (shift-variant-conv net with an
//!   end-to-end learned pattern), [`C3d`] (3-D convnet on raw video),
//!   [`VideoVit`] (VideoMAEv2-ST-like tubelet transformer) and the
//!   spatial-downsample-plus-video-model baseline;
//! * **training loops** with batching, schedules, gradient clipping,
//!   multi-threaded evaluation, and accuracy/PSNR/throughput measurement.
//!
//! # Examples
//!
//! ```no_run
//! use snappix_models::{SnapPixAr, VitConfig, TrainOptions, train_action_model,
//!     evaluate_accuracy};
//! use snappix_ce::patterns;
//! use snappix_video::{ssv2_like, Dataset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = Dataset::new(ssv2_like(16, 32, 32), 100);
//! let (train, test) = data.split(0.8);
//! let mask = patterns::long_exposure(16, (8, 8))?;
//! let mut model = SnapPixAr::new(VitConfig::snappix_s(32, 32, 10), mask)?;
//! train_action_model(&mut model, &train, &TrainOptions::quick())?;
//! let acc = evaluate_accuracy(&model, &test)?;
//! println!("accuracy: {acc:.1}%");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ar;
mod baselines;
mod config;
mod error;
mod mae;
mod rec;
mod train;
mod vit;

pub use ar::{ActionModel, SnapPixAr};
pub use baselines::{C3d, DownsampleVideoVit, Svc2d, VideoVit};
pub use config::VitConfig;
pub use error::ModelError;
pub use mae::{MaeConfig, MaePretrainer};
pub use rec::SnapPixRec;
pub use train::{
    evaluate_accuracy, measure_inference_rate, train_action_model, TrainOptions, TrainReport,
};
pub use vit::VitEncoder;

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
