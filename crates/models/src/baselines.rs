//! The paper's baseline models (Table I and Sec. VI-D), reproduced at
//! CPU-trainable scale.

use crate::ar::ActionModel;
use crate::{ModelError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snappix_autograd::Var;
use snappix_nn::{
    max_pool3d, Conv2d, Conv3d, Linear, ParamId, ParamStore, Session, ShiftVariantConv2d,
};
use snappix_tensor::Tensor;

// ---------------------------------------------------------------------
// SVC2D (Okawara et al.): coded image + shift-variant convolution, with an
// end-to-end learned exposure pattern.
// ---------------------------------------------------------------------

/// The SVC2D baseline: a small CNN whose first layer is a shift-variant
/// convolution, consuming a coded image produced by an exposure pattern
/// that is *learned jointly with the model* (task-specific, unlike
/// SnapPix's task-agnostic decorrelation).
#[derive(Debug, Clone)]
pub struct Svc2d {
    store: ParamStore,
    logits_param: ParamId,
    svc: ShiftVariantConv2d,
    conv: Conv2d,
    head: Linear,
    slots: usize,
    tile: usize,
    height: usize,
    width: usize,
    classes: usize,
}

impl Svc2d {
    /// Builds the baseline for `slots`-frame clips of `height x width`
    /// pixels with a `tile x tile` exposure tile.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] for degenerate geometry.
    pub fn new(
        slots: usize,
        height: usize,
        width: usize,
        tile: usize,
        classes: usize,
    ) -> Result<Self> {
        if slots == 0
            || tile == 0
            || !height.is_multiple_of(tile)
            || !width.is_multiple_of(tile)
            || classes == 0
        {
            return Err(ModelError::Config {
                context: format!(
                    "svc2d: slots {slots}, tile {tile}, frame {height}x{width}, classes {classes}"
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(0x5bc);
        let mut store = ParamStore::new();
        let logits_param = store.register(
            "pattern.logits",
            Tensor::rand_uniform(&mut rng, &[slots, tile, tile], -0.5, 0.5),
        );
        let svc = ShiftVariantConv2d::new(&mut store, "svc", 1, 4, 3, (tile, tile), &mut rng)?;
        let conv = Conv2d::new(&mut store, "conv", 4, 8, 3, 2, 1, &mut rng)?;
        let flat = 8 * (height / 2) * (width / 2);
        let head = Linear::new(&mut store, "head", flat, classes, &mut rng);
        Ok(Svc2d {
            store,
            logits_param,
            svc,
            conv,
            head,
            slots,
            tile,
            height,
            width,
            classes,
        })
    }

    /// The binary exposure pattern currently implied by the learned
    /// logits.
    ///
    /// # Errors
    ///
    /// Never fails for a constructed model; kept fallible for mask
    /// validation symmetry.
    pub fn learned_mask(&self) -> Result<snappix_ce::ExposureMask> {
        let binary = self
            .store
            .value(self.logits_param)
            .map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        snappix_ce::ExposureMask::new(binary).map_err(ModelError::from)
    }
}

impl ActionModel for Svc2d {
    fn name(&self) -> &str {
        "SVC2D"
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn build_logits(&self, sess: &mut Session<'_>, videos: &Tensor) -> Result<Var> {
        let shape = videos.shape().to_vec();
        if shape.len() != 4
            || shape[1] != self.slots
            || shape[2] != self.height
            || shape[3] != self.width
        {
            return Err(ModelError::Input {
                context: format!(
                    "svc2d expects [b, {}, {}, {}], got {shape:?}",
                    self.slots, self.height, self.width
                ),
            });
        }
        let batch = shape[0];
        // End-to-end learned CE: binarize logits with STE, tile, integrate.
        let logits = sess.param(self.logits_param);
        let mask = sess.graph.binarize_ste(logits, 0.0)?;
        let tiled =
            sess.graph
                .tile_spatial(mask, self.height / self.tile, self.width / self.tile)?;
        let tiled4 = sess
            .graph
            .reshape(tiled, &[1, self.slots, self.height, self.width])?;
        let vids = sess.input(videos.clone());
        let exposed = sess.graph.mul(tiled4, vids)?;
        let coded = sess.graph.sum_axis(exposed, 1, false)?;
        let coded = sess.graph.scale(coded, 1.0 / self.slots as f32)?;
        let x = sess
            .graph
            .reshape(coded, &[batch, 1, self.height, self.width])?;
        let x = self.svc.forward(sess, x)?;
        let x = sess.graph.relu(x)?;
        let x = self.conv.forward(sess, x)?;
        let x = sess.graph.relu(x)?;
        let flat = 8 * (self.height / 2) * (self.width / 2);
        let x = sess.graph.reshape(x, &[batch, flat])?;
        self.head.forward(sess, x).map_err(ModelError::from)
    }
}

// ---------------------------------------------------------------------
// C3D (Tran et al.): 3-D convolutions over the raw 16-frame clip.
// ---------------------------------------------------------------------

/// The C3D baseline: a small 3-D convnet consuming the uncoded clip (the
/// "upper bound" of prior CE work that SnapPix overtakes).
#[derive(Debug, Clone)]
pub struct C3d {
    store: ParamStore,
    conv1: Conv3d,
    conv2: Conv3d,
    head: Linear,
    slots: usize,
    height: usize,
    width: usize,
    classes: usize,
}

impl C3d {
    /// Builds the baseline for `slots`-frame clips.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when the clip is too small for the
    /// pooling pyramid (needs `slots >= 4` and extents `>= 8`).
    pub fn new(slots: usize, height: usize, width: usize, classes: usize) -> Result<Self> {
        if slots < 4 || height < 8 || width < 8 || classes == 0 {
            return Err(ModelError::Config {
                context: format!("c3d: clip {slots}x{height}x{width} too small"),
            });
        }
        let mut rng = StdRng::seed_from_u64(0xc3d);
        let mut store = ParamStore::new();
        let conv1 = Conv3d::new(
            &mut store,
            "conv1",
            1,
            4,
            (3, 3, 3),
            (1, 1, 1),
            (1, 1, 1),
            &mut rng,
        )?;
        let conv2 = Conv3d::new(
            &mut store,
            "conv2",
            4,
            8,
            (3, 3, 3),
            (1, 1, 1),
            (1, 1, 1),
            &mut rng,
        )?;
        let flat = 8 * (slots / 4) * (height / 4) * (width / 4);
        let head = Linear::new(&mut store, "head", flat, classes, &mut rng);
        Ok(C3d {
            store,
            conv1,
            conv2,
            head,
            slots,
            height,
            width,
            classes,
        })
    }
}

impl ActionModel for C3d {
    fn name(&self) -> &str {
        "C3D"
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn build_logits(&self, sess: &mut Session<'_>, videos: &Tensor) -> Result<Var> {
        let shape = videos.shape().to_vec();
        if shape.len() != 4
            || shape[1] != self.slots
            || shape[2] != self.height
            || shape[3] != self.width
        {
            return Err(ModelError::Input {
                context: format!(
                    "c3d expects [b, {}, {}, {}], got {shape:?}",
                    self.slots, self.height, self.width
                ),
            });
        }
        let batch = shape[0];
        let x = sess.input(videos.clone());
        let x = sess
            .graph
            .reshape(x, &[batch, 1, self.slots, self.height, self.width])?;
        let x = self.conv1.forward(sess, x)?;
        let x = sess.graph.relu(x)?;
        let x = max_pool3d(sess, x, (2, 2, 2))?;
        let x = self.conv2.forward(sess, x)?;
        let x = sess.graph.relu(x)?;
        let x = max_pool3d(sess, x, (2, 2, 2))?;
        let flat = 8 * (self.slots / 4) * (self.height / 4) * (self.width / 4);
        let x = sess.graph.reshape(x, &[batch, flat])?;
        self.head.forward(sess, x).map_err(ModelError::from)
    }
}

// ---------------------------------------------------------------------
// VideoMAEv2-ST-like: a tubelet-token video transformer on raw frames.
// ---------------------------------------------------------------------

/// A VideoMAEv2-ST-like video transformer: the clip is cut into
/// `t_patch x patch x patch` tubelets, each linearly embedded into a
/// token. With 16 frames this yields 4x the tokens of SnapPix's coded
/// image, which is why it runs slower at matched width (Table I).
#[derive(Debug, Clone)]
pub struct VideoVit {
    store: ParamStore,
    embed: Linear,
    pos_embed: ParamId,
    blocks: Vec<snappix_nn::TransformerBlock>,
    head: Linear,
    name: String,
    slots: usize,
    height: usize,
    width: usize,
    t_patch: usize,
    patch: usize,
    dim: usize,
    classes: usize,
}

impl VideoVit {
    /// Builds the baseline with the default (SnapPix-S-matched) width.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when tubelets do not tile the clip.
    pub fn new(slots: usize, height: usize, width: usize, classes: usize) -> Result<Self> {
        Self::with_geometry(
            "VideoMAEv2-ST-like",
            slots,
            height,
            width,
            4,
            8,
            32,
            2,
            classes,
        )
    }

    /// Fully parameterized constructor (used by the downsample baseline).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when tubelets do not tile the clip
    /// or the width is not divisible by the head count.
    #[allow(clippy::too_many_arguments)]
    pub fn with_geometry(
        name: &str,
        slots: usize,
        height: usize,
        width: usize,
        t_patch: usize,
        patch: usize,
        dim: usize,
        depth: usize,
        classes: usize,
    ) -> Result<Self> {
        if slots == 0
            || t_patch == 0
            || patch == 0
            || !slots.is_multiple_of(t_patch)
            || !height.is_multiple_of(patch)
            || !width.is_multiple_of(patch)
            || classes == 0
            || depth == 0
        {
            return Err(ModelError::Config {
                context: format!(
                    "video-vit {name}: tubelet {t_patch}x{patch}x{patch} does not tile \
                     {slots}x{height}x{width}"
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(0x71de0);
        let mut store = ParamStore::new();
        let tokens = (slots / t_patch) * (height / patch) * (width / patch);
        let tubelet = t_patch * patch * patch;
        let embed = Linear::new(&mut store, "embed", tubelet, dim, &mut rng);
        let pos_embed = store.register(
            "pos_embed",
            snappix_nn::xavier_uniform(&mut rng, &[tokens, dim], tokens, dim).scale(0.1),
        );
        let mut blocks = Vec::with_capacity(depth);
        for d in 0..depth {
            blocks.push(snappix_nn::TransformerBlock::new(
                &mut store,
                &format!("block{d}"),
                dim,
                4.min(dim),
                dim * 2,
                &mut rng,
            )?);
        }
        let head = Linear::new(&mut store, "head", dim, classes, &mut rng);
        Ok(VideoVit {
            store,
            embed,
            pos_embed,
            blocks,
            head,
            name: name.to_string(),
            slots,
            height,
            width,
            t_patch,
            patch,
            dim,
            classes,
        })
    }

    /// Number of tubelet tokens this model processes per clip.
    pub fn num_tokens(&self) -> usize {
        (self.slots / self.t_patch) * (self.height / self.patch) * (self.width / self.patch)
    }

    /// Cuts a `[batch, t, h, w]` clip into `[batch, tokens, tubelet]`
    /// pixels (plain tensor op; the clip is a non-learnable input).
    fn tubelets(&self, videos: &Tensor) -> Result<Tensor> {
        let (batch, t, h, w) = (
            videos.shape()[0],
            videos.shape()[1],
            videos.shape()[2],
            videos.shape()[3],
        );
        let (tp, p) = (self.t_patch, self.patch);
        let (gt, gh, gw) = (t / tp, h / p, w / p);
        let tokens = gt * gh * gw;
        let tubelet = tp * p * p;
        let mut out = Tensor::zeros(&[batch, tokens, tubelet]);
        let src = videos.as_slice();
        let dst = out.as_mut_slice();
        for b in 0..batch {
            for zt in 0..gt {
                for zy in 0..gh {
                    for zx in 0..gw {
                        let token = (zt * gh + zy) * gw + zx;
                        for dt in 0..tp {
                            for dy in 0..p {
                                for dx in 0..p {
                                    let v = src[((b * t + zt * tp + dt) * h + zy * p + dy) * w
                                        + zx * p
                                        + dx];
                                    dst[(b * tokens + token) * tubelet + (dt * p + dy) * p + dx] =
                                        v;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl ActionModel for VideoVit {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn build_logits(&self, sess: &mut Session<'_>, videos: &Tensor) -> Result<Var> {
        let shape = videos.shape().to_vec();
        if shape.len() != 4
            || shape[1] != self.slots
            || shape[2] != self.height
            || shape[3] != self.width
        {
            return Err(ModelError::Input {
                context: format!(
                    "{} expects [b, {}, {}, {}], got {shape:?}",
                    self.name, self.slots, self.height, self.width
                ),
            });
        }
        let tubelets = self.tubelets(videos)?;
        let x = sess.input(tubelets);
        let tokens = self.embed.forward(sess, x)?;
        let pos = sess.param(self.pos_embed);
        let mut x = sess.graph.add(tokens, pos)?;
        for block in &self.blocks {
            x = block.forward(sess, x)?;
        }
        let pooled = sess.graph.mean_axis(x, 1, false)?;
        let _ = self.dim;
        self.head.forward(sess, pooled).map_err(ModelError::from)
    }
}

// ---------------------------------------------------------------------
// Downsample baseline (Sec. VI-D): 4x4 average pooling + video model.
// ---------------------------------------------------------------------

/// The "simple compression" baseline: spatially downsample every frame by
/// `factor x factor` average filtering (matching SnapPix's 16x rate when
/// `factor = 4`) and run a video transformer on the small clip.
#[derive(Debug, Clone)]
pub struct DownsampleVideoVit {
    inner: VideoVit,
    factor: usize,
    slots: usize,
    height: usize,
    width: usize,
}

impl DownsampleVideoVit {
    /// Builds the baseline.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when `factor` does not divide the
    /// frame or the downsampled clip cannot be tokenized.
    pub fn new(
        slots: usize,
        height: usize,
        width: usize,
        factor: usize,
        classes: usize,
    ) -> Result<Self> {
        if factor == 0 || !height.is_multiple_of(factor) || !width.is_multiple_of(factor) {
            return Err(ModelError::Config {
                context: format!("downsample factor {factor} does not divide {height}x{width}"),
            });
        }
        let (dh, dw) = (height / factor, width / factor);
        // Small frames need a small spatial patch.
        let patch = if dh % 8 == 0 && dw % 8 == 0 { 8 } else { 4 };
        let inner = VideoVit::with_geometry(
            "Downsample+VideoViT",
            slots,
            dh,
            dw,
            4,
            patch.min(dh).min(dw),
            32,
            2,
            classes,
        )?;
        Ok(DownsampleVideoVit {
            inner,
            factor,
            slots,
            height,
            width,
        })
    }

    fn downsample(&self, videos: &Tensor) -> Result<Tensor> {
        let batch = videos.shape()[0];
        let mut clips = Vec::with_capacity(batch);
        for b in 0..batch {
            let clip = snappix_video::Video::new(videos.index_axis(0, b)?)?;
            clips.push(clip.spatial_downsample(self.factor)?.into_frames());
        }
        let refs: Vec<&Tensor> = clips.iter().collect();
        Ok(Tensor::stack(&refs, 0)?)
    }
}

impl ActionModel for DownsampleVideoVit {
    fn name(&self) -> &str {
        "Downsample+VideoViT"
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn store(&self) -> &ParamStore {
        self.inner.store()
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        self.inner.store_mut()
    }

    fn build_logits(&self, sess: &mut Session<'_>, videos: &Tensor) -> Result<Var> {
        let shape = videos.shape().to_vec();
        if shape.len() != 4
            || shape[1] != self.slots
            || shape[2] != self.height
            || shape[3] != self.width
        {
            return Err(ModelError::Input {
                context: format!(
                    "downsample baseline expects [b, {}, {}, {}], got {shape:?}",
                    self.slots, self.height, self.width
                ),
            });
        }
        let small = self.downsample(videos)?;
        self.inner.build_logits(sess, &small)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 8;
    const HW: usize = 16;

    fn clip(batch: usize) -> Tensor {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        Tensor::rand_uniform(&mut rng, &[batch, T, HW, HW], 0.0, 1.0)
    }

    #[test]
    fn svc2d_shapes_and_learned_mask() {
        let m = Svc2d::new(T, HW, HW, 8, 5).unwrap();
        let mut sess = Session::inference(m.store());
        let logits = m.build_logits(&mut sess, &clip(2)).unwrap();
        assert_eq!(sess.graph.value(logits).shape(), &[2, 5]);
        let mask = m.learned_mask().unwrap();
        assert_eq!(mask.num_slots(), T);
        assert_eq!(mask.tile(), (8, 8));
        assert!(Svc2d::new(T, 15, HW, 8, 5).is_err());
    }

    #[test]
    fn svc2d_pattern_receives_gradient() {
        let m = Svc2d::new(T, HW, HW, 8, 5).unwrap();
        let mut sess = Session::new(m.store());
        let logits = m.build_logits(&mut sess, &clip(2)).unwrap();
        let loss = sess.graph.cross_entropy_logits(logits, &[0, 1]).unwrap();
        let grads = sess.backward(loss).unwrap();
        let pattern_id = m
            .store()
            .iter()
            .find(|(_, n, _)| *n == "pattern.logits")
            .map(|(id, _, _)| id)
            .unwrap();
        assert!(
            grads.get(pattern_id).is_some(),
            "end-to-end learning requires gradient into the pattern"
        );
    }

    #[test]
    fn c3d_shapes() {
        let m = C3d::new(T, HW, HW, 6).unwrap();
        let mut sess = Session::inference(m.store());
        let logits = m.build_logits(&mut sess, &clip(2)).unwrap();
        assert_eq!(sess.graph.value(logits).shape(), &[2, 6]);
        assert_eq!(m.name(), "C3D");
        assert!(C3d::new(2, HW, HW, 6).is_err());
    }

    #[test]
    fn video_vit_shapes_and_token_count() {
        let m = VideoVit::new(T, HW, HW, 5).unwrap();
        // 8/4 x 16/8 x 16/8 = 2 x 2 x 2 = 8 tokens.
        assert_eq!(m.num_tokens(), 8);
        let mut sess = Session::inference(m.store());
        let logits = m.build_logits(&mut sess, &clip(3)).unwrap();
        assert_eq!(sess.graph.value(logits).shape(), &[3, 5]);
        assert!(VideoVit::new(7, HW, HW, 5).is_err());
    }

    #[test]
    fn video_vit_has_more_tokens_than_snappix_coded_image() {
        // The throughput argument of Table I: the video model processes
        // t_patch-fold more tokens than a coded-image ViT at equal patch.
        let m = VideoVit::new(16, 32, 32, 10).unwrap();
        let snappix_tokens = (32 / 8) * (32 / 8);
        assert!(m.num_tokens() > snappix_tokens);
    }

    #[test]
    fn downsample_baseline_shapes() {
        let m = DownsampleVideoVit::new(T, HW, HW, 4, 5).unwrap();
        let mut sess = Session::inference(m.store());
        let logits = m.build_logits(&mut sess, &clip(2)).unwrap();
        assert_eq!(sess.graph.value(logits).shape(), &[2, 5]);
        assert!(DownsampleVideoVit::new(T, HW, HW, 3, 5).is_err());
    }

    #[test]
    fn input_validation_across_models() {
        let wrong = Tensor::zeros(&[1, T + 1, HW, HW]);
        let svc = Svc2d::new(T, HW, HW, 8, 5).unwrap();
        let c3d = C3d::new(T, HW, HW, 5).unwrap();
        let vvit = VideoVit::new(T, HW, HW, 5).unwrap();
        let down = DownsampleVideoVit::new(T, HW, HW, 4, 5).unwrap();
        let models: Vec<&dyn ActionModel> = vec![&svc, &c3d, &vvit, &down];
        for m in models {
            let mut sess = Session::inference(m.store());
            assert!(
                m.build_logits(&mut sess, &wrong).is_err(),
                "{} accepted a wrong clip",
                m.name()
            );
        }
    }
}
