use std::fmt;

/// Error type for model construction, training and evaluation.
#[derive(Debug)]
pub enum ModelError {
    /// A neural-network layer or optimizer failed.
    Nn(snappix_nn::NnError),
    /// An autograd operation failed.
    Autograd(snappix_autograd::AutogradError),
    /// A tensor operation failed.
    Tensor(snappix_tensor::TensorError),
    /// A coded-exposure component failed.
    Ce(snappix_ce::CeError),
    /// The model configuration is inconsistent (patch not dividing the
    /// image, zero classes, etc.).
    Config {
        /// Human-readable description of the problem.
        context: String,
    },
    /// Input data did not match the model (wrong resolution or frame
    /// count).
    Input {
        /// Human-readable description of the problem.
        context: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Nn(e) => write!(f, "nn error: {e}"),
            ModelError::Autograd(e) => write!(f, "autograd error: {e}"),
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::Ce(e) => write!(f, "coded-exposure error: {e}"),
            ModelError::Config { context } => write!(f, "invalid model configuration: {context}"),
            ModelError::Input { context } => write!(f, "invalid input: {context}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Nn(e) => Some(e),
            ModelError::Autograd(e) => Some(e),
            ModelError::Tensor(e) => Some(e),
            ModelError::Ce(e) => Some(e),
            _ => None,
        }
    }
}

impl From<snappix_nn::NnError> for ModelError {
    fn from(e: snappix_nn::NnError) -> Self {
        ModelError::Nn(e)
    }
}

impl From<snappix_autograd::AutogradError> for ModelError {
    fn from(e: snappix_autograd::AutogradError) -> Self {
        ModelError::Autograd(e)
    }
}

impl From<snappix_tensor::TensorError> for ModelError {
    fn from(e: snappix_tensor::TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<snappix_ce::CeError> for ModelError {
    fn from(e: snappix_ce::CeError) -> Self {
        ModelError::Ce(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: ModelError = snappix_tensor::TensorError::InvalidArgument {
            context: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("tensor"));
        assert!(std::error::Error::source(&e).is_some());
        let c = ModelError::Config {
            context: "bad patch".into(),
        };
        assert!(c.to_string().contains("bad patch"));
        assert!(std::error::Error::source(&c).is_none());
    }
}
