//! Video reconstruction from a single coded image (the paper's REC task).

use crate::mae::video_patch_targets;
use crate::{ModelError, Result, VitConfig, VitEncoder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snappix_autograd::Var;
use snappix_ce::{encode_batch_normalized, ExposureMask};
use snappix_nn::{
    xavier_uniform, Adam, Linear, Optimizer, ParamId, ParamStore, Session, TransformerBlock,
};
use snappix_tensor::Tensor;
use snappix_video::{psnr, Dataset};

/// SnapPix reconstruction: recovers all `t` original frames from one coded
/// image. REC is the paper's "low-level" task, standing in for scenarios
/// where video is archived for future, undefined consumers (Sec. VI-A).
pub struct SnapPixRec {
    store: ParamStore,
    encoder: VitEncoder,
    enc_to_dec: Linear,
    dec_pos: ParamId,
    dec_blocks: Vec<TransformerBlock>,
    head: Linear,
    mask: ExposureMask,
    slots: usize,
    optimizer: Adam,
    rng: StdRng,
}

impl std::fmt::Debug for SnapPixRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapPixRec")
            .field("slots", &self.slots)
            .field("params", &self.store.num_scalars())
            .finish()
    }
}

impl SnapPixRec {
    /// Builds the reconstruction model for `slots`-frame clips.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when the mask tile differs from the
    /// ViT patch or slot counts disagree.
    pub fn new(config: VitConfig, mask: ExposureMask, slots: usize, lr: f32) -> Result<Self> {
        config.validate()?;
        let (th, tw) = mask.tile();
        if th != config.patch || tw != config.patch {
            return Err(ModelError::Config {
                context: format!("CE tile {th}x{tw} must equal ViT patch {}", config.patch),
            });
        }
        if mask.num_slots() != slots {
            return Err(ModelError::Config {
                context: format!("mask has {} slots, expected {slots}", mask.num_slots()),
            });
        }
        let mut rng = StdRng::seed_from_u64(0x4ec);
        let mut store = ParamStore::new();
        let encoder = VitEncoder::new(&mut store, "enc", config.clone(), &mut rng)?;
        let n = config.num_tokens();
        let p = config.patch_pixels();
        let dd = config.dim;
        let enc_to_dec = Linear::new(&mut store, "dec.embed", config.dim, dd, &mut rng);
        let dec_pos = store.register(
            "dec.pos",
            xavier_uniform(&mut rng, &[n, dd], n, dd).scale(0.1),
        );
        let dec_blocks = vec![TransformerBlock::new(
            &mut store,
            "dec.block0",
            dd,
            4.min(dd),
            dd * 2,
            &mut rng,
        )?];
        let head = Linear::new(&mut store, "dec.head", dd, slots * p, &mut rng);
        Ok(SnapPixRec {
            store,
            encoder,
            enc_to_dec,
            dec_pos,
            dec_blocks,
            head,
            mask,
            slots,
            optimizer: Adam::new(lr),
            rng,
        })
    }

    /// The parameter store (encoder weights under `enc.*`, so MAE
    /// pre-training transfers directly).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store (for warm-starting from pre-training).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn build_prediction(&self, sess: &mut Session<'_>, videos: &Tensor) -> Result<Var> {
        let coded = encode_batch_normalized(videos, &self.mask)?;
        let patch = self.encoder.config().patch;
        let input = sess.input(coded);
        let patches = sess.graph.extract_patches(input, patch, patch)?;
        let tokens = self.encoder.forward_patches(sess, patches)?;
        let x = self.enc_to_dec.forward(sess, tokens)?;
        let pos = sess.param(self.dec_pos);
        let mut x = sess.graph.add(x, pos)?;
        for block in &self.dec_blocks {
            x = block.forward(sess, x)?;
        }
        self.head.forward(sess, x).map_err(ModelError::from)
    }

    /// One training step on `[batch, t, h, w]` clips; returns the MSE loss
    /// before the update.
    ///
    /// # Errors
    ///
    /// Fails on geometry mismatches.
    pub fn step(&mut self, videos: &Tensor) -> Result<f32> {
        let all_frames: Vec<usize> = (0..self.slots).collect();
        let patch = self.encoder.config().patch;
        let target = video_patch_targets(videos, &all_frames, patch)?;
        let (loss_value, grads) = {
            let mut sess = Session::new(&self.store);
            let pred = self.build_prediction(&mut sess, videos)?;
            let loss = sess.graph.mse_loss(pred, &target)?;
            let loss_value = sess.graph.value(loss).item().map_err(ModelError::from)?;
            let grads = sess.backward(loss)?;
            (loss_value, grads)
        };
        self.optimizer.step(&mut self.store, &grads)?;
        Ok(loss_value)
    }

    /// Trains for `steps` gradient steps over `dataset`.
    ///
    /// # Errors
    ///
    /// Fails on an empty dataset or geometry mismatches.
    pub fn train(
        &mut self,
        dataset: &Dataset,
        steps: usize,
        batch_size: usize,
    ) -> Result<Vec<f32>> {
        if dataset.is_empty() || batch_size == 0 {
            return Err(ModelError::Input {
                context: "training needs a non-empty dataset and batch".to_string(),
            });
        }
        let mut history = Vec::with_capacity(steps);
        for _ in 0..steps {
            let start = self.rng.random_range(0..dataset.len());
            let batch = dataset.batch(start, batch_size);
            history.push(self.step(&batch.videos)?);
        }
        Ok(history)
    }

    /// Reconstructs full clips `[batch, t, h, w]` from the coded images of
    /// `videos` (the videos are only used to form the coded input).
    ///
    /// # Errors
    ///
    /// Fails on geometry mismatches.
    pub fn reconstruct(&self, videos: &Tensor) -> Result<Tensor> {
        let mut sess = Session::inference(&self.store);
        let pred = self.build_prediction(&mut sess, videos)?;
        let pv = sess.graph.value(pred).clone();
        // [b, n, t*p] -> frames.
        let (batch, _n, _) = (pv.shape()[0], pv.shape()[1], pv.shape()[2]);
        let cfg = self.encoder.config();
        let patch = cfg.patch;
        let p = cfg.patch_pixels();
        let (h, w) = (cfg.height, cfg.width);
        let mut clips = Vec::with_capacity(batch);
        for b in 0..batch {
            let per_sample = pv.index_axis(0, b)?; // [n, t*p]
            let mut frames = Vec::with_capacity(self.slots);
            for f in 0..self.slots {
                let cols = per_sample.slice_axis(1, f * p, (f + 1) * p)?; // [n, p]
                frames.push(cols.assemble_patches(patch, patch, h, w)?);
            }
            let refs: Vec<&Tensor> = frames.iter().collect();
            clips.push(Tensor::stack(&refs, 0)?);
        }
        let refs: Vec<&Tensor> = clips.iter().collect();
        Ok(Tensor::stack(&refs, 0)?)
    }

    /// Mean PSNR (dB) of reconstructions over the first `num` clips of
    /// `dataset` — the paper's REC metric.
    ///
    /// # Errors
    ///
    /// Fails on an empty dataset or geometry mismatches.
    pub fn evaluate_psnr(&self, dataset: &Dataset, num: usize) -> Result<f32> {
        if dataset.is_empty() || num == 0 {
            return Err(ModelError::Input {
                context: "evaluation needs clips".to_string(),
            });
        }
        let batch = dataset.batch(0, num.min(dataset.len()));
        let recon = self.reconstruct(&batch.videos)?;
        let clamped = recon.clamp(0.0, 1.0);
        Ok(psnr(&batch.videos, &clamped)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_ce::patterns;
    use snappix_video::ssv2_like;

    fn model() -> SnapPixRec {
        let mask = patterns::short_exposure(8, (8, 8), 4).unwrap();
        SnapPixRec::new(VitConfig::snappix_s(16, 16, 10), mask, 8, 3e-3).unwrap()
    }

    #[test]
    fn construction_validates() {
        let bad_tile = patterns::long_exposure(8, (4, 4)).unwrap();
        assert!(SnapPixRec::new(VitConfig::snappix_s(16, 16, 10), bad_tile, 8, 1e-3).is_err());
        let bad_slots = patterns::long_exposure(4, (8, 8)).unwrap();
        assert!(SnapPixRec::new(VitConfig::snappix_s(16, 16, 10), bad_slots, 8, 1e-3).is_err());
    }

    #[test]
    fn reconstruction_shape() {
        let m = model();
        let data = Dataset::new(ssv2_like(8, 16, 16), 2);
        let batch = data.batch(0, 2);
        let recon = m.reconstruct(&batch.videos).unwrap();
        assert_eq!(recon.shape(), &[2, 8, 16, 16]);
    }

    #[test]
    fn training_improves_psnr() {
        let data = Dataset::new(ssv2_like(8, 16, 16), 16);
        let mut m = model();
        let before = m.evaluate_psnr(&data, 8).unwrap();
        m.train(&data, 40, 4).unwrap();
        let after = m.evaluate_psnr(&data, 8).unwrap();
        assert!(
            after > before,
            "training should improve PSNR: {before} -> {after}"
        );
    }

    #[test]
    fn evaluation_validates() {
        let m = model();
        let empty = Dataset::new(ssv2_like(8, 16, 16), 0);
        assert!(m.evaluate_psnr(&empty, 4).is_err());
        let data = Dataset::new(ssv2_like(8, 16, 16), 2);
        assert!(m.evaluate_psnr(&data, 0).is_err());
    }
}
