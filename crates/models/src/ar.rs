//! Action recognition with the CE-optimized ViT (SnapPix AR, Sec. IV).

use crate::{ModelError, Result, VitConfig, VitEncoder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snappix_autograd::Var;
use snappix_ce::{encode_batch, encode_batch_normalized, ExposureMask};
use snappix_nn::{Linear, ParamStore, Session};
use snappix_tensor::Tensor;

/// Anything that can classify a `[batch, t, h, w]` clip batch.
///
/// The trait abstracts over input encodings: SnapPix models internally
/// compress the clip into a coded image, video baselines consume raw
/// frames — which is exactly the comparison of the paper's Table I.
///
/// `Sync` is a supertrait so evaluation can fan inference out across
/// threads (each thread opens its own read-only [`Session`]).
pub trait ActionModel: Sync {
    /// Display name used in experiment tables.
    fn name(&self) -> &str;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// The parameters of this model.
    fn store(&self) -> &ParamStore;

    /// Mutable access to the parameters (for the optimizer).
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Builds class logits `[batch, classes]` for a `[batch, t, h, w]`
    /// clip batch inside `sess`.
    ///
    /// # Errors
    ///
    /// Fails when the clip geometry does not match the model.
    fn build_logits(&self, sess: &mut Session<'_>, videos: &Tensor) -> Result<Var>;
}

/// SnapPix action recognition: fixed CE mask, coded-image input, ViT
/// backbone, linear classification head.
#[derive(Debug, Clone)]
pub struct SnapPixAr {
    store: ParamStore,
    encoder: VitEncoder,
    head: Linear,
    mask: ExposureMask,
    name: String,
    /// Divide each pixel by its exposure count before the ViT (paper
    /// Sec. IV); disabled only for the ablation.
    pub normalize_by_exposure: bool,
}

impl SnapPixAr {
    /// Builds a model from a ViT configuration and a (task-agnostically
    /// trained) exposure mask.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when the mask tile differs from the
    /// ViT patch size or the configuration is invalid.
    pub fn new(config: VitConfig, mask: ExposureMask) -> Result<Self> {
        config.validate()?;
        let (th, tw) = mask.tile();
        if th != config.patch || tw != config.patch {
            return Err(ModelError::Config {
                context: format!(
                    "CE tile {th}x{tw} must equal ViT patch {} (the Sec. IV co-design)",
                    config.patch
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let mut store = ParamStore::new();
        let name = config.name.clone();
        let num_classes = config.num_classes;
        let dim = config.dim;
        let encoder = VitEncoder::new(&mut store, "enc", config, &mut rng)?;
        let head = Linear::new(&mut store, "head", dim, num_classes, &mut rng);
        Ok(SnapPixAr {
            store,
            encoder,
            head,
            mask,
            name,
            normalize_by_exposure: true,
        })
    }

    /// Builds a model whose mask tile is *not* constrained to the ViT
    /// patch — used only by the Sec. VI-E ablation that replaces the
    /// tile-repetitive pattern with a global one. The mask tile must
    /// still divide the frame.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when the configuration is invalid
    /// or the mask tile does not divide the frame.
    pub fn with_unconstrained_mask(config: VitConfig, mask: ExposureMask) -> Result<Self> {
        config.validate()?;
        let (th, tw) = mask.tile();
        if !config.height.is_multiple_of(th) || !config.width.is_multiple_of(tw) {
            return Err(ModelError::Config {
                context: format!(
                    "mask tile {th}x{tw} does not divide frame {}x{}",
                    config.height, config.width
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let mut store = ParamStore::new();
        let name = format!("{} (unconstrained mask)", config.name);
        let num_classes = config.num_classes;
        let dim = config.dim;
        let encoder = VitEncoder::new(&mut store, "enc", config, &mut rng)?;
        let head = Linear::new(&mut store, "head", dim, num_classes, &mut rng);
        Ok(SnapPixAr {
            store,
            encoder,
            head,
            mask,
            name,
            normalize_by_exposure: true,
        })
    }

    /// The exposure mask this model was co-designed with.
    pub fn mask(&self) -> &ExposureMask {
        &self.mask
    }

    /// The ViT encoder (e.g. to warm-start from MAE pre-training).
    pub fn encoder(&self) -> &VitEncoder {
        &self.encoder
    }

    /// Compresses clips to normalized coded images (what the sensor would
    /// transmit) — exposed for the examples and diagnostics.
    ///
    /// # Errors
    ///
    /// Fails when the clips do not match the mask.
    pub fn compress(&self, videos: &Tensor) -> Result<Tensor> {
        let coded = if self.normalize_by_exposure {
            encode_batch_normalized(videos, &self.mask)?
        } else {
            encode_batch(videos, &self.mask)?
        };
        Ok(coded)
    }
}

impl ActionModel for SnapPixAr {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_classes(&self) -> usize {
        self.encoder.config().num_classes
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn build_logits(&self, sess: &mut Session<'_>, videos: &Tensor) -> Result<Var> {
        let coded = self.compress(videos)?;
        self.build_logits_from_coded(sess, &coded)
    }
}

impl SnapPixAr {
    /// Builds class logits from already-coded (and normalized) images
    /// `[batch, h, w]` — the path used when the coded image comes from the
    /// hardware sensor simulator instead of the algorithmic encoder.
    ///
    /// # Errors
    ///
    /// Fails when the image geometry does not match the encoder.
    pub fn build_logits_from_coded(&self, sess: &mut Session<'_>, coded: &Tensor) -> Result<Var> {
        let input = sess.input(coded.clone());
        let patch = self.encoder.config().patch;
        let patches = sess.graph.extract_patches(input, patch, patch)?;
        let tokens = self.encoder.forward_patches(sess, patches)?;
        let pooled = self.encoder.pool(sess, tokens)?;
        self.head.forward(sess, pooled).map_err(ModelError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_ce::patterns;

    fn model() -> SnapPixAr {
        let mask = patterns::long_exposure(4, (8, 8)).unwrap();
        SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask).unwrap()
    }

    #[test]
    fn construction_enforces_tile_patch_match() {
        let bad_mask = patterns::long_exposure(4, (4, 4)).unwrap();
        assert!(SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), bad_mask).is_err());
    }

    #[test]
    fn logits_shape() {
        let m = model();
        let videos = Tensor::full(&[3, 4, 16, 16], 0.5);
        let mut sess = Session::inference(m.store());
        let logits = m.build_logits(&mut sess, &videos).unwrap();
        assert_eq!(sess.graph.value(logits).shape(), &[3, 5]);
        assert_eq!(m.num_classes(), 5);
        assert_eq!(m.name(), "SnapPix-S");
    }

    #[test]
    fn compress_reduces_t_frames_to_one() {
        let m = model();
        let videos = Tensor::full(&[2, 4, 16, 16], 0.25);
        let coded = m.compress(&videos).unwrap();
        assert_eq!(coded.shape(), &[2, 16, 16]);
        // Long exposure of constant 0.25 with normalization -> 0.25.
        assert!(coded.approx_eq(&Tensor::full(&[2, 16, 16], 0.25), 1e-6));
    }

    #[test]
    fn exposure_normalization_flag_changes_input() {
        let mut m = model();
        let videos = Tensor::full(&[1, 4, 16, 16], 0.25);
        let normalized = m.compress(&videos).unwrap();
        m.normalize_by_exposure = false;
        let raw = m.compress(&videos).unwrap();
        // Without normalization the long exposure sums to 1.0 per pixel.
        assert!(raw.approx_eq(&Tensor::ones(&[1, 16, 16]), 1e-6));
        assert!(!raw.approx_eq(&normalized, 1e-3));
    }

    #[test]
    fn gradients_reach_encoder_and_head() {
        let mut m = model();
        let videos = Tensor::full(&[2, 4, 16, 16], 0.5);
        let mut sess = Session::new(m.store());
        let logits = m.build_logits(&mut sess, &videos).unwrap();
        let loss = sess.graph.cross_entropy_logits(logits, &[0, 1]).unwrap();
        let grads = sess.backward(loss).unwrap();
        drop(sess);
        let ids = m.store_mut().ids();
        let with_grads = ids.iter().filter(|&&id| grads.get(id).is_some()).count();
        assert_eq!(
            with_grads,
            ids.len(),
            "every parameter should get a gradient"
        );
    }
}
