//! Edge-GPU scenario (paper Sec. VI-D, last paragraph).
//!
//! When the edge node carries a mobile GPU (the paper measures a Jetson
//! Xavier's Volta GPU at batch size 1), inference energy dominates the
//! total. SnapPix wins because its model consumes a *single coded image*
//! rather than a 16-frame clip, so a larger backbone still costs less than
//! the video baselines. The per-inference energies below are calibrated so
//! the paper's reported ratios hold (1.4x vs VideoMAEv2-ST, 4.5x vs C3D
//! for SnapPix-S); absolute numbers substitute for the unavailable Jetson
//! measurements.

use crate::{EnergyModel, Scenario};

/// Model classes with published edge-GPU comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuModelClass {
    /// SnapPix with the ViT-S backbone (coded-image input).
    SnapPixS,
    /// SnapPix with the ViT-B backbone (coded-image input).
    SnapPixB,
    /// VideoMAEv2-ST on 16 uncoded frames.
    VideoMaeSt,
    /// C3D on 16 uncoded frames.
    C3d,
    /// SVC2D on a coded image (shift-variant convolutions).
    Svc2d,
}

/// Per-inference energy model of a Jetson-Xavier-class mobile GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JetsonXavierModel {
    snappix_s_mj: f64,
    snappix_b_mj: f64,
    videomae_st_mj: f64,
    c3d_mj: f64,
    svc2d_mj: f64,
}

impl JetsonXavierModel {
    /// Energies calibrated to the paper's reported ratios: SnapPix-S saves
    /// 1.4x against VideoMAEv2-ST and 4.5x against C3D.
    pub fn paper() -> Self {
        JetsonXavierModel {
            snappix_s_mj: 20.0,
            snappix_b_mj: 55.0,
            videomae_st_mj: 28.0, // 1.4 x 20
            c3d_mj: 90.0,         // 4.5 x 20
            svc2d_mj: 24.0,       // SVC inefficiency despite the small net
        }
    }

    /// Per-inference energy in millijoules for `model`.
    pub fn inference_mj(&self, model: GpuModelClass) -> f64 {
        match model {
            GpuModelClass::SnapPixS => self.snappix_s_mj,
            GpuModelClass::SnapPixB => self.snappix_b_mj,
            GpuModelClass::VideoMaeSt => self.videomae_st_mj,
            GpuModelClass::C3d => self.c3d_mj,
            GpuModelClass::Svc2d => self.svc2d_mj,
        }
    }
}

impl Default for JetsonXavierModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Edge node with sensing plus on-board GPU inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeGpuScenario {
    /// Sensing workload (resolution, slots; wireless unused on-device but
    /// kept for sensing cost parity).
    pub sensing: Scenario,
    /// GPU energy model.
    pub gpu: JetsonXavierModel,
}

impl EdgeGpuScenario {
    /// Total edge energy (pJ) when running `model` on the edge GPU.
    ///
    /// Coded-image models pay SnapPix sensing (single read-out); video
    /// models pay conventional sensing (read out every frame). Data stays
    /// on-device, so no wireless term.
    pub fn total_pj(&self, energy: &EnergyModel, model: GpuModelClass) -> f64 {
        let no_wireless = Scenario {
            wireless: crate::Wireless::Custom(0.0),
            ..self.sensing
        };
        let sensing = match model {
            GpuModelClass::SnapPixS | GpuModelClass::SnapPixB | GpuModelClass::Svc2d => {
                energy.snappix_energy(&no_wireless).total_pj()
            }
            GpuModelClass::VideoMaeSt | GpuModelClass::C3d => {
                energy.conventional_energy(&no_wireless).total_pj()
            }
        };
        sensing + self.gpu.inference_mj(model) * 1e9 // mJ -> pJ
    }

    /// Energy saving of running `ours` instead of `baseline` on the edge.
    pub fn saving(
        &self,
        energy: &EnergyModel,
        ours: GpuModelClass,
        baseline: GpuModelClass,
    ) -> f64 {
        self.total_pj(energy, baseline) / self.total_pj(energy, ours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Wireless;

    fn scenario() -> EdgeGpuScenario {
        EdgeGpuScenario {
            sensing: Scenario {
                frame_pixels: 112 * 112,
                slots: 16,
                wireless: Wireless::PassiveWifi,
            },
            gpu: JetsonXavierModel::paper(),
        }
    }

    #[test]
    fn paper_ratios_hold() {
        let e = EnergyModel::paper();
        let s = scenario();
        let vs_videomae = s.saving(&e, GpuModelClass::SnapPixS, GpuModelClass::VideoMaeSt);
        let vs_c3d = s.saving(&e, GpuModelClass::SnapPixS, GpuModelClass::C3d);
        assert!(
            (vs_videomae - 1.4).abs() < 0.1,
            "vs VideoMAE: {vs_videomae}, paper 1.4"
        );
        assert!((vs_c3d - 4.5).abs() < 0.3, "vs C3D: {vs_c3d}, paper 4.5");
    }

    #[test]
    fn gpu_energy_dominates_sensing() {
        let e = EnergyModel::paper();
        let s = scenario();
        let total = s.total_pj(&e, GpuModelClass::SnapPixS);
        let gpu_only = s.gpu.inference_mj(GpuModelClass::SnapPixS) * 1e9;
        assert!(gpu_only / total > 0.9, "GPU should dominate the total");
    }

    #[test]
    fn snappix_b_costs_more_than_s_but_less_than_c3d() {
        let g = JetsonXavierModel::paper();
        assert!(g.inference_mj(GpuModelClass::SnapPixB) > g.inference_mj(GpuModelClass::SnapPixS));
        assert!(g.inference_mj(GpuModelClass::SnapPixB) < g.inference_mj(GpuModelClass::C3d));
    }

    #[test]
    fn saving_is_reciprocal() {
        let e = EnergyModel::paper();
        let s = scenario();
        let ab = s.saving(&e, GpuModelClass::SnapPixS, GpuModelClass::C3d);
        let ba = s.saving(&e, GpuModelClass::C3d, GpuModelClass::SnapPixS);
        assert!((ab * ba - 1.0).abs() < 1e-9);
    }
}
