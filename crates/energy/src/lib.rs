//! CamJ-style edge-sensing energy model (SnapPix paper, Sec. VI-D).
//!
//! The paper's energy evaluation is an analytical model over published
//! per-component constants; this crate reimplements that model so the
//! Sec. VI-D numbers can be regenerated and stress-tested under parameter
//! sweeps.
//!
//! Constants, all from the paper:
//!
//! * total sensing energy **220 pJ/pixel** (8-bit), of which **95.6%** is
//!   ADC + MIPI read-out (CamJ, calibrated against silicon);
//! * CE support overhead **9 pJ/pixel** per exposure slot at a 20 MHz
//!   pattern clock (the paper's synthesis result);
//! * short-range wireless (passive WiFi, ~10 m): **43.04 pJ/pixel**;
//! * long-range wireless (LoRa backscatter, >100 m): **7.4 µJ/pixel**;
//! * MIPI CSI-2 transfer of one byte costs ~**300x** a one-byte MAC.
//!
//! With `T = 16`, SnapPix reads out and transmits one coded image instead
//! of 16 frames, cutting ADC/MIPI and wireless energy by 16x; the model
//! reproduces the paper's **7.6x** (short-range) and **~15-16x**
//! (long-range) edge energy savings, and the edge-GPU scenario's **1.4x**
//! / **4.5x** savings against VideoMAEv2-ST and C3D.
//!
//! # Examples
//!
//! ```
//! use snappix_energy::{EnergyModel, Scenario, Wireless};
//!
//! let model = EnergyModel::paper();
//! let scenario = Scenario {
//!     frame_pixels: 112 * 112,
//!     slots: 16,
//!     wireless: Wireless::PassiveWifi,
//! };
//! let saving = model.edge_energy_saving(&scenario);
//! assert!(saving > 7.0 && saving < 8.0); // the paper reports 7.6x
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod digital;
mod gpu;
mod model;

pub use budget::EnergyBudget;
pub use digital::DigitalCompressor;
pub use gpu::{EdgeGpuScenario, GpuModelClass, JetsonXavierModel};
pub use model::{EnergyBreakdown, EnergyModel, Scenario, Wireless};

/// Ratio of MIPI CSI-2 per-byte transfer energy to a one-byte MAC
/// operation (paper Sec. II-A, citing CamJ).
pub const MIPI_BYTE_TO_MAC_RATIO: f64 = 300.0;
