//! A battery-backed energy budget with optional harvesting.
//!
//! The rest of this crate prices *one* capture window; a deployed node
//! pays that price over and over against a finite reserve (a battery or
//! a capacitor bank) that may trickle back up through harvesting (solar,
//! RF, vibration). [`EnergyBudget`] is that reserve as a ledger: every
//! picojoule in or out is accounted, the level never leaves
//! `[0, capacity]`, and the books can be audited at any time with
//! [`EnergyBudget::check_conserved`]. The fleet simulator
//! (`snappix-fleet`) drives one budget per node and steps its adaptive
//! duty-cycle ladder off [`EnergyBudget::fraction`].

/// A finite (or explicitly unbounded) energy reserve, in picojoules,
/// with conserved in/out accounting.
///
/// The ledger invariant, checked by [`check_conserved`](Self::check_conserved):
///
/// ```text
/// level == initial + harvested - spent        (harvested excludes waste)
/// spent <= initial + harvested
/// ```
///
/// Harvest beyond `capacity` is *wasted* (a full battery cannot absorb
/// it) and tracked separately in [`wasted_pj`](Self::wasted_pj) so the
/// harvest side of the ledger stays exact.
///
/// # Examples
///
/// ```
/// use snappix_energy::EnergyBudget;
///
/// let mut battery = EnergyBudget::new(1_000.0).with_harvest(50.0);
/// assert!(battery.try_spend(600.0));
/// assert!(!battery.try_spend(600.0), "only 400 pJ left");
/// battery.harvest_for(4.0); // 4 s of 50 pJ/s
/// assert!(battery.try_spend(600.0));
/// assert!(battery.check_conserved());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBudget {
    capacity_pj: f64,
    level_pj: f64,
    initial_pj: f64,
    harvest_pj_per_s: f64,
    spent_pj: f64,
    harvested_pj: f64,
    wasted_pj: f64,
}

impl EnergyBudget {
    /// A budget starting full at `capacity_pj` (clamped to ≥ 0) with no
    /// harvesting.
    pub fn new(capacity_pj: f64) -> Self {
        let capacity = if capacity_pj.is_nan() {
            0.0
        } else {
            capacity_pj.max(0.0)
        };
        EnergyBudget {
            capacity_pj: capacity,
            level_pj: capacity,
            initial_pj: capacity,
            harvest_pj_per_s: 0.0,
            spent_pj: 0.0,
            harvested_pj: 0.0,
            wasted_pj: 0.0,
        }
    }

    /// An explicitly unbounded budget: every spend succeeds (and is
    /// still *counted*), the level stays infinite, and
    /// [`fraction`](Self::fraction) reports 1.0. The right default for
    /// simulations that want fleet-scale scheduling without energy
    /// pressure.
    pub fn unbounded() -> Self {
        EnergyBudget::new(f64::INFINITY)
    }

    /// Sets the starting level (clamped to `[0, capacity]`). The ledger
    /// restarts from this level.
    #[must_use]
    pub fn with_level(mut self, level_pj: f64) -> Self {
        let level = if level_pj.is_nan() {
            0.0
        } else {
            level_pj.clamp(0.0, self.capacity_pj)
        };
        self.level_pj = level;
        self.initial_pj = level;
        self
    }

    /// Sets the harvest rate in pJ per second (clamped to ≥ 0;
    /// non-finite rates clamp to 0).
    #[must_use]
    pub fn with_harvest(mut self, pj_per_s: f64) -> Self {
        self.harvest_pj_per_s = if pj_per_s.is_finite() {
            pj_per_s.max(0.0)
        } else {
            0.0
        };
        self
    }

    /// Battery capacity in pJ (infinite for [`unbounded`](Self::unbounded)).
    pub fn capacity_pj(&self) -> f64 {
        self.capacity_pj
    }

    /// Current level in pJ.
    pub fn level_pj(&self) -> f64 {
        self.level_pj
    }

    /// The level the ledger started from.
    pub fn initial_pj(&self) -> f64 {
        self.initial_pj
    }

    /// Configured harvest rate in pJ/s.
    pub fn harvest_pj_per_s(&self) -> f64 {
        self.harvest_pj_per_s
    }

    /// Total energy spent so far.
    pub fn spent_pj(&self) -> f64 {
        self.spent_pj
    }

    /// Total harvest *absorbed* so far (waste excluded).
    pub fn harvested_pj(&self) -> f64 {
        self.harvested_pj
    }

    /// Harvest that arrived while the battery was full and was lost.
    pub fn wasted_pj(&self) -> f64 {
        self.wasted_pj
    }

    /// Remaining charge as a fraction of capacity in `[0, 1]`
    /// (1.0 for an unbounded or zero-capacity budget).
    pub fn fraction(&self) -> f64 {
        if !self.capacity_pj.is_finite() || self.capacity_pj <= 0.0 {
            return 1.0;
        }
        (self.level_pj / self.capacity_pj).clamp(0.0, 1.0)
    }

    /// True when `cost_pj` could be spent right now.
    pub fn can_afford(&self, cost_pj: f64) -> bool {
        cost_pj <= self.level_pj
    }

    /// Absorbs `dt_s` seconds of harvesting at the configured rate,
    /// returning the energy actually absorbed (harvest beyond capacity
    /// is counted as waste, not charge).
    pub fn harvest_for(&mut self, dt_s: f64) -> f64 {
        if self.harvest_pj_per_s <= 0.0 || !dt_s.is_finite() || dt_s <= 0.0 {
            return 0.0;
        }
        let offered = self.harvest_pj_per_s * dt_s;
        let absorbed = offered.min(self.capacity_pj - self.level_pj).max(0.0);
        self.level_pj += absorbed;
        self.harvested_pj += absorbed;
        self.wasted_pj += offered - absorbed;
        absorbed
    }

    /// Spends `cost_pj` if affordable, returning whether it was. A spend
    /// that is not affordable debits *nothing* — the budget never goes
    /// negative. Non-finite or negative costs are rejected.
    pub fn try_spend(&mut self, cost_pj: f64) -> bool {
        if cost_pj.is_nan() || cost_pj < 0.0 || cost_pj > self.level_pj {
            return false;
        }
        self.level_pj -= cost_pj;
        self.spent_pj += cost_pj;
        true
    }

    /// Audits the ledger: `level == initial + harvested - spent` (to a
    /// relative 1e-9, covering float accumulation) and
    /// `spent <= initial + harvested`. Unbounded budgets are trivially
    /// conserved.
    pub fn check_conserved(&self) -> bool {
        if !self.capacity_pj.is_finite() {
            return true;
        }
        let expected = self.initial_pj + self.harvested_pj - self.spent_pj;
        let scale = self
            .initial_pj
            .abs()
            .max(self.harvested_pj)
            .max(self.spent_pj)
            .max(1.0);
        (self.level_pj - expected).abs() <= 1e-9 * scale
            && self.spent_pj <= self.initial_pj + self.harvested_pj + 1e-9 * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_is_conserved_through_a_spend_harvest_cycle() {
        let mut b = EnergyBudget::new(100.0).with_harvest(10.0);
        assert_eq!(b.level_pj(), 100.0);
        assert_eq!(b.fraction(), 1.0);
        assert!(b.try_spend(60.0));
        assert!((b.fraction() - 0.4).abs() < 1e-12);
        assert_eq!(b.harvest_for(2.0), 20.0);
        assert_eq!(b.level_pj(), 60.0);
        assert!(b.try_spend(55.0));
        assert_eq!(b.spent_pj(), 115.0);
        assert_eq!(b.harvested_pj(), 20.0);
        assert!(b.check_conserved());
    }

    #[test]
    fn refused_spends_debit_nothing() {
        let mut b = EnergyBudget::new(10.0);
        assert!(!b.try_spend(10.1));
        assert_eq!(b.level_pj(), 10.0);
        assert_eq!(b.spent_pj(), 0.0);
        assert!(!b.try_spend(f64::NAN));
        assert!(!b.try_spend(-1.0));
        assert!(b.try_spend(10.0));
        assert_eq!(b.level_pj(), 0.0);
        assert!(!b.try_spend(f64::MIN_POSITIVE), "empty means empty");
        assert!(b.check_conserved());
    }

    #[test]
    fn overflow_harvest_is_wasted_not_credited() {
        let mut b = EnergyBudget::new(100.0).with_harvest(100.0);
        assert!(b.try_spend(30.0));
        // 1 s offers 100 pJ; only 30 pJ of headroom exists.
        assert_eq!(b.harvest_for(1.0), 30.0);
        assert_eq!(b.level_pj(), 100.0);
        assert_eq!(b.harvested_pj(), 30.0);
        assert_eq!(b.wasted_pj(), 70.0);
        assert!(b.check_conserved());
    }

    #[test]
    fn unbounded_budget_always_affords_and_still_counts() {
        let mut b = EnergyBudget::unbounded();
        assert_eq!(b.fraction(), 1.0);
        assert!(b.try_spend(1e18));
        assert!(b.can_afford(f64::MAX));
        assert_eq!(b.spent_pj(), 1e18);
        assert_eq!(b.fraction(), 1.0);
        assert!(b.check_conserved());
    }

    #[test]
    fn constructors_sanitize_nonsense() {
        assert_eq!(EnergyBudget::new(-5.0).capacity_pj(), 0.0);
        assert_eq!(EnergyBudget::new(f64::NAN).capacity_pj(), 0.0);
        assert_eq!(EnergyBudget::new(10.0).with_level(99.0).level_pj(), 10.0);
        assert_eq!(EnergyBudget::new(10.0).with_level(-1.0).level_pj(), 0.0);
        let b = EnergyBudget::new(10.0).with_harvest(f64::INFINITY);
        assert_eq!(b.harvest_pj_per_s(), 0.0);
        let mut z = EnergyBudget::new(0.0);
        assert_eq!(z.fraction(), 1.0, "zero-capacity budgets report full");
        assert_eq!(z.harvest_for(1.0), 0.0);
        assert_eq!(z.initial_pj(), 0.0);
    }

    #[test]
    fn harvest_ignores_bad_durations() {
        let mut b = EnergyBudget::new(10.0).with_level(0.0).with_harvest(5.0);
        assert_eq!(b.harvest_for(f64::NAN), 0.0);
        assert_eq!(b.harvest_for(-1.0), 0.0);
        assert_eq!(b.harvest_for(0.0), 0.0);
        assert_eq!(b.level_pj(), 0.0);
        assert_eq!(b.harvest_for(0.5), 2.5);
        assert!(b.check_conserved());
    }
}
