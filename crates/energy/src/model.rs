//! The edge-server energy model.

/// Wireless link used to offload data from the sensing node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Wireless {
    /// Passive WiFi, ~10 m range: 43.04 pJ/pixel (paper, citing
    /// Kellogg et al.).
    PassiveWifi,
    /// LoRa backscatter, >100 m range: 7.4 µJ/pixel (paper, citing
    /// Talla et al.).
    LoraBackscatter,
    /// A custom link with the given energy per pixel in pJ.
    Custom(f64),
}

impl Wireless {
    /// Transmission energy in pJ per (8-bit) pixel.
    pub fn pj_per_pixel(self) -> f64 {
        match self {
            Wireless::PassiveWifi => 43.04,
            Wireless::LoraBackscatter => 7.4e6,
            Wireless::Custom(pj) => pj,
        }
    }
}

/// One sensing workload: a `slots`-frame capture window at a given
/// resolution, offloaded over a wireless link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Pixels per frame (the paper evaluates 112 x 112).
    pub frame_pixels: usize,
    /// Exposure slots `T` compressed into one coded image (paper: 16).
    pub slots: usize,
    /// The offload link.
    pub wireless: Wireless,
}

/// Itemized energy for one capture window, in pJ.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// ADC + MIPI read-out energy.
    pub readout_pj: f64,
    /// Analog/exposure energy (the non-readout 4.4% of sensing).
    pub exposure_pj: f64,
    /// CE pattern-control overhead (zero for conventional capture).
    pub ce_overhead_pj: f64,
    /// Wireless transmission energy.
    pub wireless_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.readout_pj + self.exposure_pj + self.ce_overhead_pj + self.wireless_pj
    }
}

/// The per-component energy model with the paper's constants.
///
/// The model prices a conventional pipeline (read out and transmit every
/// frame) against the SnapPix pipeline (expose every slot, but read out
/// and transmit a single coded image, paying the CE control overhead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Total sensing energy per pixel read-out, pJ (paper: 220).
    pub sensing_pj_per_pixel: f64,
    /// Fraction of sensing energy attributable to ADC + MIPI
    /// (paper: 0.956).
    pub adc_mipi_fraction: f64,
    /// CE support overhead per pixel per exposure slot, pJ (paper: 9 per
    /// pixel from synthesis at a 20 MHz pattern clock).
    pub ce_overhead_pj_per_pixel_slot: f64,
}

impl EnergyModel {
    /// The model with the paper's published constants.
    pub fn paper() -> Self {
        EnergyModel {
            sensing_pj_per_pixel: 220.0,
            adc_mipi_fraction: 0.956,
            ce_overhead_pj_per_pixel_slot: 9.0,
        }
    }

    /// ADC + MIPI energy per read-out pixel, pJ.
    pub fn readout_pj_per_pixel(&self) -> f64 {
        self.sensing_pj_per_pixel * self.adc_mipi_fraction
    }

    /// Exposure (non-readout) energy per pixel per integrated frame, pJ.
    pub fn exposure_pj_per_pixel(&self) -> f64 {
        self.sensing_pj_per_pixel * (1.0 - self.adc_mipi_fraction)
    }

    /// Energy of a conventional sensor over one capture window: every one
    /// of the `slots` frames is exposed, read out, and transmitted.
    pub fn conventional_energy(&self, s: &Scenario) -> EnergyBreakdown {
        let px = s.frame_pixels as f64;
        let t = s.slots as f64;
        EnergyBreakdown {
            readout_pj: t * px * self.readout_pj_per_pixel(),
            exposure_pj: t * px * self.exposure_pj_per_pixel(),
            ce_overhead_pj: 0.0,
            wireless_pj: t * px * s.wireless.pj_per_pixel(),
        }
    }

    /// Energy of the SnapPix sensor over one capture window: all `slots`
    /// are exposed in-pixel, but only one coded image is read out and
    /// transmitted; the CE pattern machinery is paid per slot.
    pub fn snappix_energy(&self, s: &Scenario) -> EnergyBreakdown {
        let px = s.frame_pixels as f64;
        let t = s.slots as f64;
        EnergyBreakdown {
            readout_pj: px * self.readout_pj_per_pixel(),
            exposure_pj: t * px * self.exposure_pj_per_pixel(),
            ce_overhead_pj: t * px * self.ce_overhead_pj_per_pixel_slot,
            wireless_pj: px * s.wireless.pj_per_pixel(),
        }
    }

    /// Edge energy saving factor: conventional total over SnapPix total.
    pub fn edge_energy_saving(&self, s: &Scenario) -> f64 {
        self.conventional_energy(s).total_pj() / self.snappix_energy(s).total_pj()
    }

    /// Reduction factor of the ADC/MIPI + wireless portion alone — by
    /// construction equal to `slots` (the paper's "16x").
    pub fn readout_and_wireless_reduction(&self, s: &Scenario) -> f64 {
        let conv = self.conventional_energy(s);
        let snap = self.snappix_energy(s);
        (conv.readout_pj + conv.wireless_pj) / (snap.readout_pj + snap.wireless_pj)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(wireless: Wireless) -> Scenario {
        Scenario {
            frame_pixels: 112 * 112,
            slots: 16,
            wireless,
        }
    }

    #[test]
    fn paper_constants() {
        let m = EnergyModel::paper();
        assert!((m.readout_pj_per_pixel() - 210.32).abs() < 1e-6);
        assert!((m.exposure_pj_per_pixel() - 9.68).abs() < 1e-6);
    }

    #[test]
    fn readout_and_wireless_cut_by_t() {
        let m = EnergyModel::paper();
        let s = scenario(Wireless::PassiveWifi);
        assert!((m.readout_and_wireless_reduction(&s) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn short_range_saving_matches_paper() {
        // Paper: 7.6x with passive WiFi.
        let m = EnergyModel::paper();
        let saving = m.edge_energy_saving(&scenario(Wireless::PassiveWifi));
        assert!(
            (saving - 7.6).abs() < 0.15,
            "short-range saving {saving} should be ~7.6"
        );
    }

    #[test]
    fn long_range_saving_matches_paper_shape() {
        // Paper: 15.4x with LoRa backscatter; our model gives ~16x (the
        // wireless term dominates completely), same order and direction.
        let m = EnergyModel::paper();
        let saving = m.edge_energy_saving(&scenario(Wireless::LoraBackscatter));
        assert!(
            (14.0..=16.1).contains(&saving),
            "long-range saving {saving} should be ~15-16"
        );
    }

    #[test]
    fn long_range_beats_short_range() {
        let m = EnergyModel::paper();
        let short = m.edge_energy_saving(&scenario(Wireless::PassiveWifi));
        let long = m.edge_energy_saving(&scenario(Wireless::LoraBackscatter));
        assert!(long > short, "wireless-dominated regime must save more");
    }

    #[test]
    fn saving_grows_with_slots() {
        let m = EnergyModel::paper();
        let mut prev = 0.0;
        for slots in [2usize, 4, 8, 16, 32] {
            let s = Scenario {
                frame_pixels: 1024,
                slots,
                wireless: Wireless::PassiveWifi,
            };
            let saving = m.edge_energy_saving(&s);
            assert!(
                saving > prev,
                "saving must grow with T: {saving} at {slots}"
            );
            prev = saving;
        }
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let m = EnergyModel::paper();
        let s = scenario(Wireless::Custom(100.0));
        let b = m.snappix_energy(&s);
        let total = b.readout_pj + b.exposure_pj + b.ce_overhead_pj + b.wireless_pj;
        assert!((b.total_pj() - total).abs() < 1e-9);
        // Conventional has no CE overhead.
        assert_eq!(m.conventional_energy(&s).ce_overhead_pj, 0.0);
    }

    #[test]
    fn custom_wireless_passthrough() {
        assert_eq!(Wireless::Custom(5.5).pj_per_pixel(), 5.5);
        assert_eq!(Wireless::PassiveWifi.pj_per_pixel(), 43.04);
        assert_eq!(Wireless::LoraBackscatter.pj_per_pixel(), 7.4e6);
    }

    #[test]
    fn energy_scales_linearly_with_resolution() {
        let m = EnergyModel::paper();
        let small = Scenario {
            frame_pixels: 1000,
            slots: 16,
            wireless: Wireless::PassiveWifi,
        };
        let big = Scenario {
            frame_pixels: 2000,
            ..small
        };
        let ratio = m.snappix_energy(&big).total_pj() / m.snappix_energy(&small).total_pj();
        assert!((ratio - 2.0).abs() < 1e-9);
        // And the saving factor is resolution-invariant.
        assert!((m.edge_energy_saving(&small) - m.edge_energy_saving(&big)).abs() < 1e-9);
    }
}
