//! Digital-domain compression comparison (paper Sec. VII, Related Work).
//!
//! Classic digital compression (JPEG-class) achieves high rates but costs
//! **nanojoules per pixel** even on dedicated hardware — several orders of
//! magnitude above the sensing energy itself — and it runs *after*
//! read-out, so it saves no ADC/MIPI energy at all. This module quantifies
//! that argument with the same component model.

use crate::{EnergyModel, Scenario};

/// A digital compressor running on the edge node after read-out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitalCompressor {
    /// Compression energy per input pixel, pJ. The paper cites ~nJ/pixel
    /// for an energy-optimized parallel JPEG encoder (Polonelli et al.),
    /// i.e. thousands of pJ.
    pub compress_pj_per_pixel: f64,
    /// Achieved compression ratio (output bytes shrink by this factor).
    pub ratio: f64,
}

impl DigitalCompressor {
    /// An energy-optimized JPEG-class encoder at a 16x rate (matching
    /// SnapPix's compression rate for `T = 16`).
    pub fn jpeg_class() -> Self {
        DigitalCompressor {
            compress_pj_per_pixel: 1_000.0, // 1 nJ/pixel
            ratio: 16.0,
        }
    }

    /// Total edge energy per capture window when compressing digitally:
    /// every frame is exposed and read out (full sensing cost), then
    /// compressed, then the *compressed* payload is transmitted.
    pub fn edge_energy_pj(&self, model: &EnergyModel, s: &Scenario) -> f64 {
        let px = s.frame_pixels as f64;
        let t = s.slots as f64;
        let sensing = t * px * model.sensing_pj_per_pixel;
        let compression = t * px * self.compress_pj_per_pixel;
        let wireless = t * px * s.wireless.pj_per_pixel() / self.ratio.max(1.0);
        sensing + compression + wireless
    }

    /// How much energy SnapPix saves over this digital pipeline at equal
    /// compression rate.
    pub fn snappix_advantage(&self, model: &EnergyModel, s: &Scenario) -> f64 {
        self.edge_energy_pj(model, s) / model.snappix_energy(s).total_pj()
    }
}

impl Default for DigitalCompressor {
    fn default() -> Self {
        Self::jpeg_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Wireless;

    fn scenario(wireless: Wireless) -> Scenario {
        Scenario {
            frame_pixels: 112 * 112,
            slots: 16,
            wireless,
        }
    }

    #[test]
    fn digital_compression_costs_dominate_sensing() {
        let model = EnergyModel::paper();
        let jpeg = DigitalCompressor::jpeg_class();
        let s = scenario(Wireless::PassiveWifi);
        let total = jpeg.edge_energy_pj(&model, &s);
        let compression = s.slots as f64 * s.frame_pixels as f64 * jpeg.compress_pj_per_pixel;
        assert!(
            compression / total > 0.5,
            "at nJ/pixel the encoder dominates the short-range budget"
        );
    }

    #[test]
    fn snappix_beats_digital_compression_at_equal_rate() {
        // The paper's Sec. VII argument: in-sensor CE saves both sensing
        // and transmission energy; digital compression saves neither the
        // read-out nor its own (large) compute cost.
        let model = EnergyModel::paper();
        let jpeg = DigitalCompressor::jpeg_class();
        // Short range: the encoder's compute dominates, SnapPix wins big.
        let short = jpeg.snappix_advantage(&model, &scenario(Wireless::PassiveWifi));
        assert!(
            short > 2.0,
            "SnapPix should beat digital compression at short range, got {short}x"
        );
        // Long range: both transmit the same compressed payload, so the
        // advantage shrinks towards the sensing+compute difference but
        // never inverts.
        let long = jpeg.snappix_advantage(&model, &scenario(Wireless::LoraBackscatter));
        assert!(
            long > 1.0,
            "SnapPix should never lose to digital compression, got {long}x"
        );
    }

    #[test]
    fn digital_compression_still_helps_at_long_range() {
        // Sanity: against *uncompressed* transmission over LoRa, digital
        // compression is still worthwhile — the argument is relative to
        // in-sensor CE, not that JPEG is useless.
        let model = EnergyModel::paper();
        let jpeg = DigitalCompressor::jpeg_class();
        let s = scenario(Wireless::LoraBackscatter);
        let uncompressed = model.conventional_energy(&s).total_pj();
        assert!(jpeg.edge_energy_pj(&model, &s) < uncompressed);
    }

    #[test]
    fn ratio_of_one_still_pays_compute() {
        let model = EnergyModel::paper();
        let futile = DigitalCompressor {
            compress_pj_per_pixel: 500.0,
            ratio: 1.0,
        };
        let s = scenario(Wireless::PassiveWifi);
        assert!(
            futile.edge_energy_pj(&model, &s) > model.conventional_energy(&s).total_pj(),
            "compression without rate gain must cost more than doing nothing"
        );
    }
}
