//! Property and invariant tests for the energy model.
//!
//! The model claims (paper Sec. VI-D) that coded-exposure capture saves
//! edge energy by reading out and transmitting one image instead of `T`.
//! These tests pin the claim as an *inequality over the whole parameter
//! space*, not just at the paper's operating point, plus the bookkeeping
//! invariants (breakdown totals, wireless ordering) the fleet simulator
//! leans on.

use proptest::prelude::*;
use snappix_energy::{EnergyBudget, EnergyModel, Scenario, Wireless};

proptest! {
    // SnapPix never costs more than conventional capture once there are
    // at least 2 slots to amortize over. (At slots == 1 both pipelines
    // read out and transmit one frame, but SnapPix still pays the CE
    // pattern overhead — see `single_slot_crossover` below for that
    // boundary pinned exactly.)
    #[test]
    fn snappix_never_exceeds_conventional(
        frame_pixels in 1usize..200_000,
        slots in 2usize..64,
        wireless_pj in 0.0f64..1e7,
    ) {
        let m = EnergyModel::paper();
        let s = Scenario { frame_pixels, slots, wireless: Wireless::Custom(wireless_pj) };
        let snap = m.snappix_energy(&s).total_pj();
        let conv = m.conventional_energy(&s).total_pj();
        prop_assert!(
            snap <= conv,
            "snappix {snap} pJ must not exceed conventional {conv} pJ at T={slots}"
        );
        prop_assert!(m.edge_energy_saving(&s) >= 1.0);
    }

    // The breakdown total is exactly the sum of its parts, for both
    // pipelines, everywhere.
    #[test]
    fn breakdown_total_is_sum_of_parts(
        frame_pixels in 1usize..200_000,
        slots in 1usize..64,
        wireless_pj in 0.0f64..1e7,
    ) {
        let m = EnergyModel::paper();
        let s = Scenario { frame_pixels, slots, wireless: Wireless::Custom(wireless_pj) };
        for b in [m.snappix_energy(&s), m.conventional_energy(&s)] {
            let parts = b.readout_pj + b.exposure_pj + b.ce_overhead_pj + b.wireless_pj;
            prop_assert!((b.total_pj() - parts).abs() <= 1e-9 * parts.max(1.0));
        }
    }

    // Readout + wireless is cut by exactly T — the paper's "16x" claim,
    // for every T.
    #[test]
    fn readout_and_wireless_reduction_equals_slots(
        frame_pixels in 1usize..200_000,
        slots in 1usize..64,
    ) {
        let m = EnergyModel::paper();
        let s = Scenario { frame_pixels, slots, wireless: Wireless::PassiveWifi };
        let r = m.readout_and_wireless_reduction(&s);
        prop_assert!((r - slots as f64).abs() < 1e-9 * slots as f64);
    }

    // A pricier custom link never reports less energy per pixel.
    #[test]
    fn custom_wireless_is_monotone(a in 0.0f64..1e7, b in 0.0f64..1e7) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Wireless::Custom(lo).pj_per_pixel() <= Wireless::Custom(hi).pj_per_pixel());
    }

    // The budget ledger stays conserved under an arbitrary interleaving
    // of spends and harvests.
    #[test]
    fn budget_ledger_conserved_under_random_ops(
        capacity in 1.0f64..1e6,
        rate in 0.0f64..1e4,
        costs in prop::collection::vec(0.0f64..1e5, 0..40),
        dts in prop::collection::vec(0.0f64..2.0, 0..40),
    ) {
        let mut b = EnergyBudget::new(capacity).with_harvest(rate);
        for (cost, dt) in costs.into_iter().zip(dts) {
            b.try_spend(cost);
            b.harvest_for(dt);
            prop_assert!(b.level_pj() >= 0.0 && b.level_pj() <= b.capacity_pj());
        }
        prop_assert!(b.check_conserved());
        prop_assert!(b.spent_pj() <= b.initial_pj() + b.harvested_pj() + 1e-9 * capacity.max(1.0));
    }
}

/// At `slots == 1` the compression win vanishes (1 frame either way) but
/// the CE pattern overhead remains, so SnapPix is strictly *more*
/// expensive. Pinning this boundary documents why the sweep above starts
/// at `slots == 2`.
#[test]
fn single_slot_crossover() {
    let m = EnergyModel::paper();
    let s = Scenario {
        frame_pixels: 112 * 112,
        slots: 1,
        wireless: Wireless::PassiveWifi,
    };
    let snap = m.snappix_energy(&s).total_pj();
    let conv = m.conventional_energy(&s).total_pj();
    assert!(
        snap > conv,
        "T=1 must cost extra ({snap} vs {conv}): CE overhead with no compression win"
    );
    let diff = snap - conv;
    let overhead = s.frame_pixels as f64 * m.ce_overhead_pj_per_pixel_slot;
    assert!(
        (diff - overhead).abs() < 1e-9 * overhead,
        "the T=1 gap is exactly the CE overhead"
    );
}

/// The two built-in links are ordered as the paper states: LoRa
/// backscatter (long range) costs orders of magnitude more per pixel
/// than passive WiFi (short range).
#[test]
fn builtin_wireless_ordering() {
    let wifi = Wireless::PassiveWifi.pj_per_pixel();
    let lora = Wireless::LoraBackscatter.pj_per_pixel();
    assert!(wifi < lora);
    assert!(lora / wifi > 1e4, "LoRa is >10^4 x WiFi per pixel");
}
