//! Text exposition: classic Prometheus 0.0.4 and OpenMetrics 1.0.
//!
//! Both formats are line-oriented text; the differences this module
//! cares about are:
//!
//! * OpenMetrics declares counter families *without* their `_total`
//!   suffix in `# HELP`/`# TYPE` (samples keep it);
//! * OpenMetrics histogram `_bucket` lines may carry an exemplar —
//!   `# {trace_id="..."} value` — linking the bucket to a recent trace;
//! * an OpenMetrics page ends with the mandatory `# EOF` trailer.
//!
//! Float samples use Rust's shortest-round-trip formatting, so a
//! scraper that parses `f64` reproduces every value bit-for-bit.

use crate::hist::HistogramSnapshot;
use crate::registry::{Family, Kind, MetricCore};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

pub(crate) fn render(families: &[Family], openmetrics: bool) -> String {
    let mut out = String::with_capacity(4096);
    for family in families {
        let declared = if openmetrics && family.kind == Kind::Counter {
            family.name.strip_suffix("_total").unwrap_or(&family.name)
        } else {
            &family.name
        };
        let _ = writeln!(out, "# HELP {declared} {}", escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {declared} {}", family.kind.as_str());
        for (labels, core) in &family.metrics {
            render_metric(&mut out, &family.name, labels, core, openmetrics);
        }
    }
    if openmetrics {
        out.push_str("# EOF\n");
    }
    out
}

fn render_metric(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    core: &MetricCore,
    openmetrics: bool,
) {
    match core {
        MetricCore::Counter(cell) => {
            let set = label_set(labels, &[]);
            let _ = writeln!(out, "{name}{set} {}", cell.load(Ordering::Relaxed));
        }
        MetricCore::Gauge(cell) => {
            let set = label_set(labels, &[]);
            let value = f64::from_bits(cell.load(Ordering::Relaxed));
            let _ = writeln!(out, "{name}{set} {value}");
        }
        MetricCore::Summary(core) => {
            let set = label_set(labels, &[]);
            let sum = core.sum.load(Ordering::Relaxed) as f64 * core.scale;
            let _ = writeln!(out, "{name}_sum{set} {sum}");
            let _ = writeln!(
                out,
                "{name}_count{set} {}",
                core.count.load(Ordering::Relaxed)
            );
        }
        MetricCore::Histogram(core) => {
            render_histogram(out, name, labels, &core.snapshot(), openmetrics);
        }
    }
}

/// Cumulative `_bucket` lines over the snapshot's non-empty buckets
/// (plus the mandatory `+Inf`), then `_sum` and `_count`.
fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
    openmetrics: bool,
) {
    let mut cumulative = 0u64;
    for bucket in &snap.buckets {
        cumulative += bucket.count;
        let le = bucket.upper as f64 * snap.scale;
        let set = label_set(labels, &[("le", &le.to_string())]);
        let _ = write!(out, "{name}_bucket{set} {cumulative}");
        if openmetrics {
            if let Some(trace_id) = bucket.exemplar {
                // The exemplar's value is the bucket's own upper bound:
                // always inside the bucket, as OpenMetrics requires.
                let _ = write!(out, " # {{trace_id=\"{trace_id}\"}} {le}");
            }
        }
        out.push('\n');
    }
    let set = label_set(labels, &[("le", "+Inf")]);
    let _ = writeln!(out, "{name}_bucket{set} {}", snap.count);
    let set = label_set(labels, &[]);
    let sum = snap.sum as f64 * snap.scale;
    let _ = writeln!(out, "{name}_sum{set} {sum}");
    let _ = writeln!(out, "{name}_count{set} {}", snap.count);
}

/// `{a="x",le="+Inf"}`, or the empty string when there are no labels.
fn label_set(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|&(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    format!("{{{}}}", parts.join(","))
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use crate::{HistogramOpts, Registry};

    fn demo() -> Registry {
        let registry = Registry::new();
        registry
            .counter("demo_requests_total", "Requests served.")
            .add(7);
        registry
            .counter_with(
                "demo_by_endpoint_total",
                "Requests by endpoint.",
                &[("endpoint", "classify")],
            )
            .add(3);
        registry
            .gauge("demo_depth", "Queue depth right now.")
            .set(2.5);
        registry
            .summary_with(
                "demo_stage_seconds",
                "Stage time.",
                1e-9,
                &[("stage", "sense")],
            )
            .observe_many(4, 2_000_000_000);
        let hist = registry.histogram(
            "demo_latency_seconds",
            "Latency.",
            HistogramOpts::nanos().with_exemplars(),
        );
        hist.record_with_trace(1_000, 42);
        hist.record(1_000);
        hist.record(250_000_000);
        registry
    }

    #[test]
    fn classic_page_renders_every_kind() {
        let page = demo().render();
        for needle in [
            "# HELP demo_requests_total Requests served.\n# TYPE demo_requests_total counter\ndemo_requests_total 7\n",
            "demo_by_endpoint_total{endpoint=\"classify\"} 3\n",
            "# TYPE demo_depth gauge\ndemo_depth 2.5\n",
            "demo_stage_seconds_sum{stage=\"sense\"} 2\n",
            "demo_stage_seconds_count{stage=\"sense\"} 4\n",
            "# TYPE demo_latency_seconds histogram\n",
            // 1000 ns lands in the [1000, 1007] bucket (6 sub-bucket
            // bits); the bucket's upper bound is its `le`.
            "demo_latency_seconds_bucket{le=\"0.000001007\"} 2\n",
            "demo_latency_seconds_bucket{le=\"+Inf\"} 3\n",
            "demo_latency_seconds_count 3\n",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
        assert!(!page.contains("# EOF"), "classic page has no EOF");
        assert!(!page.contains("trace_id"), "classic page has no exemplars");
    }

    #[test]
    fn openmetrics_page_strips_total_adds_exemplars_and_eof() {
        let page = demo().render_openmetrics();
        assert!(
            page.contains("# TYPE demo_requests counter\ndemo_requests_total 7\n"),
            "counter family declared without _total, sample keeps it:\n{page}"
        );
        assert!(
            page.contains(
                "demo_latency_seconds_bucket{le=\"0.000001007\"} 2 # {trace_id=\"42\"} 0.000001007\n"
            ),
            "bucket exemplar missing:\n{page}"
        );
        assert!(page.ends_with("# EOF\n"), "missing EOF trailer:\n{page}");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let registry = Registry::new();
        let h = registry.histogram("h", "h", HistogramOpts::default());
        for v in [1u64, 1, 2, 50] {
            h.record(v);
        }
        let page = registry.render();
        let bucket = |le: &str| -> u64 {
            let needle = format!("h_bucket{{le=\"{le}\"}} ");
            page.lines()
                .find_map(|l| l.strip_prefix(&needle))
                .unwrap_or_else(|| panic!("bucket {le} missing in:\n{page}"))
                .parse()
                .expect("integer")
        };
        assert_eq!(bucket("1"), 2);
        assert_eq!(bucket("2"), 3);
        assert_eq!(bucket("50"), 4);
        assert_eq!(bucket("+Inf"), 4);
        assert!(page.contains("h_sum 54\n"), "{page}");
        assert!(page.contains("h_count 4\n"), "{page}");
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with("esc_total", "Escapes.", &[("v", "a\"b\\c\nd")])
            .inc();
        let page = registry.render();
        assert!(
            page.contains("esc_total{v=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "{page}"
        );
    }
}
