//! `snappix-metrics`: the unified metrics core of the SnapPix stack.
//!
//! PR 9's `snappix-trace` gave the stack traces; this crate is the
//! metrics half. Before it, telemetry was fragmented and lossy: the
//! serving layer ranked percentiles over a sliding 4096-sample window
//! (tail latencies silently under-counted under sustained load), the
//! gateway hand-formatted its own Prometheus page, and the stream and
//! fleet layers kept private stat structs that never reached
//! `/metrics`. This crate replaces all three with one subsystem:
//!
//! * **[`Registry`]** — named [`Counter`]/[`Gauge`]/[`Summary`]/
//!   [`Histogram`] families with label sets. Registration is
//!   idempotent (same name + labels → same cell), handles are cheap
//!   clones, and the whole registry renders itself as classic
//!   Prometheus text ([`Registry::render`]) or OpenMetrics
//!   ([`Registry::render_openmetrics`]). Like the tracer, a registry
//!   is either enabled or [`disabled`](Registry::disabled) — disabled
//!   handles no-op, and serving results are bit-for-bit identical
//!   either way.
//! * **Log-linear histograms** — HDR-style buckets: exact singleton
//!   buckets below `2^b`, then `2^b` equal-width buckets per power of
//!   two, bounding relative error at `2^-b` (see [`HistogramOpts`]).
//!   Recording is lock-free (atomic adds), *every* sample since
//!   process start is counted — no window, no lost samples — and
//!   histograms [`merge`](HistogramSnapshot::merge) loss-free, so
//!   per-worker or per-replica recordings fold into one export.
//! * **Trace exemplars** — a histogram built
//!   [`with_exemplars`](HistogramOpts::with_exemplars) remembers the
//!   most recent nonzero trace id per bucket and exports it in
//!   OpenMetrics exemplar syntax, so a latency spike on a dashboard
//!   points straight at a `snappix-trace` trace id (and therefore at
//!   the gateway's `/debug/trace` page).
//!
//! # Quickstart
//!
//! ```
//! use snappix_metrics::{HistogramOpts, Registry};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("app_requests_total", "Requests served.");
//! let latency = registry.histogram(
//!     "app_latency_seconds",
//!     "Request latency.",
//!     HistogramOpts::nanos().with_exemplars(),
//! );
//!
//! requests.inc();
//! latency.record_with_trace(1_500_000, 0xabcd); // 1.5 ms, trace 0xabcd
//!
//! let snap = latency.snapshot();
//! assert_eq!(snap.count, 1);
//! let p99 = snap.quantile(0.99); // within 2^-6 of the true order statistic
//! assert!(p99 >= 1_500_000);
//! println!("{}", registry.render_openmetrics());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod render;

pub use hist::{BucketCount, HistogramOpts, HistogramSnapshot};
pub use registry::{Counter, Gauge, Histogram, Kind, Registry, Summary};

/// One-stop imports for metrics producers and exporters.
pub mod prelude {
    pub use crate::{
        BucketCount, Counter, Gauge, Histogram, HistogramOpts, HistogramSnapshot, Kind, Registry,
        Summary,
    };
}
