//! The [`Registry`]: named metric families, label sets, and the cheap
//! atomic handles layers record through.

use crate::hist::{HistCore, HistogramOpts, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The four Prometheus metric kinds the registry can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A monotonically increasing `u64` (rendered as `counter`).
    Counter,
    /// An instantaneous `f64` (rendered as `gauge`).
    Gauge,
    /// A `_sum`/`_count` pair without quantiles (rendered as `summary`).
    Summary,
    /// A log-linear histogram with `_bucket`/`_sum`/`_count` series.
    Histogram,
}

impl Kind {
    /// The `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Summary => "summary",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum MetricCore {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Summary(Arc<SummaryCore>),
    Histogram(Arc<HistCore>),
}

/// One registered family: a name, a kind, a help string, and every
/// label set registered under it, in registration order.
#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) name: String,
    pub(crate) kind: Kind,
    pub(crate) help: String,
    pub(crate) metrics: Vec<(Vec<(String, String)>, MetricCore)>,
}

#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub(crate) families: Mutex<Vec<Family>>,
}

pub(crate) fn lock(inner: &Inner) -> std::sync::MutexGuard<'_, Vec<Family>> {
    inner
        .families
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// A registry of named metric families shared by every layer of the
/// stack.
///
/// Cloning is shallow — clones share the same families, so the server
/// can hand its registry to the gateway, stream sessions, and exporters
/// without coordination. Mirrors
/// `Tracer`'s enabled/disabled split: [`Registry::new`] records,
/// [`Registry::disabled`] hands out no-op handles whose every operation
/// is a branch on a `None` — near-zero cost, bit-for-bit identical
/// serving results either way.
///
/// Registration is idempotent: asking for the same `(name, labels)`
/// pair again returns a handle to the *same* underlying cell, so
/// independent call sites (worker threads, per-session recorders) share
/// state without passing handles around. Re-registering a name under a
/// different [`Kind`] panics — that is a programming error, not a
/// runtime condition.
///
/// # Examples
///
/// ```
/// use snappix_metrics::{HistogramOpts, Registry};
///
/// let registry = Registry::new();
/// let served = registry.counter("demo_requests_total", "Requests served.");
/// let latency = registry.histogram(
///     "demo_latency_seconds",
///     "Request latency.",
///     HistogramOpts::nanos(),
/// );
/// served.inc();
/// latency.record(1_500_000); // 1.5 ms, recorded in nanoseconds
/// let page = registry.render();
/// assert!(page.contains("demo_requests_total 1"));
/// assert!(page.contains("demo_latency_seconds_count 1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled registry: handles record, [`render`](Self::render)
    /// exports.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A disabled registry: every handle it hands out is a no-op and
    /// [`render`](Self::render) returns an empty page. This is also the
    /// `Default`.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register(
        &self,
        name: &str,
        kind: Kind,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricCore,
    ) -> Option<MetricCore> {
        let inner = self.inner.as_ref()?;
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        debug_assert!(
            labels.iter().all(|(k, _)| valid_name(k)),
            "invalid label name in {labels:?}"
        );
        let mut families = lock(inner);
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert_eq!(
                    family.kind,
                    kind,
                    "metric {name} already registered as a {}",
                    family.kind.as_str()
                );
                family
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    kind,
                    help: help.to_string(),
                    metrics: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some((_, core)) = family.metrics.iter().find(|(l, _)| *l == labels) {
            return Some(core.clone());
        }
        let core = make();
        family.metrics.push((labels, core.clone()));
        Some(core)
    }

    /// Registers (or re-fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or re-fetches) a counter under a label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let core = self.register(name, Kind::Counter, help, labels, || {
            MetricCore::Counter(Arc::new(AtomicU64::new(0)))
        });
        Counter {
            cell: core.map(|c| match c {
                MetricCore::Counter(cell) => cell,
                _ => unreachable!("registered as counter"),
            }),
        }
    }

    /// Registers (or re-fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or re-fetches) a gauge under a label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let core = self.register(name, Kind::Gauge, help, labels, || {
            MetricCore::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        });
        Gauge {
            cell: core.map(|c| match c {
                MetricCore::Gauge(cell) => cell,
                _ => unreachable!("registered as gauge"),
            }),
        }
    }

    /// Registers (or re-fetches) a `_sum`/`_count` summary under a
    /// label set. `scale` converts raw recorded values to rendered
    /// units (e.g. `1e-9` for nanoseconds rendered in seconds).
    pub fn summary_with(
        &self,
        name: &str,
        help: &str,
        scale: f64,
        labels: &[(&str, &str)],
    ) -> Summary {
        let core = self.register(name, Kind::Summary, help, labels, || {
            MetricCore::Summary(Arc::new(SummaryCore {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                scale,
            }))
        });
        Summary {
            core: core.map(|c| match c {
                MetricCore::Summary(core) => core,
                _ => unreachable!("registered as summary"),
            }),
        }
    }

    /// Registers (or re-fetches) an unlabelled log-linear histogram.
    pub fn histogram(&self, name: &str, help: &str, opts: HistogramOpts) -> Histogram {
        self.histogram_with(name, help, opts, &[])
    }

    /// Registers (or re-fetches) a log-linear histogram under a label
    /// set. `opts` only applies on first registration; later fetches
    /// share the original buckets.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        opts: HistogramOpts,
        labels: &[(&str, &str)],
    ) -> Histogram {
        let core = self.register(name, Kind::Histogram, help, labels, || {
            MetricCore::Histogram(Arc::new(HistCore::new(opts)))
        });
        Histogram {
            core: core.map(|c| match c {
                MetricCore::Histogram(core) => core,
                _ => unreachable!("registered as histogram"),
            }),
        }
    }

    /// Renders every family in registration order as classic Prometheus
    /// text exposition (version 0.0.4). A disabled registry renders an
    /// empty page.
    pub fn render(&self) -> String {
        match &self.inner {
            Some(inner) => crate::render::render(&lock(inner), false),
            None => String::new(),
        }
    }

    /// Renders the OpenMetrics variant: counter families drop their
    /// `_total` suffix in `# HELP`/`# TYPE` (samples keep it),
    /// histogram buckets carry trace-id exemplars, and the page ends
    /// with the mandatory `# EOF` trailer (present even on a disabled
    /// registry, whose page is otherwise empty).
    pub fn render_openmetrics(&self) -> String {
        match &self.inner {
            Some(inner) => crate::render::render(&lock(inner), true),
            None => "# EOF\n".to_string(),
        }
    }
}

pub(crate) fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A monotonic counter handle (clones share the cell; a handle from a
/// disabled registry no-ops).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A detached no-op handle (what `Counter::default()` also gives).
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Compensates an optimistic increment (saturating at zero). The
    /// one sanctioned decrement: admission accounting counts a request
    /// *before* publishing it so completions can never lead
    /// submissions, and deducts here when the publish fails.
    pub fn deduct(&self, n: u64) {
        if let Some(cell) = &self.cell {
            // fetch_sub would wrap a racing underflow; CAS keeps the
            // counter saturating like the rest of the accounting.
            let mut current = cell.load(Ordering::Relaxed);
            loop {
                let next = current.saturating_sub(n);
                match cell.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(seen) => current = seen,
                }
            }
        }
    }

    /// The current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// An instantaneous `f64` gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A detached no-op handle.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (negative to decrease).
    pub fn add(&self, delta: f64) {
        if let Some(cell) = &self.cell {
            let mut current = cell.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + delta).to_bits();
                match cell.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(seen) => current = seen,
                }
            }
        }
    }

    /// The current value (0 for a disabled handle).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// The atomic state behind a [`Summary`] handle.
#[derive(Debug)]
pub(crate) struct SummaryCore {
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) scale: f64,
}

/// A `_sum`/`_count` summary handle (no quantiles — use a
/// [`Histogram`] where percentiles matter).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    core: Option<Arc<SummaryCore>>,
}

impl Summary {
    /// A detached no-op handle.
    pub fn noop() -> Self {
        Summary { core: None }
    }

    /// Records one observation of `value` raw units.
    pub fn observe(&self, value: u64) {
        self.observe_many(1, value);
    }

    /// Folds a pre-aggregated delta in: `count` observations totalling
    /// `sum` raw units (how per-replica stage profiles merge).
    pub fn observe_many(&self, count: u64, sum: u64) {
        if let Some(core) = &self.core {
            core.count.fetch_add(count, Ordering::Relaxed);
            core.sum.fetch_add(sum, Ordering::Relaxed);
        }
    }

    /// Observations so far (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |core| core.count.load(Ordering::Relaxed))
    }

    /// Raw (unscaled) sum so far (0 for a disabled handle).
    pub fn sum_raw(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |core| core.sum.load(Ordering::Relaxed))
    }
}

/// A log-linear histogram handle; see [`HistogramOpts`] for the error
/// bound and [`HistogramSnapshot`] for the export side.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistCore>>,
}

impl Histogram {
    /// A detached no-op handle.
    pub fn noop() -> Self {
        Histogram { core: None }
    }

    /// A standalone histogram not attached to any registry — for local
    /// aggregation that is later folded into a registered one with
    /// [`merge_from`](Self::merge_from).
    pub fn standalone(opts: HistogramOpts) -> Self {
        Histogram {
            core: Some(Arc::new(HistCore::new(opts))),
        }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Records one raw value (lock-free: three atomic adds and a max).
    pub fn record(&self, value: u64) {
        self.record_with_trace(value, 0);
    }

    /// Records one raw value and, when exemplars are enabled and
    /// `trace_id` is nonzero, remembers the id on the value's bucket as
    /// its exemplar.
    pub fn record_with_trace(&self, value: u64, trace_id: u64) {
        if let Some(core) = &self.core {
            core.record(value, trace_id);
        }
    }

    /// Folds `other`'s samples into this histogram — how per-worker or
    /// per-replica local histograms merge into one export. Loss-free:
    /// counts, sums, and bucket contents add exactly. Panics on
    /// mismatched sub-bucket bits; no-ops when either side is disabled.
    pub fn merge_from(&self, other: &Histogram) {
        if let (Some(mine), Some(theirs)) = (&self.core, &other.core) {
            mine.merge_from(theirs);
        }
    }

    /// A point-in-time copy (empty for a disabled handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |core| core.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let registry = Registry::new();
        let a = registry.counter("reqs_total", "Requests.");
        let b = registry.counter("reqs_total", "Requests.");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles share one cell");
        let l1 = registry.counter_with("by_ep_total", "By endpoint.", &[("ep", "a")]);
        let l2 = registry.counter_with("by_ep_total", "By endpoint.", &[("ep", "b")]);
        l1.inc();
        assert_eq!((l1.get(), l2.get()), (1, 0), "label sets are distinct");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        let _ = registry.counter("thing_total", "A counter.");
        let _ = registry.gauge("thing_total", "Now a gauge?");
    }

    #[test]
    fn disabled_registry_hands_out_noops() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("c_total", "c");
        let g = registry.gauge("g", "g");
        let s = registry.summary_with("s", "s", 1.0, &[]);
        let h = registry.histogram("h", "h", HistogramOpts::default());
        c.inc();
        g.set(4.2);
        s.observe(7);
        h.record(9);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!((s.count(), s.sum_raw()), (0, 0));
        assert_eq!(h.snapshot().count, 0);
        assert!(!h.is_enabled());
        assert_eq!(registry.render(), "");
        assert_eq!(registry.render_openmetrics(), "# EOF\n");
    }

    #[test]
    fn counter_deduct_saturates() {
        let registry = Registry::new();
        let c = registry.counter("c_total", "c");
        c.inc();
        c.deduct(5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_add_accumulates_floats() {
        let registry = Registry::new();
        let g = registry.gauge("g", "g");
        g.add(1.5);
        g.add(-0.5);
        assert!((g.get() - 1.0).abs() < 1e-12);
        g.set(10.0);
        assert_eq!(g.get(), 10.0);
    }

    #[test]
    fn standalone_histograms_fold_into_registered_ones() {
        let registry = Registry::new();
        let shared = registry.histogram("lat", "Latency.", HistogramOpts::default());
        let local = Histogram::standalone(HistogramOpts::default());
        local.record(100);
        local.record(200);
        shared.record(50);
        shared.merge_from(&local);
        let snap = shared.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 350);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("snappix_server_requests_total"));
        assert!(valid_name("_x:y9"));
        assert!(!valid_name(""));
        assert!(!valid_name("9lead"));
        assert!(!valid_name("has space"));
        assert!(!valid_name("has-dash"));
    }
}
