//! Log-linear (HDR-style) histograms: bounded relative error over the
//! full `u64` range, lock-free recording, and loss-free merging.
//!
//! # Bucket layout
//!
//! For `b` *sub-bucket bits* the value axis is covered by:
//!
//! * **singleton buckets** for every value `v < 2^b` (index `v`), and
//! * **groups** of `2^b` equal-width buckets per power of two above
//!   that: group `g >= 1` spans `[2^(b+g-1), 2^(b+g))` with bucket
//!   width `2^(g-1)`.
//!
//! Bucket width divided by bucket lower bound never exceeds `2^-b`, so
//! any value is reconstructible from its bucket with relative error at
//! most `2^-b` — the histogram's *growth factor*. Unlike a sliding
//! window, every sample since process start is counted: `count` is
//! exact, `sum` is exact, and quantiles rank over the whole stream.

use std::sync::atomic::{AtomicU64, Ordering};

/// The maximum magnitude group index for a given `b`: values up to
/// `u64::MAX` land in group `64 - b`.
fn groups(bits: u32) -> usize {
    (64 - bits) as usize
}

/// Total bucket count for `b` sub-bucket bits: the `2^b` singleton
/// buckets plus `2^b` per group.
pub(crate) fn bucket_count(bits: u32) -> usize {
    (groups(bits) + 1) << bits
}

/// The bucket index `value` falls into.
pub(crate) fn bucket_index(value: u64, bits: u32) -> usize {
    if value < (1u64 << bits) {
        return value as usize;
    }
    // 2^m <= value < 2^(m+1), with m >= bits.
    let m = 63 - value.leading_zeros();
    let g = (m - bits + 1) as usize;
    let sub = ((value >> (m - bits)) as usize) - (1usize << bits);
    (g << bits) + sub
}

/// The inclusive `[lower, upper]` value range of bucket `index`.
pub(crate) fn bucket_range(index: usize, bits: u32) -> (u64, u64) {
    let base = 1usize << bits;
    if index < base {
        return (index as u64, index as u64);
    }
    let g = (index >> bits) as u32;
    let sub = (index & (base - 1)) as u64;
    let lower = (base as u64 + sub) << (g - 1);
    let width = 1u64 << (g - 1);
    // `width - 1` first: the top bucket's `lower + width` is 2^64.
    (lower, lower + (width - 1))
}

/// Construction options for a [`Histogram`](crate::Histogram).
///
/// The defaults (6 sub-bucket bits, unit scale, no exemplars) bound the
/// relative error at `2^-6 ≈ 1.6%` with 3712 buckets (~29 KiB of
/// atomics per histogram).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramOpts {
    /// Sub-bucket bits `b` (clamped to `1..=12` at construction). Error
    /// bound and memory both scale with `2^b`.
    pub sub_bucket_bits: u32,
    /// Multiplier applied to raw recorded values when rendering (e.g.
    /// `1e-9` for nanosecond recordings exported in seconds). Purely a
    /// presentation concern: recording and merging stay integral.
    pub scale: f64,
    /// When set, each bucket additionally remembers the most recent
    /// nonzero trace id recorded into it, exported as an OpenMetrics
    /// exemplar.
    pub exemplars: bool,
}

impl Default for HistogramOpts {
    fn default() -> Self {
        HistogramOpts {
            sub_bucket_bits: 6,
            scale: 1.0,
            exemplars: false,
        }
    }
}

impl HistogramOpts {
    /// Options for recording [`Duration`](std::time::Duration)s as
    /// nanoseconds, rendered in seconds.
    pub fn nanos() -> Self {
        HistogramOpts {
            scale: 1e-9,
            ..HistogramOpts::default()
        }
    }

    /// Sets the sub-bucket bits (see
    /// [`sub_bucket_bits`](Self::sub_bucket_bits)).
    #[must_use]
    pub fn with_sub_bucket_bits(mut self, bits: u32) -> Self {
        self.sub_bucket_bits = bits;
        self
    }

    /// Sets the render scale (see [`scale`](Self::scale)).
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Enables per-bucket trace-id exemplars (see
    /// [`exemplars`](Self::exemplars)).
    #[must_use]
    pub fn with_exemplars(mut self) -> Self {
        self.exemplars = true;
        self
    }

    pub(crate) fn clamped_bits(&self) -> u32 {
        self.sub_bucket_bits.clamp(1, 12)
    }
}

/// The shared atomic state behind a [`Histogram`](crate::Histogram)
/// handle.
#[derive(Debug)]
pub(crate) struct HistCore {
    bits: u32,
    scale: f64,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
    /// One trace id per bucket (0 = none), allocated only when
    /// exemplars are enabled. A single atomic per bucket — the exemplar
    /// *value* is the bucket's upper bound, which by construction lies
    /// inside the bucket, so there is no (value, id) pair to tear.
    exemplars: Option<Box<[AtomicU64]>>,
}

impl HistCore {
    pub(crate) fn new(opts: HistogramOpts) -> Self {
        let bits = opts.clamped_bits();
        let n = bucket_count(bits);
        let alloc = |n: usize| -> Box<[AtomicU64]> { (0..n).map(|_| AtomicU64::new(0)).collect() };
        HistCore {
            bits,
            scale: opts.scale,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: alloc(n),
            exemplars: opts.exemplars.then(|| alloc(n)),
        }
    }

    pub(crate) fn record(&self, value: u64, trace_id: u64) {
        let i = bucket_index(value, self.bits);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        if trace_id != 0 {
            if let Some(ex) = &self.exemplars {
                ex[i].store(trace_id, Ordering::Relaxed);
            }
        }
    }

    /// Folds `other`'s buckets into `self`. Panics when the two
    /// histograms were built with different sub-bucket bits — their
    /// bucket axes are incompatible.
    pub(crate) fn merge_from(&self, other: &HistCore) {
        assert_eq!(
            self.bits, other.bits,
            "cannot merge histograms with different sub-bucket bits"
        );
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        if let (Some(mine), Some(theirs)) = (&self.exemplars, &other.exemplars) {
            for (m, t) in mine.iter().zip(theirs.iter()) {
                let id = t.load(Ordering::Relaxed);
                if id != 0 {
                    m.store(id, Ordering::Relaxed);
                }
            }
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, cell) in self.buckets.iter().enumerate() {
            let count = cell.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let (_, upper) = bucket_range(i, self.bits);
            let exemplar = self
                .exemplars
                .as_ref()
                .map(|ex| ex[i].load(Ordering::Relaxed))
                .filter(|&id| id != 0);
            buckets.push(BucketCount {
                upper,
                count,
                exemplar,
            });
        }
        HistogramSnapshot {
            sub_bucket_bits: self.bits,
            scale: self.scale,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// The bucket's inclusive upper bound, in raw (unscaled) units —
    /// also the bucket's representative value for quantiles and
    /// exemplars.
    pub upper: u64,
    /// Samples recorded into this bucket (non-cumulative).
    pub count: u64,
    /// The most recent nonzero trace id recorded into this bucket, when
    /// exemplars are enabled.
    pub exemplar: Option<u64>,
}

/// A point-in-time copy of a histogram: exact `count`/`sum`/`max` plus
/// the sparse list of non-empty buckets, ascending by bound.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The sub-bucket bits the histogram was built with.
    pub sub_bucket_bits: u32,
    /// The render scale the histogram was built with.
    pub scale: f64,
    /// Exact number of samples recorded since process start.
    pub count: u64,
    /// Exact sum of all raw recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by [`BucketCount::upper`].
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// An empty snapshot (what a disabled handle reports).
    pub(crate) fn empty() -> Self {
        HistogramSnapshot {
            sub_bucket_bits: 1,
            scale: 1.0,
            count: 0,
            sum: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// The guaranteed quantile error bound `2^-b`: any reported
    /// quantile `r` for a true order statistic `v` satisfies
    /// `v <= r <= v * (1 + 2^-b)`.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.sub_bucket_bits) as f64
    }

    /// The nearest-rank `q`-quantile's bucket representative (the
    /// bucket's inclusive upper bound, exact for values below `2^b`).
    /// `q` is clamped to `[0, 1]`; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for bucket in &self.buckets {
            cumulative += bucket.count;
            if cumulative >= rank {
                // The top bucket's representative would overshoot the
                // exact observed maximum; clamp to it.
                return bucket.upper.min(self.max);
            }
        }
        self.max
    }

    /// The loss-free merge of two snapshots: counts add bucket-wise,
    /// `count`/`sum` add, `max` takes the maximum, and `other`'s
    /// exemplars win where both sides have one (so folding a sequence
    /// of snapshots keeps the most recently merged trace id). The
    /// operation is associative and commutative on everything except
    /// that exemplar preference, which is associative by construction
    /// (`Option::or` chains). Panics on mismatched sub-bucket bits.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(
            self.sub_bucket_bits, other.sub_bucket_bits,
            "cannot merge snapshots with different sub-bucket bits"
        );
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) if x.upper == y.upper => {
                    buckets.push(BucketCount {
                        upper: x.upper,
                        count: x.count + y.count,
                        exemplar: y.exemplar.or(x.exemplar),
                    });
                    a.next();
                    b.next();
                }
                (Some(&x), Some(&y)) if x.upper < y.upper => {
                    buckets.push(*x);
                    a.next();
                }
                (Some(_), Some(&y)) => {
                    buckets.push(*y);
                    b.next();
                }
                (Some(&x), None) => {
                    buckets.push(*x);
                    a.next();
                }
                (None, Some(&y)) => {
                    buckets.push(*y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        HistogramSnapshot {
            sub_bucket_bits: self.sub_bucket_bits,
            scale: self.scale,
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_buckets_are_exact() {
        for bits in [1, 4, 6] {
            for v in 0..(1u64 << bits) {
                let i = bucket_index(v, bits);
                assert_eq!(i, v as usize);
                assert_eq!(bucket_range(i, bits), (v, v));
            }
        }
    }

    #[test]
    fn bucket_mapping_is_contiguous_and_monotone() {
        let bits = 3;
        let mut last = 0usize;
        for v in 0..10_000u64 {
            let i = bucket_index(v, bits);
            let (lo, hi) = bucket_range(i, bits);
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
            assert!(i == last || i == last + 1, "index jumped {last} -> {i}");
            last = i;
        }
    }

    #[test]
    fn extremes_map_into_the_table() {
        for bits in [1, 6, 12] {
            let n = bucket_count(bits);
            assert_eq!(bucket_index(0, bits), 0);
            assert_eq!(bucket_index(u64::MAX, bits), n - 1);
            let (_, hi) = bucket_range(n - 1, bits);
            assert_eq!(hi, u64::MAX);
        }
    }

    #[test]
    fn relative_error_is_bounded_by_the_growth_factor() {
        let bits = 5;
        let bound = 1.0 / 32.0;
        for v in [33u64, 100, 1_000, 123_456, 987_654_321, u64::MAX / 3] {
            let (lo, hi) = bucket_range(bucket_index(v, bits), bits);
            assert!(lo <= v && v <= hi);
            let err = (hi - lo) as f64 / lo as f64;
            assert!(err <= bound, "width/lower {err} exceeds {bound} at {v}");
        }
    }

    #[test]
    fn record_snapshot_quantile_roundtrip() {
        let core = HistCore::new(HistogramOpts::default().with_sub_bucket_bits(6));
        for v in 1..=1000u64 {
            core.record(v, 0);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 1000);
        for q in [0.5f64, 0.95, 0.99] {
            let exact = (q * 1000.0).ceil() as u64;
            let got = snap.quantile(q);
            assert!(got >= exact, "quantile {q}: {got} < exact {exact}");
            assert!(
                got as f64 <= exact as f64 * (1.0 + snap.relative_error()),
                "quantile {q}: {got} overshoots {exact}"
            );
        }
        assert_eq!(
            snap.quantile(1.0),
            1000,
            "max quantile clamps to the exact max"
        );
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0);
    }

    #[test]
    fn exemplars_remember_the_latest_trace_id_per_bucket() {
        let core = HistCore::new(HistogramOpts::default().with_exemplars());
        core.record(10, 111);
        core.record(10, 222); // same bucket: latest wins
        core.record(10_000, 0); // no trace id: no exemplar
        let snap = core.snapshot();
        let small = snap.buckets.iter().find(|b| b.upper == 10).expect("bucket");
        assert_eq!(small.exemplar, Some(222));
        let large = snap.buckets.iter().find(|b| b.upper > 10).expect("bucket");
        assert_eq!(large.exemplar, None);
    }

    #[test]
    fn core_merge_matches_snapshot_merge() {
        let a = HistCore::new(HistogramOpts::default());
        let b = HistCore::new(HistogramOpts::default());
        for v in [1u64, 5, 70, 900, 12_345] {
            a.record(v, 0);
        }
        for v in [2u64, 70, 1_000_000] {
            b.record(v, 0);
        }
        let merged_snap = a.snapshot().merge(&b.snapshot());
        a.merge_from(&b);
        assert_eq!(a.snapshot(), merged_snap);
        assert_eq!(merged_snap.count, 8);
        assert_eq!(merged_snap.sum, 13_321 + 1_000_000 + 72);
    }

    #[test]
    #[should_panic(expected = "different sub-bucket bits")]
    fn merging_mismatched_bits_panics() {
        let a = HistCore::new(HistogramOpts::default().with_sub_bucket_bits(4));
        let b = HistCore::new(HistogramOpts::default().with_sub_bucket_bits(5));
        a.merge_from(&b);
    }
}
