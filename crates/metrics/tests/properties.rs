//! Property tests for the log-linear histogram core: the invariants the
//! rest of the stack leans on (lossless counting, mergeability, bounded
//! quantile error) hold for arbitrary sample streams, not just the
//! hand-picked cases in the unit tests.

use proptest::prelude::*;
use snappix_metrics::{Histogram, HistogramOpts, HistogramSnapshot, Registry};

/// Builds a standalone histogram over `values` with `bits` sub-bucket
/// bits.
fn filled(values: &[u64], bits: u32) -> Histogram {
    let hist = Histogram::standalone(HistogramOpts::default().with_sub_bucket_bits(bits));
    for &v in values {
        hist.record(v);
    }
    hist
}

/// Strips exemplars so merge-order comparisons only see the
/// order-independent parts (counts, sums, bounds).
fn counts_of(snap: &HistogramSnapshot) -> (u64, u64, u64, Vec<(u64, u64)>) {
    (
        snap.count,
        snap.sum,
        snap.max,
        snap.buckets.iter().map(|b| (b.upper, b.count)).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Count conservation: every recorded sample is in exactly one
    /// bucket — the bucket counts sum to `count`, which equals the
    /// number of recordings, and `sum` is the exact total. No sliding
    /// window, no lost samples.
    #[test]
    fn count_conservation(
        values in prop::collection::vec(0u64..1_000_000_000, 1..300),
        bits in 1u32..10,
    ) {
        let snap = filled(&values, bits).snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(
            snap.buckets.iter().map(|b| b.count).sum::<u64>(),
            snap.count
        );
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
    }

    /// Merge is commutative and associative: folding per-worker
    /// histograms into one export cannot depend on worker order.
    #[test]
    fn merge_is_commutative_and_associative(
        a in prop::collection::vec(0u64..10_000_000, 0..120),
        b in prop::collection::vec(0u64..10_000_000, 0..120),
        c in prop::collection::vec(0u64..10_000_000, 0..120),
        bits in 1u32..10,
    ) {
        let (sa, sb, sc) = (
            filled(&a, bits).snapshot(),
            filled(&b, bits).snapshot(),
            filled(&c, bits).snapshot(),
        );
        prop_assert_eq!(counts_of(&sa.merge(&sb)), counts_of(&sb.merge(&sa)));
        prop_assert_eq!(
            counts_of(&sa.merge(&sb).merge(&sc)),
            counts_of(&sa.merge(&sb.merge(&sc)))
        );
        // Merging equals recording everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(
            counts_of(&sa.merge(&sb).merge(&sc)),
            counts_of(&filled(&all, bits).snapshot())
        );
    }

    /// The value→bucket mapping is monotone: a larger value never lands
    /// in an earlier bucket, and every bucket contains its value.
    #[test]
    fn bucket_mapping_is_monotone(
        pair in prop::collection::vec(0u64..u64::MAX, 2),
        bits in 1u32..10,
    ) {
        let mut pair = pair;
        pair.sort_unstable();
        let (lo, hi) = (pair[0], pair[1]);
        let hist = Histogram::standalone(HistogramOpts::default().with_sub_bucket_bits(bits));
        hist.record(lo);
        let lo_upper = hist.snapshot().buckets[0].upper;
        let hist = Histogram::standalone(HistogramOpts::default().with_sub_bucket_bits(bits));
        hist.record(hi);
        let hi_upper = hist.snapshot().buckets[0].upper;
        prop_assert!(lo <= lo_upper, "bucket upper {lo_upper} below value {lo}");
        prop_assert!(hi <= hi_upper, "bucket upper {hi_upper} below value {hi}");
        prop_assert!(
            lo_upper <= hi_upper,
            "larger value {hi} mapped below smaller {lo}"
        );
    }

    /// Quantile relative error is bounded by the configured growth
    /// factor 2^-bits: the reported quantile never undershoots the
    /// exact nearest-rank order statistic and overshoots it by at most
    /// the factor.
    #[test]
    fn quantile_error_is_bounded_by_growth_factor(
        values in prop::collection::vec(1u64..100_000_000, 1..250),
        bits in 1u32..10,
        q in 0.0f64..1.0,
    ) {
        let snap = filled(&values, bits).snapshot();
        let mut values = values;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let got = snap.quantile(q);
        prop_assert!(got >= exact, "quantile {q}: {got} undershoots exact {exact}");
        prop_assert!(
            got as f64 <= exact as f64 * (1.0 + snap.relative_error()),
            "quantile {{{q}}}: {got} exceeds {exact} by more than 2^-{bits}"
        );
    }
}

/// The registry end of the same invariants: samples recorded through
/// shared handles across threads are all counted.
#[test]
fn concurrent_recording_loses_nothing() {
    let registry = Registry::new();
    let hist = registry.histogram("t", "t", HistogramOpts::default());
    let counter = registry.counter("t_ops_total", "t");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let hist = hist.clone();
            let counter = counter.clone();
            scope.spawn(move || {
                for v in 0..5_000u64 {
                    hist.record(v);
                    counter.inc();
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, 20_000);
    assert_eq!(counter.get(), 20_000);
    assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 20_000);
}
