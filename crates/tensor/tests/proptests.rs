//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use snappix_tensor::{broadcast_shapes, Tensor};

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_with_shape(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-100.0f32..100.0, n)
        .prop_map(move |data| Tensor::from_vec(data, &shape).expect("matching length"))
}

proptest! {
    #[test]
    fn add_commutes(shape in small_shape()) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let a = tensor_with_shape(shape.clone()).new_tree(&mut runner).unwrap().current();
        let b = tensor_with_shape(shape).new_tree(&mut runner).unwrap().current();
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-5));
    }

    #[test]
    fn sub_then_add_is_identity(shape in small_shape()) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let a = tensor_with_shape(shape.clone()).new_tree(&mut runner).unwrap().current();
        let b = tensor_with_shape(shape).new_tree(&mut runner).unwrap().current();
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-3));
    }

    #[test]
    fn reshape_preserves_sum(shape in small_shape()) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let a = tensor_with_shape(shape).new_tree(&mut runner).unwrap().current();
        let flat = a.flatten();
        prop_assert_eq!(a.sum(), flat.sum());
    }

    #[test]
    fn transpose_is_involution(r in 1usize..5, c in 1usize..5) {
        let t = Tensor::arange(r * c).reshape(&[r, c]).unwrap();
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(tt, t);
    }

    #[test]
    fn matmul_distributes_over_add(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let c = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn broadcast_is_commutative_in_shape(a in small_shape(), b in small_shape()) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "broadcast compatibility must be symmetric"),
        }
    }

    #[test]
    fn sum_axis_total_matches_global_sum(shape in small_shape(), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&mut rng, &shape, -10.0, 10.0);
        for axis in 0..shape.len() {
            let s = t.sum_axis(axis, false).unwrap();
            prop_assert!((s.sum() - t.sum()).abs() < 1e-2,
                "axis {} sum {} vs {}", axis, s.sum(), t.sum());
        }
    }

    #[test]
    fn softmax_rows_are_distributions(r in 1usize..5, c in 1usize..6, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&mut rng, &[r, c], -5.0, 5.0);
        let s = t.softmax_last().unwrap();
        for row in 0..r {
            let total: f32 = (0..c).map(|j| s.get(&[row, j]).unwrap()).sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
        prop_assert!(s.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn patch_round_trip_any_divisible(gh in 1usize..4, gw in 1usize..4, ph in 1usize..4, pw in 1usize..4) {
        let (h, w) = (gh * ph, gw * pw);
        let t = Tensor::arange(h * w).reshape(&[h, w]).unwrap();
        let p = t.extract_patches(ph, pw).unwrap();
        let back = p.assemble_patches(ph, pw, h, w).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn concat_then_slice_recovers_parts(rows_a in 1usize..4, rows_b in 1usize..4, cols in 1usize..4) {
        let a = Tensor::arange(rows_a * cols).reshape(&[rows_a, cols]).unwrap();
        let b = Tensor::full(&[rows_b, cols], -1.0);
        let c = Tensor::concat(&[&a, &b], 0).unwrap();
        let a_back = c.slice_axis(0, 0, rows_a).unwrap();
        let b_back = c.slice_axis(0, rows_a, rows_a + rows_b).unwrap();
        prop_assert_eq!(a_back, a);
        prop_assert_eq!(b_back, b);
    }
}
