//! Shared data-parallel execution layer for the workspace's hot kernels.
//!
//! Every compute-heavy crate in the workspace (tensor matmul, the
//! convolution loops in `snappix-nn`, the Pearson statistics in
//! `snappix-ce`, the per-pixel capture simulation in `snappix-sensor`)
//! splits its work through the helpers here instead of spawning ad-hoc
//! threads per call site. The helpers are built on [`std::thread::scope`],
//! so borrowed inputs flow into workers without `'static` bounds or any
//! `unsafe`.
//!
//! # Thread-count resolution
//!
//! The number of workers a parallel region uses is resolved at the call,
//! in priority order:
//!
//! 1. a scoped override installed by [`with_threads`] on the calling
//!    thread (this is how `snappix::PipelineBuilder::with_threads` scopes
//!    parallelism per pipeline);
//! 2. the `SNAPPIX_THREADS` environment variable (a positive integer;
//!    read once and cached);
//! 3. [`std::thread::available_parallelism`].
//!
//! `SNAPPIX_THREADS=1` (or `with_threads(1, ..)`) makes every kernel run
//! its serial path on the calling thread — deterministic and
//! allocation-free, and the reference the parity tests compare against.
//! Worker threads themselves run with an override of 1, so a kernel
//! calling another kernel from inside a parallel region never
//! oversubscribes.
//!
//! # Examples
//!
//! ```
//! use snappix_tensor::parallel;
//!
//! // Square 8 numbers across however many workers are available.
//! let mut data: Vec<f32> = (0..8).map(|i| i as f32).collect();
//! parallel::par_chunks_mut(&mut data, 2, |_chunk_index, chunk| {
//!     for x in chunk {
//!         *x *= *x;
//!     }
//! });
//! assert_eq!(data[3], 9.0);
//!
//! // Scope a region to exactly one worker (the serial reference path).
//! let total: usize = parallel::with_threads(1, || {
//!     parallel::par_ranges(10, |r| r.len()).into_iter().sum()
//! });
//! assert_eq!(total, 10);
//! ```

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

/// Name of the environment variable that pins the worker count.
pub const THREADS_ENV_VAR: &str = "SNAPPIX_THREADS";

static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Parses a `SNAPPIX_THREADS`-style value: a positive integer pins the
/// worker count, anything else (empty, `0`, garbage) falls back to auto
/// detection.
fn parse_thread_count(value: Option<&str>) -> Option<usize> {
    match value?.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// The process-wide default worker count: `SNAPPIX_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
///
/// Resolved once and cached for the life of the process.
pub fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        parse_thread_count(std::env::var(THREADS_ENV_VAR).ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// The worker count a parallel region started from this thread would use:
/// the innermost [`with_threads`] override if one is active, otherwise
/// [`default_threads`].
pub fn current_threads() -> usize {
    THREAD_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(default_threads)
}

/// Runs `f` with the calling thread's worker count pinned to `threads`
/// (clamped to at least 1), restoring the previous setting afterwards —
/// including on panic.
///
/// Overrides nest: the innermost wins. This is the mechanism behind the
/// per-pipeline knob (`snappix::PipelineBuilder::with_threads`) and the
/// parity tests' `with_threads(1, ..)` serial reference runs.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let previous = THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
    let _restore = Restore(previous);
    f()
}

/// Splits `data` into contiguous chunks of `chunk_len` elements (the last
/// may be shorter) and runs `f(chunk_index, chunk)` over all of them,
/// fanning out across [`current_threads`] scoped workers.
///
/// Chunks are claimed dynamically from a shared queue, so uneven
/// per-chunk cost still load-balances. With one
/// worker — or when there is at most one chunk — everything runs on the
/// calling thread in index order with no thread spawned: that is the
/// serial reference path.
///
/// Each `(chunk_index, chunk)` pair is visited exactly once, and distinct
/// chunks never alias, so kernels that partition their output tensor by
/// rows/batches write lock-free. A panic in `f` propagates to the caller
/// once all workers have stopped.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = current_threads().min(n_chunks);
    if threads <= 1 {
        for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(index, chunk);
        }
        return;
    }
    // A shared queue of disjoint `&mut` chunks: workers claim the next
    // chunk under a short-lived lock (one lock round-trip per chunk; the
    // chunks are coarse, so contention is noise next to the work).
    let queue = std::sync::Mutex::new(data.chunks_mut(chunk_len).enumerate());
    let (queue, f) = (&queue, &f);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                // Workers run nested kernels serially: the split at this
                // level already saturates the requested parallelism.
                with_threads(1, || loop {
                    let next = queue
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .next();
                    match next {
                        Some((index, chunk)) => f(index, chunk),
                        None => break,
                    }
                });
            });
        }
    });
}

/// Splits `0..len` into up to [`current_threads`] contiguous,
/// near-equal-length, non-empty ranges, runs `f` on each (in parallel
/// when more than one), and returns the per-range results in range
/// order.
///
/// This is the map-reduce companion to [`par_chunks_mut`] for kernels
/// that *read* a shared structure and fold a value per shard (e.g.
/// dataset evaluation). With one worker the single range `0..len` runs on
/// the calling thread. `len == 0` yields no ranges.
pub fn par_ranges<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = current_threads().min(len);
    if threads <= 1 {
        return vec![f(0..len)];
    }
    // The ceil-divided stride can overshoot `len` before `threads` ranges
    // are cut (e.g. len 10 across 7 workers: strides of 2 cover it in
    // 5), so ranges are built by walking to `len` — never empty, never
    // inverted — rather than by worker index.
    let per = len.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..len)
        .step_by(per)
        .map(|start| start..(start + per).min(len))
        .collect();
    if ranges.len() <= 1 {
        return vec![f(0..len)];
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || with_threads(1, || f(range))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Number of workers worth spawning for a kernel with `work` cost units
/// when each worker should receive at least `min_per_worker` units:
/// `min(current_threads, work / min_per_worker)`, at least 1.
///
/// This is the one shared sizing policy for every parallel kernel in the
/// workspace. An on/off threshold is not enough: a kernel barely above
/// such a threshold would fan tiny slices across every core and pay more
/// in spawn/join than the slices are worth (an early version cost the
/// ViT forward 2.3x when oversubscribed — see BENCHMARKS.md). Scaling
/// the worker count by the work keeps each spawn paid for, on any
/// machine and under any `SNAPPIX_THREADS` setting. Callers pick
/// `min_per_worker` so a slice runs on the order of 100 µs — an order
/// of magnitude above scoped spawn/join cost.
pub fn workers_for(work: usize, min_per_worker: usize) -> usize {
    current_threads().min(work / min_per_worker.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_thread_count_accepts_positive_integers_only() {
        assert_eq!(parse_thread_count(Some("4")), Some(4));
        assert_eq!(parse_thread_count(Some(" 16 ")), Some(16));
        assert_eq!(parse_thread_count(Some("1")), Some(1));
        assert_eq!(parse_thread_count(Some("0")), None);
        assert_eq!(parse_thread_count(Some("-2")), None);
        assert_eq!(parse_thread_count(Some("eight")), None);
        assert_eq!(parse_thread_count(Some("")), None);
        assert_eq!(parse_thread_count(None), None);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
        assert_eq!(current_threads(), default_threads());
    }

    #[test]
    fn with_threads_overrides_scoped_and_nested() {
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(7, || assert_eq!(current_threads(), 7));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), default_threads());
        // Zero clamps to the serial path rather than wedging.
        with_threads(0, || assert_eq!(current_threads(), 1));
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let result = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(current_threads(), default_threads());
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_exactly_once() {
        for threads in [1usize, 2, 3, 64] {
            let mut data = vec![0u32; 37];
            with_threads(threads, || {
                par_chunks_mut(&mut data, 5, |index, chunk| {
                    for x in chunk.iter_mut() {
                        *x += 1 + index as u32;
                    }
                });
            });
            // 37 = 7 chunks of 5 + tail of 2; element e belongs to chunk e / 5.
            for (e, &v) in data.iter().enumerate() {
                assert_eq!(v, 1 + (e / 5) as u32, "element {e} at {threads} threads");
            }
        }
    }

    #[test]
    fn par_chunks_mut_handles_degenerate_shapes() {
        let mut empty: Vec<f32> = Vec::new();
        par_chunks_mut(&mut empty, 4, |_, _| panic!("no chunks expected"));

        let mut one = vec![1.0f32; 3];
        with_threads(8, || {
            // Chunk longer than the data: single chunk, runs serially.
            par_chunks_mut(&mut one, 100, |index, chunk| {
                assert_eq!(index, 0);
                assert_eq!(chunk.len(), 3);
                chunk[0] = 9.0;
            });
        });
        assert_eq!(one[0], 9.0);

        // chunk_len of 0 clamps to 1 instead of looping forever.
        let mut tiny = vec![0u8; 2];
        par_chunks_mut(&mut tiny, 0, |i, c| c[0] = i as u8);
        assert_eq!(tiny, vec![0, 1]);
    }

    #[test]
    fn par_chunks_mut_workers_run_nested_kernels_serially() {
        let mut data = vec![0usize; 4];
        with_threads(4, || {
            par_chunks_mut(&mut data, 1, |_, chunk| {
                chunk[0] = current_threads();
            });
        });
        assert!(data.iter().all(|&t| t == 1), "workers must report 1 thread");
    }

    #[test]
    fn par_ranges_covers_and_orders() {
        // Includes len/thread pairs whose ceil-divided stride overshoots
        // (10 across 7, 5 across 4): a worker-indexed split would emit
        // empty and inverted ranges there.
        for len in [23usize, 10, 5, 1] {
            for threads in [1usize, 2, 4, 5, 7, 100] {
                let ranges = with_threads(threads, || par_ranges(len, |r| r));
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= threads);
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start, "len {len}, {threads} threads");
                    assert!(r.end > r.start, "len {len}, {threads} threads");
                    expected_start = r.end;
                }
                assert_eq!(expected_start, len);
            }
        }
        assert!(par_ranges(0, |r| r).is_empty());
    }

    #[test]
    fn workers_for_scales_with_work() {
        with_threads(8, || {
            assert_eq!(workers_for(0, 100), 1);
            assert_eq!(workers_for(99, 100), 1);
            assert_eq!(workers_for(250, 100), 2);
            assert_eq!(workers_for(100_000, 100), 8, "clamped by threads");
            assert_eq!(workers_for(5, 0), 5, "zero floor clamps to 1 unit");
        });
        with_threads(1, || assert_eq!(workers_for(1 << 30, 1), 1));
    }

    #[test]
    fn par_ranges_reduces_like_serial() {
        let serial: usize = (0..1000).sum();
        let parallel: usize = with_threads(7, || {
            par_ranges(1000, |r| r.sum::<usize>()).into_iter().sum()
        });
        assert_eq!(serial, parallel);
    }
}
