//! Dense `f32` n-dimensional tensors for the SnapPix reproduction.
//!
//! This crate is the lowest substrate of the workspace: every other crate
//! (autograd, neural networks, the coded-exposure codec, the sensor
//! simulator) stores its numeric data in a [`Tensor`].
//!
//! The design goal is a small, predictable, row-major contiguous tensor with
//! the operations the SnapPix pipeline actually needs — elementwise
//! arithmetic with NumPy-style broadcasting, (batched) matrix multiplication,
//! axis reductions, shape manipulation, and seeded random fills — rather than
//! a general array-programming framework.
//!
//! # Examples
//!
//! ```
//! use snappix_tensor::Tensor;
//!
//! # fn main() -> Result<(), snappix_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::full(&[2, 2], 10.0);
//! let c = a.add(&b)?;
//! assert_eq!(c.as_slice(), &[11.0, 12.0, 13.0, 14.0]);
//!
//! let d = a.matmul(&a)?;
//! assert_eq!(d.shape(), &[2, 2]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ops;
pub mod parallel;
mod random;
mod shape;
mod storage;
mod tensor;

pub use error::TensorError;
pub use ops::argmax_coords;
pub use shape::{broadcast_shapes, strides_for, Shape};
pub use storage::{DType, SharedBuffer, Storage};
pub use tensor::Tensor;

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
