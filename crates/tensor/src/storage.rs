//! Where a tensor's elements live: an owned buffer or a shared
//! read-only view, plus the element-type tag.
//!
//! Every [`Tensor`](crate::Tensor) used to own a private `Vec<f32>`;
//! that is still the default, and every mutable path (training,
//! optimizers, in-place kernels) behaves exactly as before. The
//! [`Storage`] enum adds a second home: a read-only window into an
//! [`Arc`]-backed buffer that any number of tensors — across any number
//! of threads — reference without copying. One model artifact loaded
//! into memory once can back every worker replica of a serving fleet;
//! cloning such a tensor bumps a reference count instead of copying
//! megabytes of weights.
//!
//! Mutation of a shared tensor is *copy-on-write*: the first
//! `as_mut_slice` detaches a private owned copy, so read-only sharing
//! can never be observed through aliased writes.

use std::sync::Arc;

/// The reference-counted buffer behind [`Storage::Shared`] tensors.
///
/// A plain `Arc<Vec<f32>>`: constructing one from an existing `Vec` is
/// a move, not a copy, and clones are reference-count bumps. Two
/// tensors share storage exactly when their buffers are
/// [`Arc::ptr_eq`].
pub type SharedBuffer = Arc<Vec<f32>>;

/// Element type of a tensor's storage.
///
/// All in-memory compute is `f32` today; the enum exists so the model
/// artifact format and the storage layer have a place where quantized
/// element types (`i8`, `f16`) land without another format revision —
/// each variant fixes an on-disk encoding and an element size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DType {
    /// 32-bit IEEE-754 floats, little-endian on disk.
    F32,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size_of(self) -> usize {
        match self {
            DType::F32 => 4,
        }
    }

    /// The stable one-byte tag this dtype serializes as (`.spx`
    /// tensor-info table). Tags are append-only: existing values never
    /// change meaning.
    pub fn tag(self) -> u8 {
        match self {
            DType::F32 => 0,
        }
    }

    /// Decodes a serialized tag; `None` for tags this build does not
    /// know (a newer artifact, or corruption).
    pub fn from_tag(tag: u8) -> Option<DType> {
        match tag {
            0 => Some(DType::F32),
            _ => None,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::F32 => write!(f, "f32"),
        }
    }
}

/// The elements behind one [`Tensor`](crate::Tensor).
#[derive(Debug, Clone)]
pub enum Storage {
    /// A private, mutable buffer — the default, and the only variant
    /// training and optimizer paths ever see.
    Owned(Vec<f32>),
    /// A read-only window (`offset..offset + len`) into a buffer shared
    /// with other tensors. Cloning is a reference-count bump; mutation
    /// detaches a private copy first (copy-on-write).
    Shared {
        /// The shared backing buffer.
        buf: SharedBuffer,
        /// First element of this tensor's window.
        offset: usize,
        /// Number of elements in this tensor's window.
        len: usize,
    },
}

impl Storage {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Storage::Owned(v) => v.len(),
            Storage::Shared { len, .. } => *len,
        }
    }

    /// Returns `true` when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type of this storage. All in-memory storage is `f32`
    /// today; quantized variants will carry their own tag.
    pub fn dtype(&self) -> DType {
        DType::F32
    }

    /// The elements as a read-only slice.
    pub fn as_slice(&self) -> &[f32] {
        match self {
            Storage::Owned(v) => v,
            Storage::Shared { buf, offset, len } => &buf[*offset..*offset + *len],
        }
    }

    /// Returns `true` when this storage is a shared read-only view.
    pub fn is_shared(&self) -> bool {
        matches!(self, Storage::Shared { .. })
    }

    /// The shared backing buffer, when there is one. Use
    /// [`Arc::ptr_eq`] on two buffers to test whether two tensors share
    /// storage.
    pub fn shared_buffer(&self) -> Option<&SharedBuffer> {
        match self {
            Storage::Shared { buf, .. } => Some(buf),
            Storage::Owned(_) => None,
        }
    }

    /// Mutable access, detaching a private owned copy first when the
    /// storage is shared (copy-on-write). After this call the storage
    /// is always [`Storage::Owned`].
    pub fn make_mut(&mut self) -> &mut [f32] {
        if let Storage::Shared { buf, offset, len } = self {
            let owned = buf[*offset..*offset + *len].to_vec();
            *self = Storage::Owned(owned);
        }
        match self {
            Storage::Owned(v) => v,
            Storage::Shared { .. } => unreachable!("detached above"),
        }
    }

    /// Consumes the storage and returns an owned element vector
    /// (copying out of a shared buffer).
    pub fn into_vec(self) -> Vec<f32> {
        match self {
            Storage::Owned(v) => v,
            Storage::Shared { buf, offset, len } => buf[offset..offset + len].to_vec(),
        }
    }

    /// Converts owned storage into a shared view over a fresh
    /// single-owner buffer — a move, not a copy. Shared storage is
    /// returned unchanged, keeping its existing buffer.
    pub fn into_shared(self) -> Storage {
        match self {
            Storage::Owned(v) => {
                let len = v.len();
                Storage::Shared {
                    buf: Arc::new(v),
                    offset: 0,
                    len,
                }
            }
            shared @ Storage::Shared { .. } => shared,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_round_trips_through_tags() {
        assert_eq!(DType::from_tag(DType::F32.tag()), Some(DType::F32));
        assert_eq!(DType::from_tag(0xff), None);
        assert_eq!(DType::F32.size_of(), 4);
        assert_eq!(DType::F32.to_string(), "f32");
    }

    #[test]
    fn owned_and_shared_views_agree() {
        let owned = Storage::Owned(vec![1.0, 2.0, 3.0, 4.0]);
        let buf: SharedBuffer = Arc::new(vec![0.0, 1.0, 2.0, 3.0, 4.0, 9.0]);
        let shared = Storage::Shared {
            buf: Arc::clone(&buf),
            offset: 1,
            len: 4,
        };
        assert_eq!(owned.as_slice(), shared.as_slice());
        assert_eq!(shared.len(), 4);
        assert!(!shared.is_empty());
        assert!(shared.is_shared());
        assert!(!owned.is_shared());
        assert!(Arc::ptr_eq(shared.shared_buffer().unwrap(), &buf));
        assert!(owned.shared_buffer().is_none());
        assert_eq!(owned.dtype(), DType::F32);
    }

    #[test]
    fn make_mut_detaches_shared_storage() {
        let buf: SharedBuffer = Arc::new(vec![1.0, 2.0, 3.0]);
        let mut a = Storage::Shared {
            buf: Arc::clone(&buf),
            offset: 0,
            len: 3,
        };
        let b = a.clone();
        a.make_mut()[0] = 99.0;
        // The write went to a private copy; the shared buffer and every
        // other view are untouched.
        assert!(!a.is_shared());
        assert_eq!(a.as_slice(), &[99.0, 2.0, 3.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0]);
        // make_mut on owned storage is free and idempotent.
        a.make_mut()[1] = 50.0;
        assert_eq!(a.as_slice(), &[99.0, 50.0, 3.0]);
    }

    #[test]
    fn into_shared_moves_without_copying_and_clones_share() {
        let s = Storage::Owned(vec![5.0; 8]).into_shared();
        assert!(s.is_shared());
        let t = s.clone();
        assert!(Arc::ptr_eq(
            s.shared_buffer().unwrap(),
            t.shared_buffer().unwrap()
        ));
        // into_shared on already-shared storage keeps the same buffer.
        let u = t.clone().into_shared();
        assert!(Arc::ptr_eq(
            s.shared_buffer().unwrap(),
            u.shared_buffer().unwrap()
        ));
        assert_eq!(u.into_vec(), vec![5.0; 8]);
    }
}
