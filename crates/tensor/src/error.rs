use std::fmt;

/// Error type for all fallible tensor operations.
///
/// Every public function in this crate that can fail returns
/// [`TensorError`](crate::TensorError); the variants carry enough context to
/// diagnose shape mismatches without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The product of the requested shape does not match the element count.
    ShapeMismatch {
        /// Shape the caller asked for.
        expected: Vec<usize>,
        /// Number of elements actually available.
        got: usize,
    },
    /// Two operand shapes cannot be broadcast together.
    BroadcastError {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// Matrix multiplication inner dimensions disagree.
    MatmulMismatch {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// An element index was out of range along some axis.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Length of the axis being indexed.
        len: usize,
    },
    /// The operation requires a different rank than the tensor has.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor supplied.
        got: usize,
    },
    /// Tensors passed to a multi-tensor operation (e.g. concat/stack) have
    /// incompatible shapes.
    IncompatibleShapes {
        /// Human-readable description of the incompatibility.
        context: String,
    },
    /// An argument was invalid for reasons other than shape (e.g. an empty
    /// tensor list, a zero-sized dimension where one is not allowed).
    InvalidArgument {
        /// Human-readable description of the problem.
        context: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => write!(
                f,
                "shape {expected:?} requires {} elements but {got} were provided",
                expected.iter().product::<usize>()
            ),
            TensorError::BroadcastError { lhs, rhs } => {
                write!(f, "cannot broadcast shapes {lhs:?} and {rhs:?}")
            }
            TensorError::MatmulMismatch { lhs, rhs } => {
                write!(f, "cannot matrix-multiply shapes {lhs:?} and {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for axis of length {len}")
            }
            TensorError::RankMismatch { expected, got } => {
                write!(f, "expected tensor of rank {expected} but got rank {got}")
            }
            TensorError::IncompatibleShapes { context } => {
                write!(f, "incompatible shapes: {context}")
            }
            TensorError::InvalidArgument { context } => {
                write!(f, "invalid argument: {context}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch_mentions_element_count() {
        let err = TensorError::ShapeMismatch {
            expected: vec![2, 3],
            got: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains('6'), "message should contain product: {msg}");
        assert!(msg.contains('5'));
    }

    #[test]
    fn display_broadcast_error_mentions_both_shapes() {
        let err = TensorError::BroadcastError {
            lhs: vec![2, 3],
            rhs: vec![4],
        };
        let msg = err.to_string();
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
