use crate::{Result, TensorError};

/// A lightweight owned shape: the extent of each tensor axis in row-major
/// order.
///
/// `Shape` is a thin wrapper over `Vec<usize>` that centralizes the
/// shape-algebra used throughout the crate (element counts, stride
/// computation, broadcasting).
///
/// # Examples
///
/// ```
/// use snappix_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Total number of elements (product of all extents; `1` for rank 0).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` if the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

/// Computes row-major (C-order) strides for `dims`.
///
/// The last axis always has stride 1; an empty `dims` yields an empty vector.
///
/// # Examples
///
/// ```
/// use snappix_tensor::strides_for;
/// assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// assert_eq!(strides_for(&[]), Vec::<usize>::new());
/// ```
pub fn strides_for(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Computes the NumPy-style broadcast of two shapes.
///
/// Shapes are aligned at the trailing axes; each pair of extents must be
/// equal or one of them must be `1`.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastError`] when any aligned pair of extents
/// differs and neither is `1`.
///
/// # Examples
///
/// ```
/// use snappix_tensor::broadcast_shapes;
/// # fn main() -> Result<(), snappix_tensor::TensorError> {
/// assert_eq!(broadcast_shapes(&[4, 1, 3], &[2, 3])?, vec![4, 2, 3]);
/// assert!(broadcast_shapes(&[2, 3], &[4]).is_err());
/// # Ok(())
/// # }
/// ```
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() {
            1
        } else {
            lhs[i - (rank - lhs.len())]
        };
        let r = if i < rank - rhs.len() {
            1
        } else {
            rhs[i - (rank - rhs.len())]
        };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::BroadcastError {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
            });
        };
    }
    Ok(out)
}

/// Converts a flat row-major index into per-axis coordinates.
pub(crate) fn unravel(mut flat: usize, dims: &[usize]) -> Vec<usize> {
    let strides = strides_for(dims);
    let mut coords = vec![0usize; dims.len()];
    for (i, &s) in strides.iter().enumerate() {
        coords[i] = flat / s;
        flat %= s;
    }
    coords
}

/// Row-major strides of an operand with shape `dims`, right-aligned into
/// a broadcast output of rank `out_rank`, with broadcast axes (missing
/// or size 1) given stride 0.
///
/// Together with an odometer walk over the output shape this lets
/// broadcast loops run without any per-element allocation or div/mod
/// (see [`Tensor::zip_with`](crate::Tensor::zip_with)).
pub(crate) fn broadcast_strides(dims: &[usize], out_rank: usize) -> Vec<usize> {
    let strides = strides_for(dims);
    let mut eff = vec![0usize; out_rank];
    let offset = out_rank - dims.len();
    for (i, &d) in dims.iter().enumerate() {
        eff[offset + i] = if d == 1 { 0 } else { strides[i] };
    }
    eff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_scalar_with_anything() {
        assert_eq!(broadcast_shapes(&[], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 3], &[]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_ones_expand() {
        assert_eq!(
            broadcast_shapes(&[4, 1, 3], &[1, 2, 1]).unwrap(),
            vec![4, 2, 3]
        );
    }

    #[test]
    fn broadcast_trailing_alignment() {
        assert_eq!(broadcast_shapes(&[5, 4], &[4]).unwrap(), vec![5, 4]);
    }

    #[test]
    fn broadcast_incompatible_errors() {
        let err = broadcast_shapes(&[2, 3], &[4]).unwrap_err();
        assert!(matches!(err, TensorError::BroadcastError { .. }));
    }

    #[test]
    fn unravel_round_trip() {
        let dims = [3, 4, 5];
        for flat in 0..60 {
            let c = unravel(flat, &dims);
            let strides = strides_for(&dims);
            let back: usize = c.iter().zip(&strides).map(|(a, b)| a * b).sum();
            assert_eq!(back, flat);
        }
    }

    #[test]
    fn broadcast_strides_zero_unit_and_missing_axes() {
        // operand shape [1, 3] broadcast into rank-2 output: the unit
        // axis contributes stride 0, the real axis its row-major stride.
        assert_eq!(broadcast_strides(&[1, 3], 2), vec![0, 1]);
        // operand shape [3] right-aligned into rank-3 output.
        assert_eq!(broadcast_strides(&[3], 3), vec![0, 0, 1]);
        assert_eq!(broadcast_strides(&[2, 1, 3], 3), vec![3, 0, 1]);
    }

    #[test]
    fn shape_basic_accessors() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
        assert_eq!(s.rank(), 2);
        assert_eq!(s.dims(), &[2, 3]);
        let z = Shape::new(&[0, 4]);
        assert!(z.is_empty());
    }
}
