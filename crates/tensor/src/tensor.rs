use crate::shape::{broadcast_strides, strides_for};
use crate::storage::{DType, SharedBuffer, Storage};
use crate::{broadcast_shapes, Result, TensorError};

/// A dense, row-major, contiguous `f32` tensor.
///
/// `Tensor` is the numeric workhorse of the SnapPix reproduction. It stores
/// its elements contiguously in C order behind a [`Storage`] — a private
/// `Vec<f32>` by default, or a read-only window into a shared
/// [`SharedBuffer`] for weights loaded from a model artifact and fanned
/// out across serving replicas. All operations allocate fresh (owned)
/// output tensors; in-place variants are provided where the training
/// loops need them (e.g. [`Tensor::add_assign`]), and mutating a shared
/// tensor transparently detaches a private copy first (copy-on-write),
/// so shared storage is never observable through aliased writes.
///
/// # Examples
///
/// ```
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_tensor::TensorError> {
/// let video = Tensor::zeros(&[16, 32, 32]); // T x H x W
/// assert_eq!(video.len(), 16 * 32 * 32);
/// let frame = video.index_axis(0, 3)?;      // H x W
/// assert_eq!(frame.shape(), &[32, 32]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Tensor {
    data: Storage,
    shape: Vec<usize>,
}

/// Value equality: same shape, same elements (positionally, with IEEE
/// `f32` semantics — `NaN != NaN`). Where the elements *live* (owned
/// vs. shared storage) never affects equality.
impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.as_slice() == other.as_slice()
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: Storage::Owned(vec![0.0; shape.iter().product()]),
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            data: Storage::Owned(vec![value; shape.iter().product()]),
            shape: shape.to_vec(),
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: Storage::Owned(vec![value]),
            shape: vec![],
        }
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                expected: shape.to_vec(),
                got: data.len(),
            });
        }
        Ok(Tensor {
            data: Storage::Owned(data),
            shape: shape.to_vec(),
        })
    }

    /// Creates a tensor whose elements are a read-only window of `count
    /// = shape.iter().product()` elements at `offset` into a shared
    /// buffer — zero-copy: the tensor references `buf` instead of
    /// copying it, and so does every [`Clone`] of the tensor.
    ///
    /// This is the constructor model-artifact readers use to hand every
    /// serving replica a view of one buffer. Mutating accessors
    /// (e.g. [`Tensor::as_mut_slice`]) detach a private copy first, so
    /// the shared buffer itself stays immutable for its lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the window
    /// `offset..offset + count` does not lie inside `buf`.
    pub fn from_shared(buf: SharedBuffer, offset: usize, shape: &[usize]) -> Result<Self> {
        let count: usize = shape.iter().product();
        let end = offset.checked_add(count);
        if end.is_none_or(|end| end > buf.len()) {
            return Err(TensorError::InvalidArgument {
                context: format!(
                    "shared window {offset}..{offset}+{count} exceeds buffer of {} elements",
                    buf.len()
                ),
            });
        }
        Ok(Tensor {
            data: Storage::Shared {
                buf,
                offset,
                len: count,
            },
            shape: shape.to_vec(),
        })
    }

    /// Creates a 1-D tensor with values `0, 1, ..., n-1`.
    pub fn arange(n: usize) -> Self {
        Tensor {
            data: Storage::Owned((0..n).map(|i| i as f32).collect()),
            shape: vec![n],
        }
    }

    /// Creates a 1-D tensor of `n` evenly spaced values from `start` to
    /// `stop` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn linspace(start: f32, stop: f32, n: usize) -> Self {
        assert!(n > 0, "linspace requires n > 0");
        if n == 1 {
            return Tensor::from_vec(vec![start], &[1]).expect("shape matches");
        }
        let step = (stop - start) / (n - 1) as f32;
        Tensor {
            data: Storage::Owned((0..n).map(|i| start + step * i as f32).collect()),
            shape: vec![n],
        }
    }

    /// Creates an `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        let data = t.data.make_mut();
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        t
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Shape of the tensor as a slice of axis extents.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Elements as a flat row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Elements as a mutable flat row-major slice.
    ///
    /// On a tensor over shared storage this detaches a private owned
    /// copy first (copy-on-write); owned tensors — everything the
    /// training paths touch — pay nothing.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.make_mut()
    }

    /// Consumes the tensor and returns its flat element vector (copying
    /// out of shared storage).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// The storage behind this tensor's elements.
    pub fn storage(&self) -> &Storage {
        &self.data
    }

    /// Element type of this tensor. Always [`DType::F32`] in memory
    /// today; the tag is the seam where quantized weight paths land.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Returns `true` when this tensor is a read-only view of a shared
    /// buffer (see [`Tensor::from_shared`] / [`Tensor::into_shared`]).
    pub fn is_shared(&self) -> bool {
        self.data.is_shared()
    }

    /// The shared buffer backing this tensor, when there is one. Two
    /// tensors share storage exactly when both return `Some` and the
    /// buffers are [`std::sync::Arc::ptr_eq`].
    pub fn shared_buffer(&self) -> Option<&SharedBuffer> {
        self.data.shared_buffer()
    }

    /// Converts this tensor's storage into a shared buffer other
    /// tensors (and threads) can reference: owned storage is *moved*
    /// into a fresh buffer (no copy); already-shared storage keeps its
    /// buffer. Shape and values are unchanged. Subsequent [`Clone`]s
    /// are reference-count bumps instead of deep copies — the
    /// replicate-without-copying primitive serving layers build on.
    #[must_use]
    pub fn into_shared(self) -> Self {
        Tensor {
            data: self.data.into_shared(),
            shape: self.shape,
        }
    }

    /// Row-major strides of the tensor.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.shape)
    }

    /// Reads the element at multi-axis `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index.len() != rank`, or
    /// [`TensorError::IndexOutOfRange`] if any coordinate is out of bounds.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.as_slice()[self.flat_index(index)?])
    }

    /// Writes `value` at multi-axis `index`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::get`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.flat_index(index)?;
        self.data.make_mut()[flat] = value;
        Ok(())
    }

    /// Returns the single element of a tensor with exactly one element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the tensor has more than
    /// one element.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() != 1 {
            return Err(TensorError::InvalidArgument {
                context: format!("item() on tensor with {} elements", self.data.len()),
            });
        }
        Ok(self.as_slice()[0])
    }

    fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len() {
            return Err(TensorError::RankMismatch {
                expected: self.shape.len(),
                got: index.len(),
            });
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.shape).zip(&strides) {
            if i >= d {
                return Err(TensorError::IndexOutOfRange { index: i, len: d });
            }
            flat += i * s;
        }
        Ok(flat)
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.to_vec(),
                got: self.data.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// Flattens to a 1-D tensor.
    pub fn flatten(&self) -> Self {
        Tensor {
            data: self.data.clone(),
            shape: vec![self.data.len()],
        }
    }

    /// Inserts a new axis of extent 1 at position `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis > rank`.
    pub fn unsqueeze(&self, axis: usize) -> Result<Self> {
        if axis > self.shape.len() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.shape.len(),
            });
        }
        let mut shape = self.shape.clone();
        shape.insert(axis, 1);
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Removes an axis of extent 1 at position `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`, or
    /// [`TensorError::InvalidArgument`] if the axis extent is not 1.
    pub fn squeeze(&self, axis: usize) -> Result<Self> {
        if axis >= self.shape.len() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.shape.len(),
            });
        }
        if self.shape[axis] != 1 {
            return Err(TensorError::InvalidArgument {
                context: format!("cannot squeeze axis {axis} of extent {}", self.shape[axis]),
            });
        }
        let mut shape = self.shape.clone();
        shape.remove(axis);
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Permutes the axes: output axis `i` is input axis `perm[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] unless `perm` is a
    /// permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Result<Self> {
        let rank = self.shape.len();
        if perm.len() != rank {
            return Err(TensorError::InvalidArgument {
                context: format!("permutation {perm:?} does not match rank {rank}"),
            });
        }
        let mut seen = vec![false; rank];
        for &p in perm {
            if p >= rank || seen[p] {
                return Err(TensorError::InvalidArgument {
                    context: format!("{perm:?} is not a permutation of 0..{rank}"),
                });
            }
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_strides = self.strides();
        // Source strides reordered into output-axis order; the odometer
        // walk below then visits the source without per-element
        // coordinate math (attention permutes twice per head split).
        let src_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let src_data = self.as_slice();
        let mut out = Tensor::zeros(&out_shape);
        let mut coords = vec![0usize; rank];
        let mut src = 0usize;
        for o in out.data.make_mut().iter_mut() {
            *o = src_data[src];
            for axis in (0..rank).rev() {
                coords[axis] += 1;
                src += src_strides[axis];
                if coords[axis] < out_shape[axis] {
                    break;
                }
                coords[axis] = 0;
                src -= src_strides[axis] * out_shape[axis];
            }
        }
        Ok(out)
    }

    /// Transposes the last two axes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for tensors of rank < 2.
    pub fn transpose(&self) -> Result<Self> {
        let rank = self.shape.len();
        if rank < 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: rank,
            });
        }
        let mut perm: Vec<usize> = (0..rank).collect();
        perm.swap(rank - 1, rank - 2);
        self.permute(&perm)
    }

    /// Materializes a broadcast of this tensor to `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastError`] if the shapes are not
    /// broadcast-compatible or the broadcast would shrink the tensor.
    pub fn broadcast_to(&self, shape: &[usize]) -> Result<Self> {
        let merged = broadcast_shapes(&self.shape, shape)?;
        if merged != shape {
            return Err(TensorError::BroadcastError {
                lhs: self.shape.clone(),
                rhs: shape.to_vec(),
            });
        }
        let rank = shape.len();
        let strides = broadcast_strides(&self.shape, rank);
        let src_data = self.as_slice();
        let mut out = Tensor::zeros(shape);
        let mut coords = vec![0usize; rank];
        let mut src = 0usize;
        for o in out.data.make_mut().iter_mut() {
            *o = src_data[src];
            for axis in (0..rank).rev() {
                coords[axis] += 1;
                src += strides[axis];
                if coords[axis] < shape[axis] {
                    break;
                }
                coords[axis] = 0;
                src -= strides[axis] * shape[axis];
            }
        }
        Ok(out)
    }

    /// Selects index `index` along `axis`, dropping that axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] or
    /// [`TensorError::IndexOutOfRange`] on bad arguments.
    pub fn index_axis(&self, axis: usize, index: usize) -> Result<Self> {
        let picked = self.slice_axis(axis, index, index + 1)?;
        picked.squeeze(axis)
    }

    /// Slices `[start, end)` along `axis`, keeping the axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`, or
    /// [`TensorError::IndexOutOfRange`] if `start > end` or
    /// `end > shape[axis]`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Result<Self> {
        let rank = self.shape.len();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        if start > end || end > self.shape[axis] {
            return Err(TensorError::IndexOutOfRange {
                index: end,
                len: self.shape[axis],
            });
        }
        let mut out_shape = self.shape.clone();
        out_shape[axis] = end - start;
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let src = self.as_slice();
        let mut data = Vec::with_capacity(out_shape.iter().product());
        for o in 0..outer {
            let base = o * self.shape[axis] * inner;
            data.extend_from_slice(&src[base + start * inner..base + end * inner]);
        }
        Ok(Tensor {
            data: Storage::Owned(data),
            shape: out_shape,
        })
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            data: Storage::Owned(self.as_slice().iter().map(|&x| f(x)).collect()),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data.make_mut() {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastError`] if the shapes are not
    /// broadcast-compatible.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape == other.shape {
            // Fast path: identical shapes.
            let data = self
                .as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect();
            return Ok(Tensor {
                data: Storage::Owned(data),
                shape: self.shape.clone(),
            });
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape)?;
        let rank = out_shape.len();
        // Odometer walk: per-operand strides are precomputed (0 on
        // broadcast axes), so each element costs a couple of adds
        // instead of the coordinate unravel + stride rebuild the naive
        // formulation pays — the pre-ViT stack is dominated by exactly
        // these broadcast ops (bias adds, layer-norm scaling).
        let a_strides = broadcast_strides(&self.shape, rank);
        let b_strides = broadcast_strides(&other.shape, rank);
        let a_data = self.as_slice();
        let b_data = other.as_slice();
        let mut out = Tensor::zeros(&out_shape);
        let mut coords = vec![0usize; rank];
        let (mut ai, mut bi) = (0usize, 0usize);
        for o in out.data.make_mut().iter_mut() {
            *o = f(a_data[ai], b_data[bi]);
            for axis in (0..rank).rev() {
                coords[axis] += 1;
                ai += a_strides[axis];
                bi += b_strides[axis];
                if coords[axis] < out_shape[axis] {
                    break;
                }
                coords[axis] = 0;
                ai -= a_strides[axis] * out_shape[axis];
                bi -= b_strides[axis] * out_shape[axis];
            }
        }
        Ok(out)
    }

    /// Elementwise sum with broadcasting.
    ///
    /// # Errors
    ///
    /// See [`Tensor::zip_with`].
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference with broadcasting.
    ///
    /// # Errors
    ///
    /// See [`Tensor::zip_with`].
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise product with broadcasting.
    ///
    /// # Errors
    ///
    /// See [`Tensor::zip_with`].
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient with broadcasting.
    ///
    /// # Errors
    ///
    /// See [`Tensor::zip_with`].
    pub fn div(&self, other: &Tensor) -> Result<Self> {
        self.zip_with(other, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    ///
    /// # Errors
    ///
    /// See [`Tensor::zip_with`].
    pub fn maximum(&self, other: &Tensor) -> Result<Self> {
        self.zip_with(other, f32::max)
    }

    /// Adds `other` into `self` in place; shapes must match exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                context: format!("add_assign shapes {:?} vs {:?}", self.shape, other.shape),
            });
        }
        for (a, &b) in self.data.make_mut().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|x| -x)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Self {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Self {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Self {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Elementwise integer power.
    pub fn powi(&self, n: i32) -> Self {
        self.map(|x| x.powi(n))
    }

    /// Returns `true` when every element differs from `other` by at most
    /// `tol` (and the shapes match).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .as_slice()
                .iter()
                .zip(other.as_slice())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?} ", self.shape)?;
        const MAX: usize = 16;
        let data = self.as_slice();
        if data.len() <= MAX {
            write!(f, "{data:?}")
        } else {
            write!(f, "{:?}... ({} elements)", &data[..MAX], data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn from_shared_views_window_and_checks_bounds() {
        let buf: SharedBuffer = Arc::new((0..10).map(|i| i as f32).collect());
        let t = Tensor::from_shared(Arc::clone(&buf), 2, &[2, 3]).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.as_slice(), &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert!(t.is_shared());
        assert_eq!(t.dtype(), DType::F32);
        assert!(Arc::ptr_eq(t.shared_buffer().unwrap(), &buf));
        // One-past-the-end window is rejected, as is offset overflow.
        assert!(matches!(
            Tensor::from_shared(Arc::clone(&buf), 5, &[2, 3]),
            Err(TensorError::InvalidArgument { .. })
        ));
        assert!(matches!(
            Tensor::from_shared(Arc::clone(&buf), usize::MAX, &[2]),
            Err(TensorError::InvalidArgument { .. })
        ));
        // Exactly-fitting window is fine.
        assert!(Tensor::from_shared(buf, 4, &[6]).is_ok());
    }

    #[test]
    fn shared_tensor_clones_share_storage() {
        let t = Tensor::arange(8).into_shared();
        let u = t.clone();
        assert!(Arc::ptr_eq(
            t.shared_buffer().unwrap(),
            u.shared_buffer().unwrap()
        ));
        // Owned tensors report no shared buffer.
        assert!(Tensor::arange(8).shared_buffer().is_none());
        assert!(!Tensor::arange(8).is_shared());
    }

    #[test]
    fn mutating_a_shared_tensor_copies_on_write() {
        let t = Tensor::arange(4).into_shared();
        let mut u = t.clone();
        u.set(&[1], 99.0).unwrap();
        assert!(!u.is_shared());
        assert_eq!(u.as_slice(), &[0.0, 99.0, 2.0, 3.0]);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        let mut v = t.clone();
        v.as_mut_slice()[0] = -1.0;
        assert_eq!(t.as_slice()[0], 0.0);
        let mut w = t.clone();
        w.map_inplace(|x| x + 1.0);
        assert_eq!(w.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn equality_ignores_storage_kind() {
        let owned = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        let shared = owned.clone().into_shared();
        assert_eq!(owned, shared);
        assert_ne!(owned, Tensor::zeros(&[2, 3]));
        assert_ne!(owned, Tensor::arange(6)); // same data, different shape
    }

    #[test]
    fn ops_on_shared_tensors_match_owned() {
        let a = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let sa = a.clone().into_shared();
        let sb = b.clone().into_shared();
        assert_eq!(a.add(&b).unwrap(), sa.add(&sb).unwrap());
        assert_eq!(a.permute(&[1, 0]).unwrap(), sa.permute(&[1, 0]).unwrap());
        assert_eq!(
            a.broadcast_to(&[2, 2, 3]).unwrap(),
            sa.broadcast_to(&[2, 2, 3]).unwrap()
        );
        assert_eq!(
            a.slice_axis(1, 1, 3).unwrap(),
            sa.slice_axis(1, 1, 3).unwrap()
        );
        assert_eq!(a.map(|x| x * 2.0), sa.map(|x| x * 2.0));
        assert_eq!(format!("{a}"), format!("{sa}"));
        let c = Tensor::full(&[2, 3], 0.5);
        let sc = c.clone().into_shared();
        let mut a2 = a.clone();
        let mut sa2 = sa.clone();
        a2.add_assign(&c).unwrap();
        sa2.add_assign(&sc).unwrap();
        assert_eq!(a2, sa2);
        assert_eq!(sa.clone().into_vec(), a.clone().into_vec());
    }

    #[test]
    fn constructors_produce_expected_shapes() {
        assert_eq!(Tensor::zeros(&[2, 3]).len(), 6);
        assert_eq!(Tensor::ones(&[4]).as_slice(), &[1.0; 4]);
        assert_eq!(Tensor::full(&[2], 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).rank(), 0);
        assert_eq!(Tensor::arange(4).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.as_slice(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(Tensor::linspace(2.0, 9.0, 1).as_slice(), &[2.0]);
    }

    #[test]
    fn eye_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.get(&[1, 2]).unwrap(), 0.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Tensor::from_vec(vec![1.0, 2.0], &[3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.as_slice()[5], 9.0);
    }

    #[test]
    fn get_rejects_bad_indices() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            t.get(&[2, 0]),
            Err(TensorError::IndexOutOfRange { .. })
        ));
        assert!(matches!(t.get(&[0]), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn item_requires_single_element() {
        assert_eq!(Tensor::scalar(5.0).item().unwrap(), 5.0);
        assert!(Tensor::zeros(&[2]).item().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        assert_eq!(t.get(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn unsqueeze_squeeze_round_trip() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        let u = t.unsqueeze(1).unwrap();
        assert_eq!(u.shape(), &[2, 1, 3]);
        let s = u.squeeze(1).unwrap();
        assert_eq!(s.shape(), &[2, 3]);
        assert!(u.squeeze(0).is_err());
    }

    #[test]
    fn permute_transposes_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        let p = t.permute(&[1, 0]).unwrap();
        assert_eq!(p.shape(), &[3, 2]);
        assert_eq!(p.get(&[0, 1]).unwrap(), 3.0);
        assert_eq!(p.get(&[2, 0]).unwrap(), 2.0);
    }

    #[test]
    fn permute_rejects_non_permutation() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
        assert!(t.permute(&[0, 5]).is_err());
    }

    #[test]
    fn transpose_swaps_last_two() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.shape(), &[2, 4, 3]);
        assert_eq!(tt.get(&[1, 2, 1]).unwrap(), t.get(&[1, 1, 2]).unwrap());
        assert!(Tensor::arange(3).transpose().is_err());
    }

    #[test]
    fn broadcast_to_expands_unit_axes() {
        let row = Tensor::arange(3).reshape(&[1, 3]).unwrap();
        let b = row.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(b.as_slice(), &[0.0, 1.0, 2.0, 0.0, 1.0, 2.0]);
        assert!(Tensor::zeros(&[2, 3]).broadcast_to(&[3]).is_err());
    }

    #[test]
    fn slice_and_index_axis() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]).unwrap();
        let s = t.slice_axis(1, 1, 3).unwrap();
        assert_eq!(s.shape(), &[2, 2, 4]);
        assert_eq!(s.get(&[0, 0, 0]).unwrap(), 4.0);
        let i = t.index_axis(0, 1).unwrap();
        assert_eq!(i.shape(), &[3, 4]);
        assert_eq!(i.get(&[0, 0]).unwrap(), 12.0);
        assert!(t.slice_axis(3, 0, 1).is_err());
        assert!(t.slice_axis(1, 2, 5).is_err());
    }

    #[test]
    fn elementwise_same_shape() {
        let a = Tensor::arange(4);
        let b = Tensor::full(&[4], 2.0);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-2.0, -1.0, 0.0, 1.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[0.0, 2.0, 4.0, 6.0]);
        assert_eq!(a.div(&b).unwrap().as_slice(), &[0.0, 0.5, 1.0, 1.5]);
        assert_eq!(a.maximum(&b).unwrap().as_slice(), &[2.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn elementwise_broadcast() {
        let a = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        let col = Tensor::from_vec(vec![10.0, 20.0], &[2, 1]).unwrap();
        let r = a.add(&col).unwrap();
        assert_eq!(r.as_slice(), &[10.0, 11.0, 12.0, 23.0, 24.0, 25.0]);
    }

    #[test]
    fn broadcast_incompatible_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Tensor::arange(4);
        let b = Tensor::full(&[4], 1.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let mut c = Tensor::zeros(&[2]);
        assert!(c.add_assign(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn unary_helpers() {
        let t = Tensor::from_vec(vec![-1.0, 4.0], &[2]).unwrap();
        assert_eq!(t.neg().as_slice(), &[1.0, -4.0]);
        assert_eq!(t.abs().as_slice(), &[1.0, 4.0]);
        assert_eq!(t.scale(2.0).as_slice(), &[-2.0, 8.0]);
        assert_eq!(t.add_scalar(1.0).as_slice(), &[0.0, 5.0]);
        assert_eq!(t.clamp(0.0, 2.0).as_slice(), &[0.0, 2.0]);
        assert_eq!(t.powi(2).as_slice(), &[1.0, 16.0]);
        assert!((t.abs().sqrt().as_slice()[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::full(&[3], 1.0);
        let b = Tensor::full(&[3], 1.0 + 1e-7);
        assert!(a.approx_eq(&b, 1e-6));
        assert!(!a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Tensor::full(&[2], 1.0), 1.0));
    }

    #[test]
    fn display_truncates_large_tensors() {
        let small = Tensor::arange(3);
        assert!(!format!("{small}").contains("elements"));
        let large = Tensor::zeros(&[100]);
        assert!(format!("{large}").contains("100 elements"));
    }
}
