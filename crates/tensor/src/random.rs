//! Seeded random tensor construction.
//!
//! All stochastic behaviour in the SnapPix reproduction flows through
//! explicitly seeded [`rand::rngs::StdRng`] values so experiments are
//! bit-reproducible.

use crate::Tensor;
use rand::distr::{Distribution, Uniform};
use rand::Rng;

impl Tensor {
    /// Creates a tensor of i.i.d. uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], lo: f32, hi: f32) -> Self {
        let dist = Uniform::new(lo, hi).expect("valid uniform bounds");
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n).map(|_| dist.sample(rng)).collect();
        Tensor::from_vec(data, shape).expect("length matches shape by construction")
    }

    /// Creates a tensor of i.i.d. normal samples with the given mean and
    /// standard deviation (Box–Muller transform; no extra dependency).
    pub fn rand_normal<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], mean: f32, std: f32) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box-Muller: two uniforms -> two normals.
            let u1: f32 = rng.random_range(f32::EPSILON..1.0);
            let u2: f32 = rng.random_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor::from_vec(data, shape).expect("length matches shape by construction")
    }

    /// Creates a tensor of i.i.d. Bernoulli samples (`1.0` with probability
    /// `p`, else `0.0`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn rand_bernoulli<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], p: f32) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|_| if rng.random::<f32>() < p { 1.0 } else { 0.0 })
            .collect();
        Tensor::from_vec(data, shape).expect("length matches shape by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_within_bounds_and_seed_reproducible() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform(&mut rng, &[100], -1.0, 1.0);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let b = Tensor::rand_uniform(&mut rng2, &[100], -1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor::rand_normal(&mut rng, &[10_000], 2.0, 3.0);
        assert!((t.mean() - 2.0).abs() < 0.1, "mean was {}", t.mean());
        assert!(
            (t.variance().sqrt() - 3.0).abs() < 0.15,
            "std was {}",
            t.variance().sqrt()
        );
    }

    #[test]
    fn normal_odd_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_normal(&mut rng, &[7], 0.0, 1.0);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn bernoulli_rate_and_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = Tensor::rand_bernoulli(&mut rng, &[10_000], 0.3);
        assert!(t.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
        assert!((t.mean() - 0.3).abs() < 0.02, "rate was {}", t.mean());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(Tensor::rand_bernoulli(&mut rng, &[50], 0.0).sum(), 0.0);
        assert_eq!(Tensor::rand_bernoulli(&mut rng, &[50], 1.0).sum(), 50.0);
    }
}
