//! Linear algebra, reductions and multi-tensor operations.

use crate::shape::unravel;
use crate::{Result, Tensor, TensorError};

impl Tensor {
    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication.
    ///
    /// Supports `[m, k] x [k, n]` and batched `[b, m, k] x [b, k, n]` (or a
    /// shared rank-2 right-hand side `[k, n]` against a batched left-hand
    /// side).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when the inner dimensions (or
    /// batch dimensions) disagree, and [`TensorError::RankMismatch`] for
    /// rank < 2 operands.
    ///
    /// # Examples
    ///
    /// ```
    /// use snappix_tensor::Tensor;
    /// # fn main() -> Result<(), snappix_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let i = Tensor::eye(2);
    /// assert_eq!(a.matmul(&i)?, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        match (self.rank(), other.rank()) {
            (2, 2) => self.matmul2(other),
            (3, 2) => {
                let b = self.shape()[0];
                let (m, k) = (self.shape()[1], self.shape()[2]);
                if other.shape()[0] != k {
                    return Err(TensorError::MatmulMismatch {
                        lhs: self.shape().to_vec(),
                        rhs: other.shape().to_vec(),
                    });
                }
                let n = other.shape()[1];
                let flat = self.reshape(&[b * m, k])?;
                let out = flat.matmul2(other)?;
                out.reshape(&[b, m, n])
            }
            (3, 3) => {
                let (b1, m, k1) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let (b2, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
                if b1 != b2 || k1 != k2 {
                    return Err(TensorError::MatmulMismatch {
                        lhs: self.shape().to_vec(),
                        rhs: other.shape().to_vec(),
                    });
                }
                let mut out = Tensor::zeros(&[b1, m, n]);
                let lhs = self.as_slice();
                let rhs = other.as_slice();
                let dst = out.as_mut_slice();
                let threads =
                    crate::parallel::workers_for(b1 * m * k1 * n, PAR_FLOPS_PER_WORKER).min(b1);
                if threads > 1 && b1 >= crate::parallel::current_threads() {
                    // Enough batches to feed every worker: split
                    // batch-wise, each batch running the blocked kernel
                    // serially. With fewer batches than workers the
                    // per-batch loop below is better — each product then
                    // row-slab-splits inside `matmul_kernel` instead of
                    // leaving workers idle.
                    crate::parallel::with_threads(threads, || {
                        crate::parallel::par_chunks_mut(dst, m * n, |b, block| {
                            matmul_block(
                                &lhs[b * m * k1..(b + 1) * m * k1],
                                &rhs[b * k1 * n..(b + 1) * k1 * n],
                                block,
                                m,
                                k1,
                                n,
                            );
                        });
                    });
                } else {
                    for b in 0..b1 {
                        matmul_kernel(
                            &lhs[b * m * k1..(b + 1) * m * k1],
                            &rhs[b * k1 * n..(b + 1) * k1 * n],
                            &mut dst[b * m * n..(b + 1) * m * n],
                            m,
                            k1,
                            n,
                        );
                    }
                }
                Ok(out)
            }
            (r1, r2) => Err(TensorError::RankMismatch {
                expected: 2,
                got: r1.min(r2),
            }),
        }
    }

    fn matmul2(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k1) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k1 != k2 {
            return Err(TensorError::MatmulMismatch {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        matmul_kernel(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k1,
            n,
        );
        Ok(out)
    }

    /// Inner product of two 1-D tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] unless both operands are
    /// 1-D of the same length.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.rank() != 1 || other.rank() != 1 || self.len() != other.len() {
            return Err(TensorError::IncompatibleShapes {
                context: format!("dot of {:?} and {:?}", self.shape(), other.shape()),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (`f32::NEG_INFINITY` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`f32::INFINITY` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.as_slice()
            .iter()
            .map(|&x| (x - m) * (x - m))
            .sum::<f32>()
            / self.len() as f32
    }

    /// Sums along `axis`; `keepdims` retains the axis with extent 1.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn sum_axis(&self, axis: usize, keepdims: bool) -> Result<Tensor> {
        let rank = self.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let outer: usize = self.shape()[..axis].iter().product();
        let mid = self.shape()[axis];
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let mut out_shape = self.shape().to_vec();
        if keepdims {
            out_shape[axis] = 1;
        } else {
            out_shape.remove(axis);
        }
        let mut data = vec![0.0f32; outer * inner];
        let src = self.as_slice();
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                for i in 0..inner {
                    data[o * inner + i] += src[base + i];
                }
            }
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Means along `axis`; `keepdims` retains the axis with extent 1.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn mean_axis(&self, axis: usize, keepdims: bool) -> Result<Tensor> {
        let n = self.shape().get(axis).copied().unwrap_or(0).max(1) as f32;
        Ok(self.sum_axis(axis, keepdims)?.scale(1.0 / n))
    }

    /// Index of the maximum along `axis` (ties resolve to the first).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`, or
    /// [`TensorError::InvalidArgument`] for a zero-extent axis.
    pub fn argmax_axis(&self, axis: usize) -> Result<Vec<usize>> {
        let rank = self.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mid = self.shape()[axis];
        if mid == 0 {
            return Err(TensorError::InvalidArgument {
                context: "argmax over empty axis".to_string(),
            });
        }
        let outer: usize = self.shape()[..axis].iter().product();
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let src = self.as_slice();
        let mut out = vec![0usize; outer * inner];
        for o in 0..outer {
            for i in 0..inner {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for m in 0..mid {
                    let v = src[(o * mid + m) * inner + i];
                    if v > best {
                        best = v;
                        best_idx = m;
                    }
                }
                out[o * inner + i] = best_idx;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Multi-tensor operations
    // ------------------------------------------------------------------

    /// Concatenates tensors along `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty input list,
    /// [`TensorError::AxisOutOfRange`] for a bad axis, or
    /// [`TensorError::IncompatibleShapes`] when the non-`axis` extents
    /// differ.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Tensor> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::InvalidArgument {
                context: "concat of zero tensors".to_string(),
            })?;
        let rank = first.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut axis_total = 0usize;
        for t in tensors {
            if t.rank() != rank {
                return Err(TensorError::IncompatibleShapes {
                    context: format!("concat ranks {} vs {}", rank, t.rank()),
                });
            }
            for d in 0..rank {
                if d != axis && t.shape()[d] != first.shape()[d] {
                    return Err(TensorError::IncompatibleShapes {
                        context: format!(
                            "concat shapes {:?} vs {:?} differ off-axis",
                            first.shape(),
                            t.shape()
                        ),
                    });
                }
            }
            axis_total += t.shape()[axis];
        }
        let mut out_shape = first.shape().to_vec();
        out_shape[axis] = axis_total;
        let outer: usize = first.shape()[..axis].iter().product();
        let inner: usize = first.shape()[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(out_shape.iter().product());
        for o in 0..outer {
            for t in tensors {
                let mid = t.shape()[axis];
                let base = o * mid * inner;
                data.extend_from_slice(&t.as_slice()[base..base + mid * inner]);
            }
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Stacks equal-shape tensors along a new leading `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty list or
    /// [`TensorError::IncompatibleShapes`] when shapes differ.
    pub fn stack(tensors: &[&Tensor], axis: usize) -> Result<Tensor> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::InvalidArgument {
                context: "stack of zero tensors".to_string(),
            })?;
        for t in tensors {
            if t.shape() != first.shape() {
                return Err(TensorError::IncompatibleShapes {
                    context: format!("stack shapes {:?} vs {:?}", first.shape(), t.shape()),
                });
            }
        }
        let unsqueezed: Vec<Tensor> = tensors
            .iter()
            .map(|t| t.unsqueeze(axis))
            .collect::<Result<_>>()?;
        let refs: Vec<&Tensor> = unsqueezed.iter().collect();
        Tensor::concat(&refs, axis)
    }

    /// Softmax along the last axis.
    ///
    /// Numerically stabilized by subtracting the row maximum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors.
    pub fn softmax_last(&self) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                got: 0,
            });
        }
        let n = *self.shape().last().expect("rank >= 1");
        let rows = self.len() / n.max(1);
        let mut out = self.clone();
        let data = out.as_mut_slice();
        for r in 0..rows {
            let row = &mut data[r * n..(r + 1) * n];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut total = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                total += *x;
            }
            for x in row.iter_mut() {
                *x /= total;
            }
        }
        Ok(out)
    }

    /// Extracts non-overlapping `ph x pw` patches from a `[h, w]` tensor,
    /// returning `[num_patches, ph * pw]` in row-major patch order.
    ///
    /// This is the ViT "patchify" primitive; the coded-exposure crate uses
    /// it with the CE tile size.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 input or
    /// [`TensorError::InvalidArgument`] when `h`/`w` are not multiples of the
    /// patch extents.
    pub fn extract_patches(&self, ph: usize, pw: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.rank(),
            });
        }
        let (h, w) = (self.shape()[0], self.shape()[1]);
        if ph == 0 || pw == 0 || h % ph != 0 || w % pw != 0 {
            return Err(TensorError::InvalidArgument {
                context: format!("patches {ph}x{pw} do not tile {h}x{w}"),
            });
        }
        let (gh, gw) = (h / ph, w / pw);
        let mut out = Tensor::zeros(&[gh * gw, ph * pw]);
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for gy in 0..gh {
            for gx in 0..gw {
                let p = gy * gw + gx;
                for y in 0..ph {
                    for x in 0..pw {
                        dst[p * ph * pw + y * pw + x] = src[(gy * ph + y) * w + (gx * pw + x)];
                    }
                }
            }
        }
        Ok(out)
    }

    /// Inverse of [`Tensor::extract_patches`]: reassembles
    /// `[num_patches, ph * pw]` into `[h, w]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when the patch grid does not
    /// match `h x w`.
    pub fn assemble_patches(&self, ph: usize, pw: usize, h: usize, w: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.rank(),
            });
        }
        if ph == 0 || pw == 0 || !h.is_multiple_of(ph) || !w.is_multiple_of(pw) {
            return Err(TensorError::InvalidArgument {
                context: format!("patches {ph}x{pw} do not tile {h}x{w}"),
            });
        }
        let (gh, gw) = (h / ph, w / pw);
        if self.shape()[0] != gh * gw || self.shape()[1] != ph * pw {
            return Err(TensorError::InvalidArgument {
                context: format!(
                    "patch tensor {:?} does not match {gh}x{gw} grid of {ph}x{pw}",
                    self.shape()
                ),
            });
        }
        let mut out = Tensor::zeros(&[h, w]);
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for gy in 0..gh {
            for gx in 0..gw {
                let p = gy * gw + gx;
                for y in 0..ph {
                    for x in 0..pw {
                        dst[(gy * ph + y) * w + (gx * pw + x)] = src[p * ph * pw + y * pw + x];
                    }
                }
            }
        }
        Ok(out)
    }

    /// Gathers rows of a rank-2 tensor by index, producing
    /// `[indices.len(), cols]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 input or
    /// [`TensorError::IndexOutOfRange`] for a bad row index.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.rank(),
            });
        }
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut data = Vec::with_capacity(indices.len() * cols);
        for &i in indices {
            if i >= rows {
                return Err(TensorError::IndexOutOfRange {
                    index: i,
                    len: rows,
                });
            }
            data.extend_from_slice(&self.as_slice()[i * cols..(i + 1) * cols]);
        }
        Tensor::from_vec(data, &[indices.len(), cols])
    }
}

/// Rows per register micro-tile of the blocked matmul kernel.
const MR: usize = 4;
/// Columns per register micro-tile of the blocked matmul kernel.
const NR: usize = 8;
/// Column-panel width: a row slab works through the right-hand side in
/// `k x JC` stripes so the stripe stays cache-resident across the slab.
const JC: usize = 128;
/// Multiply-adds each scoped worker must receive before it is worth
/// spawning: a slab of this size runs ~100 µs serially, an order of
/// magnitude above thread spawn/join cost. The effective worker count is
/// `min(current_threads, work / PAR_FLOPS_PER_WORKER)`, so small
/// products stay on the calling thread and medium ones use fewer
/// workers than the machine has — oversubscribed or not, the spawn
/// overhead stays a small fraction of the work.
const PAR_FLOPS_PER_WORKER: usize = 1 << 18;

/// Cache-blocked, data-parallel `m x k * k x n` kernel accumulating into
/// `dst`, which must be zero-initialized.
///
/// Large products are split into row slabs across
/// [`parallel::par_chunks_mut`] workers; each slab runs the blocked serial
/// kernel [`matmul_block`]. Every output element accumulates its `k`
/// products in ascending-`p` order exactly like the naive reference
/// [`matmul_kernel_serial`], so results are bit-for-bit identical to the
/// serial path at every thread count (the parity tests assert this).
///
/// Unlike the historical kernel, `lhs` zeros are **not** skipped: skipping
/// turned `0 x inf` and `0 x NaN` into `0`, silently masking upstream
/// numerical blowups instead of propagating them per IEEE 754.
fn matmul_kernel(lhs: &[f32], rhs: &[f32], dst: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = crate::parallel::workers_for(m * k * n, PAR_FLOPS_PER_WORKER).min(m / (2 * MR));
    if threads <= 1 {
        matmul_block(lhs, rhs, dst, m, k, n);
        return;
    }
    // ~2 slabs per worker keeps the queue balanced without shredding the
    // cache blocking; slabs are whole multiples of the micro-tile height.
    let slab_rows = m.div_ceil(threads * 2).next_multiple_of(MR);
    crate::parallel::with_threads(threads, || {
        crate::parallel::par_chunks_mut(dst, slab_rows * n, |slab, dslab| {
            let row0 = slab * slab_rows;
            let rows = dslab.len() / n;
            matmul_block(&lhs[row0 * k..(row0 + rows) * k], rhs, dslab, rows, k, n);
        });
    });
}

/// Serial reference kernel (i-k-j loop order) accumulating into `dst`,
/// which must be zero-initialized. This is the specification the blocked
/// kernel is tested against; it is deliberately kept naive.
#[cfg_attr(not(test), allow(dead_code))]
fn matmul_kernel_serial(lhs: &[f32], rhs: &[f32], dst: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let a = lhs[i * k + p];
            let rrow = &rhs[p * n..(p + 1) * n];
            let drow = &mut dst[i * n..(i + 1) * n];
            for j in 0..n {
                drow[j] += a * rrow[j];
            }
        }
    }
}

/// One row slab of the blocked kernel: `MR x NR` register micro-tiles with
/// a `k`-inner loop, walking the right-hand side in `JC`-column panels.
///
/// Per output element the `k` products accumulate in ascending order from
/// a `+0.0` accumulator, matching [`matmul_kernel_serial`] bit-for-bit
/// (adding the finished accumulator to the zero-initialized `dst` cannot
/// change its bits: the accumulator is never `-0.0` because it starts at
/// `+0.0`).
fn matmul_block(lhs: &[f32], rhs: &[f32], dst: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + JC).min(n);
        let mut i = 0;
        while i + MR <= m {
            let lrows: [&[f32]; MR] = std::array::from_fn(|r| &lhs[(i + r) * k..(i + r + 1) * k]);
            let mut j = j0;
            while j + NR <= j1 {
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let brow = &rhs[p * n + j..p * n + j + NR];
                    for r in 0..MR {
                        let a = lrows[r][p];
                        let accr = &mut acc[r];
                        for c in 0..NR {
                            accr[c] += a * brow[c];
                        }
                    }
                }
                for r in 0..MR {
                    let drow = &mut dst[(i + r) * n + j..(i + r) * n + j + NR];
                    for c in 0..NR {
                        drow[c] += acc[r][c];
                    }
                }
                j += NR;
            }
            // Column remainder of the panel (fewer than NR columns).
            for r in 0..MR {
                let row = lrows[r];
                for jj in j..j1 {
                    let mut acc = 0.0f32;
                    for (p, &a) in row.iter().enumerate() {
                        acc += a * rhs[p * n + jj];
                    }
                    dst[(i + r) * n + jj] += acc;
                }
            }
            i += MR;
        }
        // Row remainder (fewer than MR rows): i-k-j sweep over the panel.
        for ir in i..m {
            let row = &lhs[ir * k..(ir + 1) * k];
            for (p, &a) in row.iter().enumerate() {
                let rrow = &rhs[p * n + j0..p * n + j1];
                let drow = &mut dst[ir * n + j0..ir * n + j1];
                for (d, &b) in drow.iter_mut().zip(rrow) {
                    *d += a * b;
                }
            }
        }
        j0 = j1;
    }
}

/// Returns the coordinates of the maximum element of a tensor.
///
/// # Examples
///
/// ```
/// use snappix_tensor::Tensor;
/// # fn main() -> Result<(), snappix_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(snappix_tensor::argmax_coords(&t), vec![0, 1]);
/// # Ok(())
/// # }
/// ```
pub fn argmax_coords(t: &Tensor) -> Vec<usize> {
    let mut best = f32::NEG_INFINITY;
    let mut idx = 0usize;
    for (i, &v) in t.as_slice().iter().enumerate() {
        if v > best {
            best = v;
            idx = i;
        }
    }
    unravel(idx, t.shape())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2d_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::arange(9).reshape(&[3, 3]).unwrap();
        assert_eq!(a.matmul(&Tensor::eye(3)).unwrap(), a);
    }

    #[test]
    fn matmul_batched_3d() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]).unwrap();
        let b = Tensor::arange(18).reshape(&[2, 3, 3]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2, 3]);
        // Manually compute batch 0, row 0: [0,1,2] . cols of [[0,1,2],[3,4,5],[6,7,8]]
        assert_eq!(c.get(&[0, 0, 0]).unwrap(), 15.0);
        assert_eq!(c.get(&[0, 0, 1]).unwrap(), 18.0);
    }

    #[test]
    fn matmul_3d_with_shared_rhs() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]).unwrap();
        let w = Tensor::eye(3);
        let c = a.matmul(&w).unwrap();
        assert_eq!(c, a.reshape(&[2, 2, 3]).unwrap());
    }

    #[test]
    fn matmul_rejects_mismatches() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&Tensor::zeros(&[4, 2])).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
        let b3 = Tensor::zeros(&[2, 2, 3]);
        assert!(b3.matmul(&Tensor::zeros(&[3, 3, 3])).is_err());
    }

    /// Regression test for the historical zero-skip bug: `matmul_kernel`
    /// used to skip the inner loop when a left-hand element was `0.0`,
    /// so `0 x inf` and `0 x NaN` produced `0` instead of `NaN`.
    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_rows() {
        // Row of zeros against a NaN column: every affected output must
        // be NaN, not silently 0.
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, 1.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(
            c.get(&[0, 0]).unwrap().is_nan(),
            "0 * NaN must propagate NaN, got {}",
            c.get(&[0, 0]).unwrap()
        );
        assert!(c.get(&[1, 0]).unwrap().is_nan());

        // Zero against +inf is NaN per IEEE 754.
        let inf = Tensor::from_vec(vec![f32::INFINITY, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let d = a.matmul(&inf).unwrap();
        assert!(d.get(&[0, 0]).unwrap().is_nan(), "0 * inf must be NaN");

        // The batched path shares the kernel.
        let ab = Tensor::from_vec(vec![0.0; 8], &[2, 2, 2]).unwrap();
        let bb = Tensor::from_vec(vec![f32::NAN; 8], &[2, 2, 2]).unwrap();
        let cb = ab.matmul(&bb).unwrap();
        assert!(cb.as_slice().iter().all(|v| v.is_nan()));
    }

    /// The blocked/parallel kernel must agree bit-for-bit with the naive
    /// serial reference across odd shapes (micro-tile remainders in both
    /// extents, panel boundaries) and thread counts 1, 2 and > rows.
    #[test]
    fn matmul_blocked_matches_serial_reference_bit_for_bit() {
        use crate::parallel::with_threads;
        let shapes: &[(usize, usize, usize)] = &[
            (1, 1, 1),
            (1, 7, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (13, 1, 13),
            (17, 23, 131), // crosses the JC=128 panel boundary
            (33, 16, 9),
            (67, 33, 65),  // medium: blocked serial, below the split
            (513, 65, 33), // > PAR_FLOPS_PER_WORKER x 4: slab split engages
        ];
        for &(m, k, n) in shapes {
            // Deterministic pseudo-random fill without pulling in rand.
            let fill = |len: usize, salt: u32| -> Vec<f32> {
                (0..len)
                    .map(|i| {
                        let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                        (h % 2000) as f32 / 1000.0 - 1.0
                    })
                    .collect()
            };
            let lhs = fill(m * k, 1);
            let rhs = fill(k * n, 2);
            let mut reference = vec![0.0f32; m * n];
            matmul_kernel_serial(&lhs, &rhs, &mut reference, m, k, n);
            for threads in [1usize, 2, m + 3] {
                let mut got = vec![0.0f32; m * n];
                with_threads(threads, || {
                    matmul_kernel(&lhs, &rhs, &mut got, m, k, n);
                });
                assert_eq!(
                    got, reference,
                    "{m}x{k}x{n} at {threads} threads diverged from serial"
                );
            }
        }
    }

    /// The batch-split (3,3) parallel path must match the serial
    /// per-batch loop bit-for-bit.
    #[test]
    fn matmul_batched_parallel_matches_serial_bit_for_bit() {
        use crate::parallel::with_threads;
        let (b, m, k, n) = (6usize, 32usize, 32usize, 32usize); // 2 workers' worth
        let fill = |len: usize, salt: u32| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                    (h % 2000) as f32 / 1000.0 - 1.0
                })
                .collect()
        };
        let lhs = Tensor::from_vec(fill(b * m * k, 3), &[b, m, k]).unwrap();
        let rhs = Tensor::from_vec(fill(b * k * n, 4), &[b, k, n]).unwrap();
        let reference = with_threads(1, || lhs.matmul(&rhs).unwrap());
        for threads in [2usize, 4, b + 7] {
            let got = with_threads(threads, || lhs.matmul(&rhs).unwrap());
            assert_eq!(got.as_slice(), reference.as_slice(), "{threads} threads");
        }
    }

    #[test]
    fn dot_product() {
        let a = Tensor::arange(3);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 17.0);
        assert!(a.dot(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn global_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert!((t.variance() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn axis_reductions() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        let s0 = t.sum_axis(0, false).unwrap();
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.as_slice(), &[3.0, 5.0, 7.0]);
        let s1 = t.sum_axis(1, true).unwrap();
        assert_eq!(s1.shape(), &[2, 1]);
        assert_eq!(s1.as_slice(), &[3.0, 12.0]);
        let m1 = t.mean_axis(1, false).unwrap();
        assert_eq!(m1.as_slice(), &[1.0, 4.0]);
        assert!(t.sum_axis(2, false).is_err());
    }

    #[test]
    fn argmax_axis_and_coords() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 2.0, 8.0, 0.0, 3.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_axis(1).unwrap(), vec![1, 0]);
        assert_eq!(t.argmax_axis(0).unwrap(), vec![1, 0, 1]);
        assert_eq!(argmax_coords(&t), vec![1, 0]);
    }

    #[test]
    fn concat_along_each_axis() {
        let a = Tensor::arange(4).reshape(&[2, 2]).unwrap();
        let b = Tensor::full(&[2, 2], 9.0);
        let c0 = Tensor::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.shape(), &[4, 2]);
        assert_eq!(c0.get(&[2, 0]).unwrap(), 9.0);
        let c1 = Tensor::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.shape(), &[2, 4]);
        assert_eq!(c1.get(&[0, 2]).unwrap(), 9.0);
        assert_eq!(c1.get(&[1, 1]).unwrap(), 3.0);
    }

    #[test]
    fn concat_error_cases() {
        let a = Tensor::zeros(&[2, 2]);
        assert!(Tensor::concat(&[], 0).is_err());
        assert!(Tensor::concat(&[&a], 2).is_err());
        assert!(Tensor::concat(&[&a, &Tensor::zeros(&[2, 3])], 0).is_err());
        assert!(Tensor::concat(&[&a, &Tensor::zeros(&[2])], 0).is_err());
    }

    #[test]
    fn stack_adds_axis() {
        let a = Tensor::arange(3);
        let b = Tensor::full(&[3], 1.0);
        let s = Tensor::stack(&[&a, &b], 0).unwrap();
        assert_eq!(s.shape(), &[2, 3]);
        let s1 = Tensor::stack(&[&a, &b], 1).unwrap();
        assert_eq!(s1.shape(), &[3, 2]);
        assert!(Tensor::stack(&[&a, &Tensor::zeros(&[4])], 0).is_err());
        assert!(Tensor::stack(&[], 0).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]).unwrap();
        let s = t.softmax_last().unwrap();
        for r in 0..2 {
            let row_sum: f32 = (0..3).map(|c| s.get(&[r, c]).unwrap()).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Large logits must not overflow.
        assert!(s.get(&[1, 0]).unwrap().is_finite());
        assert!(Tensor::scalar(1.0).softmax_last().is_err());
    }

    #[test]
    fn patch_round_trip() {
        let t = Tensor::arange(16).reshape(&[4, 4]).unwrap();
        let p = t.extract_patches(2, 2).unwrap();
        assert_eq!(p.shape(), &[4, 4]);
        // Patch 0 is the top-left 2x2 block.
        assert_eq!(p.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(p.get(&[0, 3]).unwrap(), 5.0);
        let back = p.assemble_patches(2, 2, 4, 4).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn patch_error_cases() {
        let t = Tensor::zeros(&[4, 4]);
        assert!(t.extract_patches(3, 2).is_err());
        assert!(t.extract_patches(0, 2).is_err());
        assert!(Tensor::zeros(&[4]).extract_patches(2, 2).is_err());
        let p = Tensor::zeros(&[4, 4]);
        assert!(p.assemble_patches(2, 2, 4, 6).is_err());
        assert!(p.assemble_patches(2, 2, 8, 8).is_err());
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let t = Tensor::arange(6).reshape(&[3, 2]).unwrap();
        let g = t.gather_rows(&[2, 0, 2]).unwrap();
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        assert!(t.gather_rows(&[3]).is_err());
        assert!(Tensor::zeros(&[3]).gather_rows(&[0]).is_err());
    }
}
