//! The deterministic event trace of a fleet run, recorded through the
//! workspace's shared span recorder (`snappix-trace`).
//!
//! A fleet event is a zero-duration span on the *background* trace
//! (`trace_id` 0): its lane is the node id (one Perfetto row per
//! virtual node), its span id is the node's own event sequence, and its
//! timestamps are virtual microseconds — so a fleet trace exported with
//! [`TraceSnapshot::to_chrome_json`](snappix_trace::TraceSnapshot::to_chrome_json)
//! renders the whole fleet's timeline, and the snapshot's
//! `(start_us, lane, span_id)` ordering reproduces the report's merged
//! `(virtual time, node)` order exactly, whatever the driver count.

use crate::DutyRung;
use snappix_trace::{ArgValue, SpanRecord};
use std::fmt;

/// What happened to one window (or rung transition) on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The window was inferred; the raw predicted label.
    Inferred {
        /// The raw (unsmoothed) predicted label.
        label: usize,
    },
    /// The window was captured but shed before readout (the
    /// [`Shed`](DutyRung::Shed) rung, an unaffordable inference, or the
    /// server declining admission under
    /// [`SkipWindow`](snappix_stream::OverloadPolicy::SkipWindow)).
    Shed,
    /// The node slept through the window (the [`Sleep`](DutyRung::Sleep)
    /// rung, a rate-skip at a reduced rung, or nothing left to spend).
    Slept,
    /// The window's deadline expired in the server queue.
    Expired,
    /// The node stepped the duty-cycle ladder.
    Rung {
        /// The rung before the step.
        from: DutyRung,
        /// The rung after the step.
        to: DutyRung,
    },
}

/// One entry in the fleet's merged event trace.
///
/// Traces are recorded per node in virtual-time order and merged sorted
/// by `(at_us, node)` with per-node order preserved — a pure function of
/// the fleet's seeds and configs, so a replayed run produces an
/// identical trace whatever the driver-pool size, worker count, or
/// `SNAPPIX_THREADS` setting (given replayable node configs; see
/// [`NodeConfig::overload`](crate::NodeConfig::overload)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event in microseconds from run start.
    pub at_us: u64,
    /// The node the event belongs to.
    pub node: usize,
    /// The window index the event concerns (for
    /// [`TraceKind::Rung`], the window whose outcome the new rung first
    /// governs).
    pub window: usize,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Encode the event as a raw span record for
    /// [`Tracer::record_raw`](snappix_trace::Tracer::record_raw): a
    /// zero-duration background span at the event's virtual time, on
    /// the node's lane, with `seq` as the node-local span id (callers
    /// keep it strictly increasing per node so `(lane, span_id)` stays
    /// unique and the snapshot order is deterministic).
    pub(crate) fn to_record(self, seq: u64) -> SpanRecord {
        let (name, mut args): (&'static str, Vec<(&'static str, ArgValue)>) = match self.kind {
            TraceKind::Inferred { label } => {
                ("inferred", vec![("label", ArgValue::U64(label as u64))])
            }
            TraceKind::Shed => ("shed", Vec::new()),
            TraceKind::Slept => ("slept", Vec::new()),
            TraceKind::Expired => ("expired", Vec::new()),
            TraceKind::Rung { from, to } => (
                "rung",
                vec![
                    ("from", ArgValue::U64(from.depth() as u64)),
                    ("to", ArgValue::U64(to.depth() as u64)),
                ],
            ),
        };
        args.insert(0, ("window", ArgValue::U64(self.window as u64)));
        SpanRecord {
            trace_id: 0,
            span_id: seq,
            parent: 0,
            name,
            start_us: self.at_us,
            end_us: self.at_us,
            lane: u32::try_from(self.node).unwrap_or(u32::MAX),
            args,
        }
    }

    /// Decode a span record written by [`to_record`](Self::to_record).
    /// Returns `None` for records that are not fleet events (a shared
    /// tracer also carries the serving layer's spans).
    pub(crate) fn from_record(record: &SpanRecord) -> Option<TraceEvent> {
        let arg = |key: &str| record.arg(key).and_then(ArgValue::as_u64);
        let kind = match record.name {
            "inferred" => TraceKind::Inferred {
                label: arg("label")? as usize,
            },
            "shed" => TraceKind::Shed,
            "slept" => TraceKind::Slept,
            "expired" => TraceKind::Expired,
            "rung" => TraceKind::Rung {
                from: DutyRung::from_depth(arg("from")? as usize),
                to: DutyRung::from_depth(arg("to")? as usize),
            },
            _ => return None,
        };
        Some(TraceEvent {
            at_us: record.start_us,
            node: record.lane as usize,
            window: arg("window")? as usize,
            kind,
        })
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>9} us] node {:>3} window {:>4}: ",
            self.at_us, self.node, self.window
        )?;
        match self.kind {
            TraceKind::Inferred { label } => write!(f, "inferred -> label {label}"),
            TraceKind::Shed => write!(f, "shed"),
            TraceKind::Slept => write!(f, "slept"),
            TraceKind::Expired => write!(f, "expired"),
            TraceKind::Rung { from, to } => write!(f, "rung {from} -> {to}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_outcome() {
        let base = TraceEvent {
            at_us: 33_333,
            node: 2,
            window: 5,
            kind: TraceKind::Inferred { label: 7 },
        };
        assert!(base.to_string().contains("label 7"));
        let rung = TraceEvent {
            kind: TraceKind::Rung {
                from: DutyRung::Full,
                to: DutyRung::ReducedRate,
            },
            ..base
        };
        assert!(rung.to_string().contains("full -> reduced-rate"));
        for (kind, needle) in [
            (TraceKind::Shed, "shed"),
            (TraceKind::Slept, "slept"),
            (TraceKind::Expired, "expired"),
        ] {
            assert!(TraceEvent { kind, ..base }.to_string().contains(needle));
        }
    }

    #[test]
    fn events_round_trip_through_span_records() {
        let base = TraceEvent {
            at_us: 1_250,
            node: 17,
            window: 9,
            kind: TraceKind::Shed,
        };
        for kind in [
            TraceKind::Inferred { label: 3 },
            TraceKind::Shed,
            TraceKind::Slept,
            TraceKind::Expired,
            TraceKind::Rung {
                from: DutyRung::ReducedRate,
                to: DutyRung::LiteSmoothing,
            },
        ] {
            let event = TraceEvent { kind, ..base };
            let record = event.to_record(42);
            assert_eq!(record.trace_id, 0, "fleet events are background spans");
            assert_eq!((record.lane, record.span_id), (17, 42));
            assert_eq!(record.duration_us(), 0, "events are instants");
            assert_eq!(TraceEvent::from_record(&record), Some(event));
        }
        // Foreign records (a serving-layer span, say) decode to None.
        let mut foreign = base.to_record(1);
        foreign.name = "batch";
        assert_eq!(TraceEvent::from_record(&foreign), None);
    }
}
