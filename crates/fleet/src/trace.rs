//! The deterministic event trace of a fleet run.

use crate::DutyRung;
use std::fmt;

/// What happened to one window (or rung transition) on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The window was inferred; the raw predicted label.
    Inferred {
        /// The raw (unsmoothed) predicted label.
        label: usize,
    },
    /// The window was captured but shed before readout (the
    /// [`Shed`](DutyRung::Shed) rung, an unaffordable inference, or the
    /// server declining admission under
    /// [`SkipWindow`](snappix_stream::OverloadPolicy::SkipWindow)).
    Shed,
    /// The node slept through the window (the [`Sleep`](DutyRung::Sleep)
    /// rung, a rate-skip at a reduced rung, or nothing left to spend).
    Slept,
    /// The window's deadline expired in the server queue.
    Expired,
    /// The node stepped the duty-cycle ladder.
    Rung {
        /// The rung before the step.
        from: DutyRung,
        /// The rung after the step.
        to: DutyRung,
    },
}

/// One entry in the fleet's merged event trace.
///
/// Traces are recorded per node in virtual-time order and merged sorted
/// by `(at_us, node)` with per-node order preserved — a pure function of
/// the fleet's seeds and configs, so a replayed run produces an
/// identical trace whatever the driver-pool size, worker count, or
/// `SNAPPIX_THREADS` setting (given replayable node configs; see
/// [`NodeConfig::overload`](crate::NodeConfig::overload)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event in microseconds from run start.
    pub at_us: u64,
    /// The node the event belongs to.
    pub node: usize,
    /// The window index the event concerns (for
    /// [`TraceKind::Rung`], the window whose outcome the new rung first
    /// governs).
    pub window: usize,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>9} us] node {:>3} window {:>4}: ",
            self.at_us, self.node, self.window
        )?;
        match self.kind {
            TraceKind::Inferred { label } => write!(f, "inferred -> label {label}"),
            TraceKind::Shed => write!(f, "shed"),
            TraceKind::Slept => write!(f, "slept"),
            TraceKind::Expired => write!(f, "expired"),
            TraceKind::Rung { from, to } => write!(f, "rung {from} -> {to}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_outcome() {
        let base = TraceEvent {
            at_us: 33_333,
            node: 2,
            window: 5,
            kind: TraceKind::Inferred { label: 7 },
        };
        assert!(base.to_string().contains("label 7"));
        let rung = TraceEvent {
            kind: TraceKind::Rung {
                from: DutyRung::Full,
                to: DutyRung::ReducedRate,
            },
            ..base
        };
        assert!(rung.to_string().contains("full -> reduced-rate"));
        for (kind, needle) in [
            (TraceKind::Shed, "shed"),
            (TraceKind::Slept, "slept"),
            (TraceKind::Expired, "expired"),
        ] {
            assert!(TraceEvent { kind, ..base }.to_string().contains(needle));
        }
    }
}
