//! Per-node and aggregate statistics of a fleet run.
//!
//! Everything in here is a pure function of the simulation — virtual
//! times, counters, and energy ledgers — and intentionally excludes
//! wall-clock measurements, so two replays of the same seeded fleet
//! compare equal with `==` whatever hardware or thread count ran them.
//! Wall time lives on [`FleetReport`](crate::FleetReport) next to the
//! stats, not inside them.

use crate::DutyRung;
use std::fmt;

/// One node's complete accounting at the end of a run.
///
/// The window ledger is conserved: every window the assembler emitted is
/// counted exactly once across `inferred + shed + expired + slept`
/// (checked by [`check_conserved`](Self::check_conserved)). The energy
/// ledger mirrors [`EnergyBudget`](snappix_energy::EnergyBudget):
/// `level == initial + harvested - spent` for finite capacities.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// Frames pulled from the node's source.
    pub frames: u64,
    /// Windows the assembler emitted.
    pub windows: u64,
    /// Windows inferred end to end.
    pub inferred: u64,
    /// Windows captured but shed before readout.
    pub shed: u64,
    /// Windows whose deadline expired in the server queue.
    pub expired: u64,
    /// Windows slept through (the Sleep rung, rate-skips, or an empty
    /// budget).
    pub slept: u64,
    /// Confirmed label-change events.
    pub events: u64,
    /// Duty-cycle ladder transitions.
    pub rung_changes: u64,
    /// The rung the node ended the run on.
    pub final_rung: DutyRung,
    /// Total energy spent, pJ.
    pub spent_pj: f64,
    /// Total harvest absorbed, pJ.
    pub harvested_pj: f64,
    /// Harvest lost to a full battery, pJ.
    pub wasted_pj: f64,
    /// Budget level at the end of the run, pJ.
    pub level_pj: f64,
    /// Budget level at the start of the run, pJ.
    pub initial_pj: f64,
    /// Budget capacity, pJ (infinite for unbounded).
    pub capacity_pj: f64,
    /// Virtual time the node first hit [`DutyRung::Sleep`], if ever —
    /// the node's survival time for the fleet's survival curve.
    pub first_sleep_us: Option<u64>,
    /// Virtual time the node finished (source exhausted or run
    /// stopped).
    pub end_us: u64,
}

impl NodeStats {
    /// Average energy per inferred window, pJ. Infinite when energy was
    /// spent but nothing was inferred; 0 when nothing was spent.
    pub fn energy_per_inference_pj(&self) -> f64 {
        if self.inferred > 0 {
            self.spent_pj / self.inferred as f64
        } else if self.spent_pj > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Audits both ledgers: every window accounted once, and (for
    /// finite capacities) energy conserved to float tolerance.
    pub fn check_conserved(&self) -> bool {
        let windows_ok = self.inferred + self.shed + self.expired + self.slept == self.windows;
        if !self.capacity_pj.is_finite() {
            return windows_ok;
        }
        let expected = self.initial_pj + self.harvested_pj - self.spent_pj;
        let scale = self
            .initial_pj
            .abs()
            .max(self.harvested_pj)
            .max(self.spent_pj)
            .max(1.0);
        windows_ok
            && (self.level_pj - expected).abs() <= 1e-9 * scale
            && self.spent_pj <= self.initial_pj + self.harvested_pj + 1e-9 * scale
    }
}

impl fmt::Display for NodeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} frames, {} windows ({} inferred, {} shed, {} expired, {} slept), \
             {} events, {} rung changes (ends {}), {:.0} pJ spent",
            self.frames,
            self.windows,
            self.inferred,
            self.shed,
            self.expired,
            self.slept,
            self.events,
            self.rung_changes,
            self.final_rung,
            self.spent_pj,
        )?;
        if self.capacity_pj.is_finite() {
            write!(
                f,
                ", budget {:.0}/{:.0} pJ",
                self.level_pj, self.capacity_pj
            )?;
        }
        if let Some(t) = self.first_sleep_us {
            write!(f, ", first slept at {t} us")?;
        }
        Ok(())
    }
}

/// Fleet-wide accounting: counters summed over nodes, energy ledgers
/// summed in node order (so float sums are reproducible), and the run's
/// virtual duration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Number of nodes.
    pub nodes: u64,
    /// Sum of [`NodeStats::frames`].
    pub frames: u64,
    /// Sum of [`NodeStats::windows`].
    pub windows: u64,
    /// Sum of [`NodeStats::inferred`].
    pub inferred: u64,
    /// Sum of [`NodeStats::shed`].
    pub shed: u64,
    /// Sum of [`NodeStats::expired`].
    pub expired: u64,
    /// Sum of [`NodeStats::slept`].
    pub slept: u64,
    /// Sum of [`NodeStats::events`].
    pub events: u64,
    /// Sum of [`NodeStats::rung_changes`].
    pub rung_changes: u64,
    /// Sum of [`NodeStats::spent_pj`].
    pub spent_pj: f64,
    /// Sum of [`NodeStats::harvested_pj`].
    pub harvested_pj: f64,
    /// Sum of [`NodeStats::wasted_pj`].
    pub wasted_pj: f64,
    /// The run's virtual duration: the latest [`NodeStats::end_us`].
    pub virtual_us: u64,
}

impl FleetStats {
    /// Sums per-node stats (in iteration order, which the simulator
    /// keeps equal to node order).
    pub fn aggregate<'a>(nodes: impl IntoIterator<Item = &'a NodeStats>) -> Self {
        let mut agg = FleetStats {
            nodes: 0,
            frames: 0,
            windows: 0,
            inferred: 0,
            shed: 0,
            expired: 0,
            slept: 0,
            events: 0,
            rung_changes: 0,
            spent_pj: 0.0,
            harvested_pj: 0.0,
            wasted_pj: 0.0,
            virtual_us: 0,
        };
        for n in nodes {
            agg.nodes += 1;
            agg.frames += n.frames;
            agg.windows += n.windows;
            agg.inferred += n.inferred;
            agg.shed += n.shed;
            agg.expired += n.expired;
            agg.slept += n.slept;
            agg.events += n.events;
            agg.rung_changes += n.rung_changes;
            agg.spent_pj += n.spent_pj;
            agg.harvested_pj += n.harvested_pj;
            agg.wasted_pj += n.wasted_pj;
            agg.virtual_us = agg.virtual_us.max(n.end_us);
        }
        agg
    }

    /// Fleet-wide average energy per inferred window, pJ (same edge
    /// cases as [`NodeStats::energy_per_inference_pj`]).
    pub fn energy_per_inference_pj(&self) -> f64 {
        if self.inferred > 0 {
            self.spent_pj / self.inferred as f64
        } else if self.spent_pj > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Inferred windows per *virtual* second — the sensor-side service
    /// rate the fleet sustained. (Wall-clock throughput belongs to the
    /// bench harness, not the deterministic stats.)
    pub fn inferred_per_virtual_sec(&self) -> f64 {
        if self.virtual_us == 0 {
            return 0.0;
        }
        self.inferred as f64 / (self.virtual_us as f64 / 1e6)
    }

    /// The fleet-wide window ledger: every window accounted once.
    pub fn check_conserved(&self) -> bool {
        self.inferred + self.shed + self.expired + self.slept == self.windows
    }
}

impl fmt::Display for FleetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} frames, {} windows ({} inferred, {} shed, {} expired, {} slept), \
             {} events, {} rung changes over {:.2} virtual s; {:.0} pJ spent \
             ({:.0} pJ/inference, {:.1} inferred windows/virtual s)",
            self.nodes,
            self.frames,
            self.windows,
            self.inferred,
            self.shed,
            self.expired,
            self.slept,
            self.events,
            self.rung_changes,
            self.virtual_us as f64 / 1e6,
            self.spent_pj,
            self.energy_per_inference_pj(),
            self.inferred_per_virtual_sec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(windows: u64, inferred: u64, slept: u64, spent: f64) -> NodeStats {
        NodeStats {
            frames: windows * 4,
            windows,
            inferred,
            shed: 0,
            expired: 0,
            slept,
            events: 1,
            rung_changes: 2,
            final_rung: DutyRung::Full,
            spent_pj: spent,
            harvested_pj: 0.0,
            wasted_pj: 0.0,
            level_pj: 1000.0 - spent,
            initial_pj: 1000.0,
            capacity_pj: 1000.0,
            first_sleep_us: None,
            end_us: 2_000_000,
        }
    }

    #[test]
    fn aggregate_sums_and_maxes() {
        let nodes = [node(10, 8, 2, 100.0), node(6, 6, 0, 60.0)];
        let agg = FleetStats::aggregate(nodes.iter());
        assert_eq!(agg.nodes, 2);
        assert_eq!(agg.windows, 16);
        assert_eq!(agg.inferred, 14);
        assert_eq!(agg.slept, 2);
        assert_eq!(agg.spent_pj, 160.0);
        assert_eq!(agg.virtual_us, 2_000_000);
        assert!(agg.check_conserved());
        assert!((agg.energy_per_inference_pj() - 160.0 / 14.0).abs() < 1e-12);
        assert!((agg.inferred_per_virtual_sec() - 7.0).abs() < 1e-12);
        assert!(agg.to_string().contains("2 nodes"));
    }

    #[test]
    fn conservation_checks_catch_imbalance() {
        let good = node(10, 8, 2, 100.0);
        assert!(good.check_conserved());
        let mut bad_windows = good.clone();
        bad_windows.slept = 1;
        assert!(!bad_windows.check_conserved());
        let mut bad_energy = good.clone();
        bad_energy.level_pj = 999.0;
        assert!(!bad_energy.check_conserved());
        // Unbounded budgets only audit the window ledger.
        let mut unbounded = good;
        unbounded.capacity_pj = f64::INFINITY;
        unbounded.level_pj = f64::INFINITY;
        assert!(unbounded.check_conserved());
    }

    #[test]
    fn energy_per_inference_edge_cases() {
        let mut n = node(4, 0, 4, 0.0);
        assert_eq!(n.energy_per_inference_pj(), 0.0);
        n.spent_pj = 5.0;
        assert_eq!(n.energy_per_inference_pj(), f64::INFINITY);
        let empty = FleetStats::aggregate(std::iter::empty());
        assert_eq!(empty.inferred_per_virtual_sec(), 0.0);
        assert!(empty.check_conserved());
    }

    #[test]
    fn node_display_mentions_budget_and_sleep() {
        let mut n = node(10, 8, 2, 100.0);
        n.first_sleep_us = Some(1_500_000);
        let s = n.to_string();
        assert!(s.contains("budget 900/1000 pJ"), "{s}");
        assert!(s.contains("first slept at 1500000 us"), "{s}");
    }
}
