//! One simulated sensor node: the per-event state machine the driver
//! pool executes.
//!
//! A node is the event-driven analogue of
//! [`StreamSession`](snappix_stream::StreamSession): the same window
//! assembler, smoother, and event detector, but advanced one virtual-time
//! event at a time instead of owning a thread — which is what lets one
//! small driver pool multiplex thousands of nodes. On top of the
//! streaming machinery it runs the energy loop: every window is priced
//! by the node's [`EnergyModel`](snappix_energy::EnergyModel), paid from
//! its [`EnergyBudget`](snappix_energy::EnergyBudget), and the
//! [`DutyCycle`](crate::DutyCycle) ladder decides — deterministically,
//! from the budget fraction alone — whether the window is inferred,
//! shed, or slept through.

use crate::{DutyRung, FleetError, NodeConfig, NodeStats, TraceEvent, TraceKind};
use snappix_energy::Scenario;
use snappix_serve::{ServeError, Server, Ticket};
use snappix_stream::{
    Event, EventDetector, FrameSource, OverloadPolicy, Smoother, Smoothing, WindowAssembler,
};
use snappix_trace::Tracer;

/// The two event kinds a node alternates between on the virtual-time
/// heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum NodeEvent {
    /// Pull one frame, maybe emit a window, decide its fate, maybe
    /// submit it.
    Advance,
    /// Wait out the in-flight ticket and fold the prediction in.
    ///
    /// Scheduled at the *same* virtual time as the submitting
    /// [`Advance`](Self::Advance) but strictly after it in heap order —
    /// so with a single driver, every node's submission for a given
    /// virtual time lands in the server queue before any node blocks
    /// waiting, which is what lets the dynamic batcher coalesce windows
    /// across nodes.
    Collect,
}

pub(crate) struct Node<'a> {
    id: usize,
    source: Box<dyn FrameSource + Send + 'a>,
    config: NodeConfig,
    assembler: WindowAssembler,
    smoother: Smoother,
    detector: EventDetector,
    rung: DutyRung,
    infer_cost_pj: f64,
    shed_cost_pj: f64,
    us_per_frame: u64,
    frame_interval_s: f64,
    in_flight: Option<(usize, Ticket)>,
    inferred: u64,
    shed: u64,
    expired: u64,
    slept: u64,
    rung_changes: u64,
    events: Vec<Event>,
    /// The node-local span sequence: strictly increasing per node, so
    /// every `(lane = node, span_id = seq)` pair the node records into
    /// the shared tracer is unique and snapshot order is deterministic.
    trace_seq: u64,
    first_sleep_us: Option<u64>,
    end_us: u64,
}

impl<'a> Node<'a> {
    /// Validates `config` against `server` and builds the node.
    pub(crate) fn new(
        id: usize,
        server: &Server,
        source: Box<dyn FrameSource + Send + 'a>,
        config: NodeConfig,
    ) -> Result<Self, FleetError> {
        let [t, h, w] = server.expected_clip();
        if config.window != t {
            return Err(FleetError::Config {
                context: format!(
                    "node {id}: window length {} does not match the served model's {t} \
                     exposure slots",
                    config.window
                ),
            });
        }
        if !config.fps.is_finite() || config.fps <= 0.0 {
            return Err(FleetError::Config {
                context: format!(
                    "node {id}: fps must be finite and positive, got {}",
                    config.fps
                ),
            });
        }
        if matches!(config.overload, OverloadPolicy::DropOldest { .. }) {
            return Err(FleetError::Config {
                context: format!(
                    "node {id}: DropOldest is a thread-per-stream policy; fleet nodes keep at \
                     most one window in flight — use Block or SkipWindow"
                ),
            });
        }
        if !config.sleep_pj_per_window.is_finite() || config.sleep_pj_per_window < 0.0 {
            return Err(FleetError::Config {
                context: format!(
                    "node {id}: sleep cost must be finite and non-negative, got {}",
                    config.sleep_pj_per_window
                ),
            });
        }
        config.ladder.validate()?;

        // Per-window pricing: one emitted window is one coded capture.
        // Inferring pays the full SnapPix pipeline (exposure, CE pattern
        // control, single-image readout, transmission); shedding stops
        // before readout and pays only exposure + CE overhead.
        let scenario = Scenario {
            frame_pixels: h * w,
            slots: config.window,
            wireless: config.wireless,
        };
        let breakdown = config.energy_model.snappix_energy(&scenario);
        let infer_cost_pj = breakdown.total_pj();
        let shed_cost_pj = breakdown.exposure_pj + breakdown.ce_overhead_pj;

        let us_per_frame = ((1e6 / config.fps).round() as u64).max(1);
        Ok(Node {
            id,
            source,
            assembler: WindowAssembler::new(config.window, config.hop, [h, w])?,
            smoother: Smoother::new(config.smoothing),
            detector: EventDetector::new(config.hysteresis),
            rung: DutyRung::Full,
            infer_cost_pj,
            shed_cost_pj,
            us_per_frame,
            // Virtual time and energy agree on the frame interval: both
            // use the rounded microsecond spacing.
            frame_interval_s: us_per_frame as f64 / 1e6,
            in_flight: None,
            inferred: 0,
            shed: 0,
            expired: 0,
            slept: 0,
            rung_changes: 0,
            events: Vec::new(),
            trace_seq: 0,
            first_sleep_us: None,
            end_us: 0,
            config,
        })
    }

    /// Processes one [`NodeEvent::Advance`]: pull a frame, harvest,
    /// and — if a window completed — step the ladder and decide the
    /// window's fate. Returns the node's next event, or `None` when the
    /// source is exhausted.
    /// Records one fleet event into the shared tracer as a raw span on
    /// this node's lane (see [`TraceEvent::to_record`]).
    fn record(&mut self, tracer: &Tracer, at_us: u64, window: usize, kind: TraceKind) {
        self.trace_seq += 1;
        tracer.record_raw(
            TraceEvent {
                at_us,
                node: self.id,
                window,
                kind,
            }
            .to_record(self.trace_seq),
        );
    }

    pub(crate) fn advance(
        &mut self,
        at_us: u64,
        server: &Server,
        tracer: &Tracer,
    ) -> Result<Option<(u64, NodeEvent)>, FleetError> {
        debug_assert!(self.in_flight.is_none(), "one event in flight per node");
        let Some(frame) = self.source.next_frame()? else {
            self.end_us = at_us;
            return Ok(None);
        };
        // Harvest accrues over the frame interval that just elapsed;
        // the first frame arrives at virtual time zero with nothing
        // elapsed yet.
        if self.assembler.frames_in() > 0 {
            self.config.budget.harvest_for(self.frame_interval_s);
        }
        let submitted = match self.assembler.push(&frame)? {
            Some(window) => {
                let index = self.assembler.windows_out() - 1;
                self.step_ladder(at_us, index, tracer);
                self.decide(at_us, index, window, server, tracer)?
            }
            None => false,
        };
        if submitted {
            Ok(Some((at_us, NodeEvent::Collect)))
        } else {
            Ok(Some((at_us + self.us_per_frame, NodeEvent::Advance)))
        }
    }

    /// Processes one [`NodeEvent::Collect`]: block on the in-flight
    /// ticket, fold the prediction into smoothing/eventing, and schedule
    /// the next frame.
    pub(crate) fn collect(
        &mut self,
        at_us: u64,
        tracer: &Tracer,
    ) -> Result<Option<(u64, NodeEvent)>, FleetError> {
        let (index, ticket) = self
            .in_flight
            .take()
            .expect("Collect is only scheduled with a ticket in flight");
        match ticket.wait() {
            Ok(prediction) => {
                self.inferred += 1;
                self.record(
                    tracer,
                    at_us,
                    index,
                    TraceKind::Inferred {
                        label: prediction.label,
                    },
                );
                let smoothed = self.smoother.observe(&prediction);
                let at_frame = index * self.config.hop + self.config.window - 1;
                if let Some(event) = self.detector.observe(self.id, index, at_frame, smoothed) {
                    self.events.push(event);
                }
            }
            Err(ServeError::DeadlineExpired { .. }) => {
                // The energy is already gone: capture, readout, and
                // transmission happened on the node; the server-side
                // queue expiring the work refunds nothing.
                self.expired += 1;
                self.record(tracer, at_us, index, TraceKind::Expired);
            }
            Err(e) => return Err(e.into()),
        }
        Ok(Some((at_us + self.us_per_frame, NodeEvent::Advance)))
    }

    /// One deterministic ladder step ahead of a window decision.
    fn step_ladder(&mut self, at_us: u64, window: usize, tracer: &Tracer) {
        let next = self
            .config
            .ladder
            .step(self.rung, self.config.budget.fraction());
        if next == self.rung {
            return;
        }
        self.record(
            tracer,
            at_us,
            window,
            TraceKind::Rung {
                from: self.rung,
                to: next,
            },
        );
        self.rung_changes += 1;
        // The LiteSmoothing rung swaps the smoother for raw labels;
        // recovering past it restores the configured smoothing with
        // fresh state (the stale pre-drain state is long irrelevant).
        if next == DutyRung::LiteSmoothing {
            self.smoother = Smoother::new(Smoothing::Off);
        } else if self.rung == DutyRung::LiteSmoothing && next == DutyRung::ReducedRate {
            self.smoother = Smoother::new(self.config.smoothing);
        }
        if next == DutyRung::Sleep && self.first_sleep_us.is_none() {
            self.first_sleep_us = Some(at_us);
        }
        self.rung = next;
    }

    /// Decides one window's fate under the current rung and budget.
    /// Returns whether a submission is now in flight.
    fn decide(
        &mut self,
        at_us: u64,
        index: usize,
        window: snappix_tensor::Tensor,
        server: &Server,
        tracer: &Tracer,
    ) -> Result<bool, FleetError> {
        match self.rung {
            DutyRung::Sleep => {
                self.sleep(at_us, index, tracer);
                Ok(false)
            }
            DutyRung::Shed => {
                self.shed_window(at_us, index, tracer);
                Ok(false)
            }
            DutyRung::Full | DutyRung::ReducedRate | DutyRung::LiteSmoothing => {
                let divisor = if self.rung == DutyRung::Full {
                    1
                } else {
                    self.config.ladder.rate_divisor as usize
                };
                if !index.is_multiple_of(divisor) {
                    // Rate-skip: the node powers down for this window.
                    self.sleep(at_us, index, tracer);
                    return Ok(false);
                }
                if !self.config.budget.can_afford(self.infer_cost_pj) {
                    // The ladder reacts one window late by design (one
                    // rung per window); an already-flat budget degrades
                    // immediately instead of going negative.
                    self.shed_window(at_us, index, tracer);
                    return Ok(false);
                }
                self.submit(at_us, index, window, server, tracer)
            }
        }
    }

    /// Submits one window under the configured overload policy; on a
    /// declined admission (SkipWindow) the window degrades to shed.
    fn submit(
        &mut self,
        at_us: u64,
        index: usize,
        window: snappix_tensor::Tensor,
        server: &Server,
        tracer: &Tracer,
    ) -> Result<bool, FleetError> {
        let admitted = match (self.config.overload, self.config.deadline) {
            (OverloadPolicy::Block, None) => server.submit(&window).map(Some),
            (OverloadPolicy::Block, Some(d)) => server.submit_within(&window, d).map(Some),
            (OverloadPolicy::SkipWindow, None) => match server.try_submit(&window) {
                Ok(t) => Ok(Some(t)),
                Err(ServeError::Overloaded { .. }) => Ok(None),
                Err(e) => Err(e),
            },
            (OverloadPolicy::SkipWindow, Some(d)) => match server.try_submit_within(&window, d) {
                Ok(t) => Ok(Some(t)),
                Err(ServeError::Overloaded { .. }) => Ok(None),
                Err(e) => Err(e),
            },
            (OverloadPolicy::DropOldest { .. }, _) => {
                unreachable!("rejected at construction")
            }
        };
        match admitted.map_err(FleetError::from)? {
            Some(ticket) => {
                let paid = self.config.budget.try_spend(self.infer_cost_pj);
                debug_assert!(paid, "affordability was checked before submission");
                self.in_flight = Some((index, ticket));
                Ok(true)
            }
            None => {
                // Server-side shed: the capture happened, readout and
                // transmission did not.
                self.shed_window(at_us, index, tracer);
                Ok(false)
            }
        }
    }

    /// Pays for (or degrades) a captured-but-not-inferred window.
    fn shed_window(&mut self, at_us: u64, index: usize, tracer: &Tracer) {
        if self.config.budget.try_spend(self.shed_cost_pj) {
            self.shed += 1;
            self.record(tracer, at_us, index, TraceKind::Shed);
        } else {
            // Cannot even afford the exposure: the window is slept
            // through instead.
            self.sleep(at_us, index, tracer);
        }
    }

    /// Sleeps through a window, paying whatever sleep cost is
    /// affordable (a flat battery sleeps for free).
    fn sleep(&mut self, at_us: u64, index: usize, tracer: &Tracer) {
        let _ = self
            .config
            .budget
            .try_spend(self.config.sleep_pj_per_window);
        self.slept += 1;
        self.record(tracer, at_us, index, TraceKind::Slept);
    }

    /// Final accounting: stats and label events (the trace lives in the
    /// shared tracer; [`FleetSim::run`](crate::FleetSim::run)
    /// reconstructs the merged event log from a snapshot).
    pub(crate) fn finish(self) -> (NodeStats, Vec<Event>) {
        let budget = &self.config.budget;
        let stats = NodeStats {
            frames: self.assembler.frames_in() as u64,
            windows: self.assembler.windows_out() as u64,
            inferred: self.inferred,
            shed: self.shed,
            expired: self.expired,
            slept: self.slept,
            events: self.events.len() as u64,
            rung_changes: self.rung_changes,
            final_rung: self.rung,
            spent_pj: budget.spent_pj(),
            harvested_pj: budget.harvested_pj(),
            wasted_pj: budget.wasted_pj(),
            level_pj: budget.level_pj(),
            initial_pj: budget.initial_pj(),
            capacity_pj: budget.capacity_pj(),
            first_sleep_us: self.first_sleep_us,
            end_us: self.end_us,
        };
        (stats, self.events)
    }

    /// The per-window inference cost the node was priced at, pJ.
    pub(crate) fn infer_cost_pj(&self) -> f64 {
        self.infer_cost_pj
    }
}
