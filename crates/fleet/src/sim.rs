//! The virtual-time fleet simulator: hundreds of nodes, a handful of
//! driver threads, one shared server.
//!
//! Where [`StreamRunner`](snappix_stream::StreamRunner) dedicates a
//! thread to each stream, [`FleetSim`] keeps every node's next event on
//! one binary heap ordered by `(virtual time, insertion order)` and lets
//! a small pool of driver threads pop and process events. A node has at
//! most one event outstanding, so its state advances strictly
//! sequentially no matter how many drivers run — which, together with
//! the deterministic serving backend and the pure duty-cycle ladder, is
//! what makes a seeded fleet run replay bit-for-bit across driver-pool
//! sizes and `SNAPPIX_THREADS` settings.

use crate::node::{Node, NodeEvent};
use crate::{FleetError, FleetStats, NodeConfig, NodeStats, TraceEvent};
use snappix_serve::Server;
use snappix_stream::{Event, FrameSource};
use snappix_trace::Tracer;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One scheduled entry on the virtual-time heap. Ordered by `(due, seq)`
/// so ties at the same virtual instant resolve by insertion order —
/// deterministically, and with a submitting node's `Collect` always
/// after every other node's same-instant `Advance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Scheduled {
    due_us: u64,
    seq: u64,
    node: usize,
    kind: NodeEvent,
}

struct SimState {
    heap: BinaryHeap<Reverse<Scheduled>>,
    in_process: usize,
    stopped: bool,
    error: Option<FleetError>,
    seq: u64,
}

/// Locks a mutex, shrugging off poisoning: a poisoned lock here means a
/// driver already panicked, and the panic guard has marked the run
/// failed — the data is still consistent enough to shut down with.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// An event-driven simulator for a fleet of sensor nodes sharing one
/// [`Server`].
///
/// Build it over a running server, [`add_node`](Self::add_node) as many
/// configured nodes as the scenario needs, then [`run`](Self::run) to
/// completion. See the crate docs for the determinism contract.
///
/// # Examples
///
/// ```no_run
/// use snappix_fleet::prelude::*;
///
/// # fn main() -> Result<(), snappix::Error> {
/// let mask = patterns::long_exposure(8, (8, 8))?;
/// let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
/// let server = Server::builder(Pipeline::builder(model)).build()?;
///
/// let mut sim = FleetSim::new(&server).with_drivers(4);
/// for _ in 0..8 {
///     sim.add_node(
///         SyntheticSource::new(ssv2_like(32, 16, 16), 2),
///         NodeConfig::new(8, 4).with_fps(15.0),
///     )?;
/// }
/// let report = sim.run()?;
/// println!("{}", report.stats);
/// # Ok(())
/// # }
/// ```
pub struct FleetSim<'a> {
    server: &'a Server,
    drivers: usize,
    nodes: Vec<Node<'a>>,
    tracer: Tracer,
}

/// Ring capacity of the simulator's default private tracer, per
/// recording (driver) thread. Fleet events are ~100 bytes each and only
/// allocate as recorded, so a generous cap costs nothing up front —
/// and a cap large enough for whole runs is what keeps the report's
/// trace complete and replayable whatever the driver count (dropped
/// records would depend on how events spread across driver rings).
const DEFAULT_FLEET_RING: usize = 1 << 20;

impl<'a> FleetSim<'a> {
    /// A simulator over `server` with a single driver thread and a
    /// private event recorder.
    pub fn new(server: &'a Server) -> Self {
        FleetSim {
            server,
            drivers: 1,
            nodes: Vec::new(),
            tracer: Tracer::builder().ring_capacity(DEFAULT_FLEET_RING).build(),
        }
    }

    /// Sets the driver-pool size (clamped to ≥ 1; also capped at the
    /// node count at run time). More drivers overlap more nodes'
    /// blocking waits on the server; results are identical either way.
    #[must_use]
    pub fn with_drivers(mut self, drivers: usize) -> Self {
        self.drivers = drivers.max(1);
        self
    }

    /// Replaces the simulator's private event recorder with `tracer` —
    /// typically a clone of the served [`Server`]'s tracer, so fleet
    /// events (virtual-time instants, one lane per node) and the
    /// serving layer's spans land in one snapshot and one Chrome-trace
    /// export. Keep a clone to snapshot after [`run`](Self::run).
    ///
    /// The report's [`trace`](FleetReport::trace) is reconstructed from
    /// this tracer's contents, so a *disabled* tracer means an empty
    /// report trace, a shared tracer should be
    /// [`cleared`](Tracer::clear) between runs (stale events would be
    /// double-counted), and its ring capacity bounds how much of a long
    /// run survives (the private default keeps 2^20 events per driver
    /// thread).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Adds one node reading frames from `source` under `config`,
    /// returning its id (ids are dense, in insertion order).
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] when the window length does not match the
    /// served model, the fps is not finite and positive, the overload
    /// policy is `DropOldest`, the ladder fails
    /// [`validate`](crate::DutyCycle::validate), or the sleep cost is
    /// negative; [`FleetError::Stream`] for bad window geometry.
    pub fn add_node(
        &mut self,
        source: impl FrameSource + Send + 'a,
        config: NodeConfig,
    ) -> Result<usize, FleetError> {
        let id = self.nodes.len();
        self.nodes
            .push(Node::new(id, self.server, Box::new(source), config)?);
        Ok(id)
    }

    /// The per-window energy a node would pay for a full inference, pJ.
    /// Handy for sizing budgets in tests and examples ("give the node
    /// enough for exactly 20 windows").
    pub fn infer_cost_pj(&self, node: usize) -> Option<f64> {
        self.nodes.get(node).map(Node::infer_cost_pj)
    }

    /// Runs every node's source to exhaustion and returns the report.
    ///
    /// # Errors
    ///
    /// The first [`FleetError`] any node hits stops the whole run — a
    /// non-deadline serving failure, a source error, or a driver panic.
    pub fn run(self) -> Result<FleetReport, FleetError> {
        let started = Instant::now();
        let server = self.server;
        let drivers = self.drivers.min(self.nodes.len()).max(1);
        let mut heap = BinaryHeap::with_capacity(self.nodes.len());
        for (id, _) in self.nodes.iter().enumerate() {
            heap.push(Reverse(Scheduled {
                due_us: 0,
                seq: id as u64,
                node: id,
                kind: NodeEvent::Advance,
            }));
        }
        let seq0 = self.nodes.len() as u64;
        let tracer = self.tracer;
        let nodes: Vec<Mutex<Node<'a>>> = self.nodes.into_iter().map(Mutex::new).collect();
        let state = Mutex::new(SimState {
            heap,
            in_process: 0,
            stopped: false,
            error: None,
            seq: seq0,
        });
        let idle = Condvar::new();

        std::thread::scope(|scope| {
            for _ in 0..drivers {
                scope.spawn(|| drive(&state, &idle, &nodes, server, &tracer));
            }
        });

        let mut state = state.into_inner().unwrap_or_else(|p| p.into_inner());
        if let Some(error) = state.error.take() {
            return Err(error);
        }

        let mut reports = Vec::with_capacity(nodes.len());
        for (id, node) in nodes.into_iter().enumerate() {
            let node = node.into_inner().unwrap_or_else(|p| p.into_inner());
            let (stats, events) = node.finish();
            debug_assert!(stats.check_conserved(), "node {id} ledgers out of balance");
            reports.push(NodeReport { id, stats, events });
        }
        // The merged event log comes back out of the shared recorder:
        // the snapshot's (start_us, lane, span_id) order *is* the
        // report's (virtual time, node, per-node sequence) order — no
        // re-sort needed, whatever driver thread recorded each event.
        // Non-fleet records (a shared tracer also carries serving-layer
        // spans) decode to None and drop out.
        let trace: Vec<TraceEvent> = tracer
            .snapshot()
            .records
            .iter()
            .filter_map(TraceEvent::from_record)
            .collect();
        let stats = FleetStats::aggregate(reports.iter().map(|n| &n.stats));
        debug_assert!(stats.check_conserved(), "fleet ledger out of balance");
        Ok(FleetReport {
            nodes: reports,
            stats,
            trace,
            wall: started.elapsed(),
        })
    }
}

/// One driver thread: pop the earliest event, run it against its node,
/// push the follow-up. Exits when the heap is empty with nothing in
/// process, or the run stops on an error.
fn drive(
    state: &Mutex<SimState>,
    idle: &Condvar,
    nodes: &[Mutex<Node<'_>>],
    server: &Server,
    tracer: &Tracer,
) {
    loop {
        let scheduled = {
            let mut st = lock(state);
            loop {
                if st.stopped {
                    return;
                }
                if let Some(Reverse(scheduled)) = st.heap.pop() {
                    st.in_process += 1;
                    break scheduled;
                }
                if st.in_process == 0 {
                    // Quiescent: wake any drivers parked below so they
                    // observe it too.
                    st.stopped = true;
                    idle.notify_all();
                    return;
                }
                st = idle.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };

        // Catch panics so a wedged node fails the run cleanly instead of
        // leaving the other drivers parked on the condvar forever.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut node = lock(&nodes[scheduled.node]);
            match scheduled.kind {
                NodeEvent::Advance => node.advance(scheduled.due_us, server, tracer),
                NodeEvent::Collect => node.collect(scheduled.due_us, tracer),
            }
        }));
        let Ok(outcome) = outcome else {
            let mut st = lock(state);
            st.in_process -= 1;
            st.stopped = true;
            if st.error.is_none() {
                st.error = Some(FleetError::Config {
                    context: "a driver thread panicked mid-event".into(),
                });
            }
            idle.notify_all();
            return;
        };

        let mut st = lock(state);
        st.in_process -= 1;
        match outcome {
            Ok(Some((due_us, kind))) => {
                let seq = st.seq;
                st.seq += 1;
                st.heap.push(Reverse(Scheduled {
                    due_us,
                    seq,
                    node: scheduled.node,
                    kind,
                }));
            }
            Ok(None) => {}
            Err(error) => {
                st.stopped = true;
                if st.error.is_none() {
                    st.error = Some(error);
                }
            }
        }
        idle.notify_all();
    }
}

/// One node's slice of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// The node id [`add_node`](FleetSim::add_node) returned.
    pub id: usize,
    /// The node's final accounting.
    pub stats: NodeStats,
    /// The node's confirmed label-change events, in window order.
    pub events: Vec<Event>,
}

/// Everything a completed fleet run produced.
///
/// All fields except [`wall`](Self::wall) are pure functions of the
/// fleet's sources and configs and compare equal across replays; wall
/// time is measurement, kept out of the comparable stats on purpose.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-node reports, in node-id order.
    pub nodes: Vec<NodeReport>,
    /// Fleet-wide aggregate statistics.
    pub stats: FleetStats,
    /// The merged deterministic event trace, sorted by
    /// `(virtual time, node)`.
    pub trace: Vec<TraceEvent>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

impl FleetReport {
    /// The fleet's budget survival curve: `buckets + 1` samples
    /// `(virtual_us, alive_fraction)` spanning the run, where a node
    /// counts as alive at `t` until it first reaches
    /// [`DutyRung::Sleep`](crate::DutyRung::Sleep).
    pub fn survival_curve(&self, buckets: usize) -> Vec<(u64, f64)> {
        if self.nodes.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let total = self.stats.virtual_us;
        (0..=buckets)
            .map(|i| {
                let t = total * i as u64 / buckets as u64;
                let alive = self
                    .nodes
                    .iter()
                    .filter(|n| n.stats.first_sleep_us.is_none_or(|s| s > t))
                    .count();
                (t, alive as f64 / self.nodes.len() as f64)
            })
            .collect()
    }

    /// Audits every node's ledgers and the fleet aggregate.
    pub fn check_conserved(&self) -> bool {
        self.nodes.iter().all(|n| n.stats.check_conserved()) && self.stats.check_conserved()
    }

    /// Exports the run as `snappix_fleet_*` families into `registry` —
    /// typically the shared registry of the server the fleet ran over,
    /// so one `/metrics` render covers both layers.
    ///
    /// Per-node window-ledger counters carry a `node` label; the
    /// unlabeled gauges describe the run as a whole. Counters
    /// *accumulate*: exporting two runs into one registry sums their
    /// ledgers (matching Prometheus counter semantics for a long-lived
    /// scrape target), while the gauges are overwritten with the most
    /// recent run's values. Call once per finished run.
    pub fn export_metrics(&self, registry: &snappix_metrics::Registry) {
        for node in &self.nodes {
            let id = node.id.to_string();
            let labels: &[(&str, &str)] = &[("node", &id)];
            let ledger: [(&str, &str, u64); 8] = [
                (
                    "snappix_fleet_frames_total",
                    "Frames pulled from node sources.",
                    node.stats.frames,
                ),
                (
                    "snappix_fleet_windows_total",
                    "Windows the node assemblers emitted.",
                    node.stats.windows,
                ),
                (
                    "snappix_fleet_inferred_total",
                    "Windows inferred end to end.",
                    node.stats.inferred,
                ),
                (
                    "snappix_fleet_shed_total",
                    "Windows captured but shed before readout.",
                    node.stats.shed,
                ),
                (
                    "snappix_fleet_expired_total",
                    "Windows whose deadline expired in the server queue.",
                    node.stats.expired,
                ),
                (
                    "snappix_fleet_slept_total",
                    "Windows slept through (Sleep rung, rate-skips, or an empty budget).",
                    node.stats.slept,
                ),
                (
                    "snappix_fleet_events_total",
                    "Confirmed label-change events.",
                    node.stats.events,
                ),
                (
                    "snappix_fleet_rung_changes_total",
                    "Duty-cycle ladder transitions.",
                    node.stats.rung_changes,
                ),
            ];
            for (name, help, value) in ledger {
                registry.counter_with(name, help, labels).add(value);
            }
            registry
                .gauge_with(
                    "snappix_fleet_energy_spent_picojoules",
                    "Energy the node spent over the most recent run, pJ.",
                    labels,
                )
                .set(node.stats.spent_pj);
            registry
                .gauge_with(
                    "snappix_fleet_energy_level_picojoules",
                    "The node's budget level at the end of the most recent run, pJ.",
                    labels,
                )
                .set(node.stats.level_pj);
        }
        registry
            .gauge("snappix_fleet_nodes", "Nodes in the most recent run.")
            .set(self.stats.nodes as f64);
        registry
            .gauge(
                "snappix_fleet_virtual_seconds",
                "Virtual duration of the most recent run.",
            )
            .set(self.stats.virtual_us as f64 / 1e6);
        registry
            .gauge(
                "snappix_fleet_energy_per_inference_picojoules",
                "Fleet-wide average energy per inferred window over the most \
                 recent run, pJ.",
            )
            .set(self.stats.energy_per_inference_pj());
    }
}
