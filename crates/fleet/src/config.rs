//! Per-node configuration for the fleet simulator.

use crate::DutyCycle;
use snappix_energy::{EnergyBudget, EnergyModel, Wireless};
use snappix_stream::{OverloadPolicy, Smoothing};
use std::time::Duration;

/// Everything one simulated sensor node is configured with: window
/// geometry and frame rate, the streaming post-processing
/// (smoothing / hysteresis / overload), and the energy side (budget,
/// pricing model, wireless class, duty-cycle ladder).
///
/// Built `with_*`-style like the rest of the workspace; validated when
/// the node is added to a [`FleetSim`](crate::FleetSim).
///
/// # Examples
///
/// ```
/// use snappix_energy::{EnergyBudget, Wireless};
/// use snappix_fleet::NodeConfig;
///
/// let config = NodeConfig::new(8, 4)
///     .with_fps(15.0)
///     .with_budget(EnergyBudget::new(5.0e9).with_harvest(2.0e8))
///     .with_wireless(Wireless::LoraBackscatter);
/// assert_eq!(config.window, 8);
/// assert_eq!(config.fps, 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Window length `t` in frames — must equal the served model's slot
    /// count (`Server::expected_clip()[0]`).
    pub window: usize,
    /// Frames between consecutive window starts (clamped to ≥ 1).
    pub hop: usize,
    /// The node's camera frame rate in frames per second; sets the
    /// virtual-time spacing of the node's events. Must be finite and
    /// positive (validated at [`add_node`](crate::FleetSim::add_node)).
    pub fps: f64,
    /// Temporal smoothing at the [`Full`](crate::DutyRung::Full) and
    /// [`ReducedRate`](crate::DutyRung::ReducedRate) rungs; the
    /// [`LiteSmoothing`](crate::DutyRung::LiteSmoothing) rung overrides
    /// it with [`Smoothing::Off`].
    pub smoothing: Smoothing,
    /// Consecutive windows a new smoothed label must persist before a
    /// label-change event fires (clamped to ≥ 1).
    pub hysteresis: usize,
    /// What to do when the *server* sheds load (distinct from the
    /// budget-driven ladder). [`OverloadPolicy::Block`] (the default)
    /// keeps runs bit-for-bit replayable;
    /// [`OverloadPolicy::SkipWindow`] sheds on real-time queue state and
    /// therefore does not replay exactly.
    /// [`OverloadPolicy::DropOldest`] is rejected: fleet nodes keep at
    /// most one window in flight, so there is no buffer to drop from.
    pub overload: OverloadPolicy,
    /// Optional per-window deadline, measured from submission. Expiry
    /// depends on wall-clock server load, so deadlines also trade away
    /// exact replay.
    pub deadline: Option<Duration>,
    /// The node's energy reserve. Defaults to
    /// [`EnergyBudget::unbounded`] — scheduling without energy pressure.
    pub budget: EnergyBudget,
    /// Per-component energy pricing; defaults to
    /// [`EnergyModel::paper`].
    pub energy_model: EnergyModel,
    /// The node's offload link; defaults to [`Wireless::PassiveWifi`].
    pub wireless: Wireless,
    /// The duty-cycle ladder thresholds.
    pub ladder: DutyCycle,
    /// Energy charged for a window the node sleeps through (pattern
    /// clock gated, no exposure), in pJ. Defaults to 0 — deep sleep.
    pub sleep_pj_per_window: f64,
}

impl NodeConfig {
    /// A config with the given window length and hop and the defaults
    /// documented on each field: 30 fps, default smoothing, hysteresis
    /// 2, blocking overload, no deadline, unbounded budget, the paper's
    /// energy model over passive WiFi, the default ladder, free sleep.
    pub fn new(window: usize, hop: usize) -> Self {
        NodeConfig {
            window,
            hop: hop.max(1),
            fps: 30.0,
            smoothing: Smoothing::default(),
            hysteresis: 2,
            overload: OverloadPolicy::Block,
            deadline: None,
            budget: EnergyBudget::unbounded(),
            energy_model: EnergyModel::paper(),
            wireless: Wireless::PassiveWifi,
            ladder: DutyCycle::default(),
            sleep_pj_per_window: 0.0,
        }
    }

    /// Sets the camera frame rate (validated when the node is added).
    #[must_use]
    pub fn with_fps(mut self, fps: f64) -> Self {
        self.fps = fps;
        self
    }

    /// Sets the temporal smoothing mode.
    #[must_use]
    pub fn with_smoothing(mut self, smoothing: Smoothing) -> Self {
        self.smoothing = smoothing;
        self
    }

    /// Sets the event hysteresis in windows (clamped to ≥ 1).
    #[must_use]
    pub fn with_hysteresis(mut self, hysteresis: usize) -> Self {
        self.hysteresis = hysteresis.max(1);
        self
    }

    /// Sets the server-overload policy.
    #[must_use]
    pub fn with_overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// Sets a per-window deadline (measured from submission).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the node's energy budget.
    #[must_use]
    pub fn with_budget(mut self, budget: EnergyBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the per-component energy pricing model.
    #[must_use]
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Sets the node's wireless offload link.
    #[must_use]
    pub fn with_wireless(mut self, wireless: Wireless) -> Self {
        self.wireless = wireless;
        self
    }

    /// Sets the duty-cycle ladder.
    #[must_use]
    pub fn with_ladder(mut self, ladder: DutyCycle) -> Self {
        self.ladder = ladder;
        self
    }

    /// Sets the energy charged per slept-through window, in pJ.
    #[must_use]
    pub fn with_sleep_cost(mut self, pj_per_window: f64) -> Self {
        self.sleep_pj_per_window = pj_per_window;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_documented_ones() {
        let c = NodeConfig::new(8, 4);
        assert_eq!((c.window, c.hop), (8, 4));
        assert_eq!(c.fps, 30.0);
        assert_eq!(c.overload, OverloadPolicy::Block);
        assert_eq!(c.hysteresis, 2);
        assert!(c.deadline.is_none());
        assert_eq!(c.budget, EnergyBudget::unbounded());
        assert_eq!(c.energy_model, EnergyModel::paper());
        assert_eq!(c.wireless, Wireless::PassiveWifi);
        assert_eq!(c.ladder, DutyCycle::default());
        assert_eq!(c.sleep_pj_per_window, 0.0);
        // Clamps.
        assert_eq!(NodeConfig::new(8, 0).hop, 1);
        assert_eq!(NodeConfig::new(8, 4).with_hysteresis(0).hysteresis, 1);
    }
}
