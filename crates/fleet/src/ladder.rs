//! The adaptive duty-cycle ladder: how a node trades inference for
//! lifetime as its energy budget drains.
//!
//! A battery-backed sensor that keeps inferring at full rate dies early;
//! one that sleeps too eagerly wastes harvest it could have spent on
//! answers. The ladder is the middle path: a small ordered set of
//! operating modes ([`DutyRung`]) and a pure, deterministic stepping
//! rule ([`DutyCycle::step`]) that walks *one rung at a time* as the
//! budget fraction crosses configured thresholds, with a hysteresis
//! margin so a node hovering at a threshold does not flap between modes.

use crate::FleetError;
use std::fmt;

/// One operating mode on the duty-cycle ladder, from most capable to
/// most frugal. The simulator walks adjacent rungs only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DutyRung {
    /// Every assembled window is inferred with the configured smoothing.
    Full,
    /// Only every `rate_divisor`-th window is inferred; the rest are
    /// slept through. Smoothing is unchanged.
    ReducedRate,
    /// Reduced rate *and* smoothing switched to raw labels
    /// ([`Smoothing::Off`](snappix_stream::Smoothing::Off)) — the
    /// cheapest on-node post-processing.
    LiteSmoothing,
    /// Windows are captured but shed before readout: the node pays
    /// exposure and CE pattern overhead, skips readout and transmission,
    /// and gets no prediction.
    Shed,
    /// The node sleeps through windows entirely, spending only its
    /// configured sleep cost, until harvest restores the budget.
    Sleep,
}

impl DutyRung {
    /// Position on the ladder: 0 = [`Full`](Self::Full) down to
    /// 4 = [`Sleep`](Self::Sleep).
    pub fn depth(self) -> usize {
        match self {
            DutyRung::Full => 0,
            DutyRung::ReducedRate => 1,
            DutyRung::LiteSmoothing => 2,
            DutyRung::Shed => 3,
            DutyRung::Sleep => 4,
        }
    }

    pub(crate) fn from_depth(depth: usize) -> DutyRung {
        match depth {
            0 => DutyRung::Full,
            1 => DutyRung::ReducedRate,
            2 => DutyRung::LiteSmoothing,
            3 => DutyRung::Shed,
            _ => DutyRung::Sleep,
        }
    }
}

impl fmt::Display for DutyRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DutyRung::Full => "full",
            DutyRung::ReducedRate => "reduced-rate",
            DutyRung::LiteSmoothing => "lite-smoothing",
            DutyRung::Shed => "shed",
            DutyRung::Sleep => "sleep",
        })
    }
}

/// Threshold configuration of the duty-cycle ladder.
///
/// Each `*_below` value is the budget fraction (of capacity, in
/// `(0, 1)`) below which the node belongs *at least* that deep on the
/// ladder; they must be strictly decreasing. Recovery is hysteretic: a
/// node steps back up only once its fraction exceeds the threshold that
/// demoted it by `recover_margin`.
///
/// # Examples
///
/// ```
/// use snappix_fleet::{DutyCycle, DutyRung};
///
/// let ladder = DutyCycle::default();
/// // Draining: one rung at a time.
/// assert_eq!(ladder.step(DutyRung::Full, 0.10), DutyRung::ReducedRate);
/// assert_eq!(ladder.step(DutyRung::ReducedRate, 0.10), DutyRung::LiteSmoothing);
/// // Hovering just above a crossed threshold does not flap back.
/// assert_eq!(ladder.step(DutyRung::ReducedRate, 0.61), DutyRung::ReducedRate);
/// assert_eq!(ladder.step(DutyRung::ReducedRate, 0.70), DutyRung::Full);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycle {
    /// Below this fraction, at least [`DutyRung::ReducedRate`].
    pub reduced_below: f64,
    /// Below this fraction, at least [`DutyRung::LiteSmoothing`].
    pub lite_below: f64,
    /// Below this fraction, at least [`DutyRung::Shed`].
    pub shed_below: f64,
    /// Below this fraction, [`DutyRung::Sleep`].
    pub sleep_below: f64,
    /// Extra fraction required above a threshold before recovering past
    /// it (hysteresis; ≥ 0).
    pub recover_margin: f64,
    /// At [`DutyRung::ReducedRate`] and deeper inference rungs, only
    /// every `rate_divisor`-th window is inferred (≥ 2).
    pub rate_divisor: u32,
}

impl Default for DutyCycle {
    /// Thresholds 0.60 / 0.45 / 0.30 / 0.15 with a 0.05 recovery margin
    /// and half rate when reduced.
    fn default() -> Self {
        DutyCycle {
            reduced_below: 0.60,
            lite_below: 0.45,
            shed_below: 0.30,
            sleep_below: 0.15,
            recover_margin: 0.05,
            rate_divisor: 2,
        }
    }
}

impl DutyCycle {
    /// Checks the configuration, returning it for chaining.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] unless the four thresholds are strictly
    /// decreasing within `(0, 1)`, the margin is finite and
    /// non-negative, and the divisor is at least 2.
    pub fn validate(&self) -> Result<(), FleetError> {
        let t = [
            self.reduced_below,
            self.lite_below,
            self.shed_below,
            self.sleep_below,
        ];
        if t.iter().any(|v| !v.is_finite() || *v <= 0.0 || *v >= 1.0) {
            return Err(FleetError::Config {
                context: format!("duty-cycle thresholds must lie strictly inside (0, 1): {t:?}"),
            });
        }
        if !(t[0] > t[1] && t[1] > t[2] && t[2] > t[3]) {
            return Err(FleetError::Config {
                context: format!("duty-cycle thresholds must be strictly decreasing: {t:?}"),
            });
        }
        if !self.recover_margin.is_finite() || self.recover_margin < 0.0 {
            return Err(FleetError::Config {
                context: format!(
                    "duty-cycle recover_margin must be finite and non-negative, got {}",
                    self.recover_margin
                ),
            });
        }
        if self.rate_divisor < 2 {
            return Err(FleetError::Config {
                context: format!(
                    "duty-cycle rate_divisor must be at least 2 (1 makes ReducedRate \
                     indistinguishable from Full), got {}",
                    self.rate_divisor
                ),
            });
        }
        Ok(())
    }

    /// The fraction below which a node belongs at least `depth` rungs
    /// deep (depth 1..=4).
    fn threshold(&self, depth: usize) -> f64 {
        match depth {
            1 => self.reduced_below,
            2 => self.lite_below,
            3 => self.shed_below,
            _ => self.sleep_below,
        }
    }

    /// The rung the fraction alone calls for, ignoring the current rung.
    fn target(&self, fraction: f64) -> DutyRung {
        if fraction < self.sleep_below {
            DutyRung::Sleep
        } else if fraction < self.shed_below {
            DutyRung::Shed
        } else if fraction < self.lite_below {
            DutyRung::LiteSmoothing
        } else if fraction < self.reduced_below {
            DutyRung::ReducedRate
        } else {
            DutyRung::Full
        }
    }

    /// One deterministic ladder step: from `current`, with the budget at
    /// `fraction` of capacity, returns the rung for the next window —
    /// at most one rung away from `current`.
    ///
    /// Draining moves down one rung whenever the fraction calls for a
    /// deeper rung. Recovery moves up one rung only when the fraction
    /// clears the current rung's entry threshold by `recover_margin`.
    /// A pure function of `(self, current, fraction)` — no randomness,
    /// no clocks — which is what makes fleet runs replayable.
    pub fn step(&self, current: DutyRung, fraction: f64) -> DutyRung {
        let depth = current.depth();
        if self.target(fraction).depth() > depth {
            return DutyRung::from_depth(depth + 1);
        }
        if depth > 0 && fraction >= self.threshold(depth) + self.recover_margin {
            return DutyRung::from_depth(depth - 1);
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_one_rung_at_a_time_to_sleep() {
        let ladder = DutyCycle::default();
        let mut rung = DutyRung::Full;
        let walk: Vec<DutyRung> = (0..5)
            .map(|_| {
                rung = ladder.step(rung, 0.01);
                rung
            })
            .collect();
        assert_eq!(
            walk,
            vec![
                DutyRung::ReducedRate,
                DutyRung::LiteSmoothing,
                DutyRung::Shed,
                DutyRung::Sleep,
                DutyRung::Sleep, // floor
            ]
        );
    }

    #[test]
    fn recovers_one_rung_at_a_time_with_hysteresis() {
        let ladder = DutyCycle::default();
        // Entered Sleep below 0.15; 0.15 + margin 0.05 = 0.20 to leave.
        assert_eq!(ladder.step(DutyRung::Sleep, 0.19), DutyRung::Sleep);
        assert_eq!(ladder.step(DutyRung::Sleep, 0.21), DutyRung::Shed);
        // Shed needs 0.30 + 0.05.
        assert_eq!(ladder.step(DutyRung::Shed, 0.34), DutyRung::Shed);
        assert_eq!(ladder.step(DutyRung::Shed, 0.36), DutyRung::LiteSmoothing);
        // Full is the ceiling.
        assert_eq!(ladder.step(DutyRung::Full, 1.0), DutyRung::Full);
    }

    #[test]
    fn within_band_holds_steady() {
        let ladder = DutyCycle::default();
        // 0.50 sits in the ReducedRate band (0.45..0.60): entered from
        // above it stays, and the +margin requirement blocks recovery
        // until 0.65.
        assert_eq!(
            ladder.step(DutyRung::ReducedRate, 0.50),
            DutyRung::ReducedRate
        );
        assert_eq!(
            ladder.step(DutyRung::ReducedRate, 0.64),
            DutyRung::ReducedRate
        );
        assert_eq!(ladder.step(DutyRung::ReducedRate, 0.65), DutyRung::Full);
    }

    #[test]
    fn steep_drains_still_step_singly() {
        // Even a budget that collapses from full to empty in one window
        // walks the ladder rung by rung — no mode whiplash.
        let ladder = DutyCycle::default();
        assert_eq!(ladder.step(DutyRung::Full, 0.0), DutyRung::ReducedRate);
    }

    #[test]
    fn validation_rejects_bad_ladders() {
        assert!(DutyCycle::default().validate().is_ok());
        let cases = [
            DutyCycle {
                reduced_below: 0.45,
                lite_below: 0.60, // not decreasing
                ..DutyCycle::default()
            },
            DutyCycle {
                sleep_below: 0.0, // not inside (0, 1)
                ..DutyCycle::default()
            },
            DutyCycle {
                reduced_below: 1.0, // not inside (0, 1)
                ..DutyCycle::default()
            },
            DutyCycle {
                recover_margin: -0.1,
                ..DutyCycle::default()
            },
            DutyCycle {
                recover_margin: f64::NAN,
                ..DutyCycle::default()
            },
            DutyCycle {
                rate_divisor: 1,
                ..DutyCycle::default()
            },
        ];
        for bad in cases {
            assert!(
                matches!(bad.validate(), Err(FleetError::Config { .. })),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn rungs_order_and_display() {
        assert!(DutyRung::Full < DutyRung::Sleep);
        let names: Vec<String> = [
            DutyRung::Full,
            DutyRung::ReducedRate,
            DutyRung::LiteSmoothing,
            DutyRung::Shed,
            DutyRung::Sleep,
        ]
        .iter()
        .map(|r| r.to_string())
        .collect();
        assert_eq!(
            names,
            vec!["full", "reduced-rate", "lite-smoothing", "shed", "sleep"]
        );
    }
}
