//! Fleet-layer errors, plus the bridge into the umbrella
//! [`snappix::Error`].

use snappix_serve::ServeError;
use snappix_stream::StreamError;
use std::fmt;

/// Everything that can go wrong assembling or running a fleet
/// simulation.
///
/// Duty-cycling *outcomes* — a window shed under a drained budget, a
/// node sleeping through a window — are not errors: they are counted in
/// [`NodeStats`](crate::NodeStats) and recorded in the event trace. This
/// enum covers genuine failures: node misconfiguration, a frame source
/// or window assembler failing, or a serving failure no policy covers.
///
/// The enum is `#[non_exhaustive]`: the fleet layer can grow failure
/// modes without a breaking release.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// A node or the simulator was misconfigured (window geometry that
    /// does not match the server's model, a bad frame rate, a
    /// non-monotone duty-cycle ladder, an unsupported overload
    /// policy, ...).
    Config {
        /// Human-readable description of the problem.
        context: String,
    },
    /// The per-node streaming machinery failed (frame source, window
    /// assembly).
    Stream(StreamError),
    /// The serving layer failed in a way no policy covers (batch
    /// inference error, worker death, shutdown mid-run).
    Serve(ServeError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config { context } => write!(f, "fleet misconfigured: {context}"),
            FleetError::Stream(e) => write!(f, "node streaming failure: {e}"),
            FleetError::Serve(e) => write!(f, "serving failure: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Stream(e) => Some(e),
            FleetError::Serve(e) => Some(e),
            FleetError::Config { .. } => None,
        }
    }
}

impl From<StreamError> for FleetError {
    fn from(e: StreamError) -> Self {
        FleetError::Stream(e)
    }
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

impl From<FleetError> for snappix::Error {
    fn from(e: FleetError) -> Self {
        snappix::Error::Fleet(Box::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let c = FleetError::Config {
            context: "ladder thresholds".into(),
        };
        assert!(c.to_string().contains("ladder thresholds"));
        assert!(std::error::Error::source(&c).is_none());

        let s = FleetError::Serve(ServeError::ShuttingDown);
        assert!(s.to_string().contains("shutting down"));
        assert!(std::error::Error::source(&s).is_some());

        let st = FleetError::Stream(StreamError::Config {
            context: "hop".into(),
        });
        assert!(st.to_string().contains("hop"));
        assert!(std::error::Error::source(&st).is_some());
    }

    #[test]
    fn converts_into_the_umbrella_error() {
        let unified: snappix::Error = FleetError::Config {
            context: "fps".into(),
        }
        .into();
        assert!(matches!(unified, snappix::Error::Fleet(_)));
        assert!(unified.to_string().contains("fps"));
        let source = std::error::Error::source(&unified).expect("chained");
        assert!(source.downcast_ref::<FleetError>().is_some());
    }
}
