//! `snappix-fleet`: energy-aware fleet-scale simulation over the
//! SnapPix serving layer.
//!
//! The streaming layer (`snappix-stream`) dedicates one thread to each
//! live stream — the right shape for a handful of cameras, the wrong one
//! for a *fleet*: hundreds to thousands of battery-and-harvest sensor
//! nodes sharing one inference server. This crate multiplexes all of
//! them over a small pool of driver threads with a virtual-time event
//! loop, and closes the loop with `snappix-energy` so each node's
//! behaviour degrades — deterministically — as its budget drains:
//!
//! * **Nodes** — a [`NodeConfig`] pairs the streaming machinery
//!   (window assembly, smoothing, hysteresis, overload policy, all
//!   reused from `snappix-stream`) with an energy side: an
//!   [`EnergyBudget`](snappix_energy::EnergyBudget), the paper's
//!   [`EnergyModel`](snappix_energy::EnergyModel) pricing each window,
//!   a wireless class, and a duty-cycle ladder.
//! * **The ladder** — [`DutyCycle`] steps a node one [`DutyRung`] at a
//!   time as its budget fraction crosses thresholds: full inference →
//!   reduced window rate → raw labels → shed-before-readout → sleep,
//!   and back up with hysteresis as harvest refills the budget.
//! * **The simulator** — [`FleetSim`] keeps every node's next event on
//!   one binary heap ordered by virtual time and drives them with N
//!   threads; same-instant submissions from different nodes land in the
//!   server queue together, so the dynamic batcher coalesces windows
//!   *across the fleet* exactly as the thread-per-stream runner would.
//! * **Accounting** — [`FleetReport`] carries per-node and aggregate
//!   [`NodeStats`]/[`FleetStats`] with conserved ledgers (every window
//!   is exactly one of inferred / shed / expired / slept; energy level
//!   equals initial + harvested − spent), energy-per-inference, budget
//!   survival curves, and a merged [`TraceEvent`] log.
//!
//! # Determinism
//!
//! With default-shaped configs
//! ([`OverloadPolicy::Block`](snappix_stream::OverloadPolicy::Block), no
//! deadline)
//! a seeded fleet run is **bit-for-bit replayable**: per-node stats, the
//! merged trace, and the aggregate compare equal with `==` across runs,
//! driver-pool sizes, server worker counts, and `SNAPPIX_THREADS`
//! settings. This holds because a node has at most one event in flight
//! (its state advances strictly sequentially), predictions are pure
//! functions of window tensors, the ladder is a pure function of the
//! budget fraction, and wall-clock time never enters the compared data.
//! [`OverloadPolicy::SkipWindow`](snappix_stream::OverloadPolicy::SkipWindow)
//! and deadlines trade that away: they
//! react to real-time queue state. Pinned by `tests/fleet.rs`.
//!
//! # Quickstart
//!
//! ```no_run
//! use snappix_fleet::prelude::*;
//!
//! # fn main() -> Result<(), snappix::Error> {
//! let mask = patterns::long_exposure(8, (8, 8))?;
//! let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
//! let server = Server::builder(Pipeline::builder(model))
//!     .with_workers(2)
//!     .build()?;
//!
//! // A small fleet: finite budgets with solar-ish harvest, LoRa uplink.
//! let mut sim = FleetSim::new(&server).with_drivers(4);
//! for i in 0..16 {
//!     sim.add_node(
//!         SyntheticSource::new(ssv2_like(64, 16, 16), 2 + i % 3),
//!         NodeConfig::new(8, 4)
//!             .with_fps(15.0)
//!             .with_budget(EnergyBudget::new(2.0e9).with_harvest(5.0e7))
//!             .with_wireless(Wireless::PassiveWifi),
//!     )?;
//! }
//! let report = sim.run()?;
//! println!("{}", report.stats);
//! for (t, alive) in report.survival_curve(4) {
//!     println!("t={t} us: {:.0}% of nodes awake", alive * 100.0);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod ladder;
mod node;
mod sim;
mod stats;
mod trace;

pub use config::NodeConfig;
pub use error::FleetError;
pub use ladder::{DutyCycle, DutyRung};
pub use sim::{FleetReport, FleetSim, NodeReport};
pub use stats::{FleetStats, NodeStats};
pub use trace::{TraceEvent, TraceKind};

/// One-stop imports for fleet callers: everything from
/// [`snappix_stream::prelude`] (which pulls in the serving and core
/// preludes) plus the fleet layer's types and the energy types a
/// [`NodeConfig`] is built from.
pub mod prelude {
    pub use crate::{
        DutyCycle, DutyRung, FleetError, FleetReport, FleetSim, FleetStats, NodeConfig, NodeReport,
        NodeStats, TraceEvent, TraceKind,
    };
    pub use snappix_energy::{EnergyBudget, EnergyModel, Scenario, Wireless};
    pub use snappix_stream::prelude::*;
}
