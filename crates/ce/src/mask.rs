//! The tile-repetitive exposure mask.

use crate::{CeError, Result};
use snappix_tensor::Tensor;

/// A tile-repetitive binary exposure mask.
///
/// Stores the `[t, th, tw]` tile pattern; the full-frame mask `M` of Eqn. 1
/// is this pattern repeated across the image (paper Sec. IV). A "global"
/// (non-repetitive) mask — the pattern the paper ablates against — is
/// simply an `ExposureMask` whose tile is the whole frame.
///
/// Invariants enforced at construction: rank 3, all extents positive, and
/// every element exactly `0.0` or `1.0`.
///
/// # Examples
///
/// ```
/// use snappix_ce::ExposureMask;
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_ce::CeError> {
/// let mask = ExposureMask::new(Tensor::ones(&[16, 8, 8]))?; // long exposure
/// assert_eq!(mask.num_slots(), 16);
/// assert_eq!(mask.tile(), (8, 8));
/// assert_eq!(mask.open_fraction(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureMask {
    pattern: Tensor,
}

impl ExposureMask {
    /// Wraps a `[t, th, tw]` binary tensor as a mask.
    ///
    /// # Errors
    ///
    /// Returns [`CeError::InvalidMask`] for wrong rank, zero extents, or
    /// non-binary values.
    pub fn new(pattern: Tensor) -> Result<Self> {
        if pattern.rank() != 3 {
            return Err(CeError::InvalidMask {
                context: format!("expected rank 3, got {:?}", pattern.shape()),
            });
        }
        if pattern.shape().contains(&0) {
            return Err(CeError::InvalidMask {
                context: format!("zero extent in {:?}", pattern.shape()),
            });
        }
        if pattern.as_slice().iter().any(|&x| x != 0.0 && x != 1.0) {
            return Err(CeError::InvalidMask {
                context: "mask values must be exactly 0.0 or 1.0".to_string(),
            });
        }
        Ok(ExposureMask { pattern })
    }

    /// The underlying `[t, th, tw]` tile pattern.
    pub fn pattern(&self) -> &Tensor {
        &self.pattern
    }

    /// Number of exposure slots `t`.
    pub fn num_slots(&self) -> usize {
        self.pattern.shape()[0]
    }

    /// Tile extents `(th, tw)`.
    pub fn tile(&self) -> (usize, usize) {
        (self.pattern.shape()[1], self.pattern.shape()[2])
    }

    /// Number of pixels per tile.
    pub fn pixels_per_tile(&self) -> usize {
        let (th, tw) = self.tile();
        th * tw
    }

    /// Fraction of (slot, pixel) cells that are open.
    pub fn open_fraction(&self) -> f32 {
        self.pattern.mean()
    }

    /// Per-tile-pixel exposure counts: `[th, tw]`, each entry the number of
    /// slots in which that pixel is exposed.
    pub fn exposure_counts(&self) -> Tensor {
        self.pattern
            .sum_axis(0, false)
            .expect("rank-3 invariant guarantees axis 0")
    }

    /// Expands the tile pattern to a full `[t, h, w]` frame mask.
    ///
    /// # Errors
    ///
    /// Returns [`CeError::InvalidMask`] unless the tile divides `h x w`.
    pub fn expand_to(&self, h: usize, w: usize) -> Result<Tensor> {
        let (th, tw) = self.tile();
        if h == 0 || w == 0 || !h.is_multiple_of(th) || !w.is_multiple_of(tw) {
            return Err(CeError::InvalidMask {
                context: format!("tile {th}x{tw} does not divide frame {h}x{w}"),
            });
        }
        let t = self.num_slots();
        let mut out = Tensor::zeros(&[t, h, w]);
        let src = self.pattern.as_slice();
        let dst = out.as_mut_slice();
        for f in 0..t {
            for y in 0..h {
                for x in 0..w {
                    dst[f * h * w + y * w + x] = src[f * th * tw + (y % th) * tw + (x % tw)];
                }
            }
        }
        Ok(out)
    }

    /// The compression ratio achieved by this mask: `t` frames become one
    /// coded image, so the ratio equals [`ExposureMask::num_slots`].
    pub fn compression_ratio(&self) -> usize {
        self.num_slots()
    }

    /// Returns `true` when at least one slot exposes each tile pixel —
    /// masks violating this lose those pixels entirely (the degenerate
    /// collapse the paper's zero-mean encoding guards against).
    pub fn covers_all_pixels(&self) -> bool {
        self.exposure_counts().as_slice().iter().all(|&c| c > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ExposureMask::new(Tensor::ones(&[2, 2])).is_err());
        assert!(ExposureMask::new(Tensor::zeros(&[0, 2, 2])).is_err());
        assert!(ExposureMask::new(Tensor::full(&[2, 2, 2], 0.5)).is_err());
        assert!(ExposureMask::new(Tensor::ones(&[2, 2, 2])).is_ok());
    }

    #[test]
    fn accessors() {
        let m = ExposureMask::new(Tensor::ones(&[4, 2, 3])).unwrap();
        assert_eq!(m.num_slots(), 4);
        assert_eq!(m.tile(), (2, 3));
        assert_eq!(m.pixels_per_tile(), 6);
        assert_eq!(m.compression_ratio(), 4);
        assert_eq!(m.open_fraction(), 1.0);
        assert!(m.covers_all_pixels());
    }

    #[test]
    fn exposure_counts_sum_slots() {
        // Slot 0 exposes everything; slot 1 exposes nothing.
        let p =
            Tensor::concat(&[&Tensor::ones(&[1, 2, 2]), &Tensor::zeros(&[1, 2, 2])], 0).unwrap();
        let m = ExposureMask::new(p).unwrap();
        assert_eq!(m.exposure_counts().as_slice(), &[1.0; 4]);
        assert_eq!(m.open_fraction(), 0.5);
    }

    #[test]
    fn expand_tiles_pattern() {
        let mut p = Tensor::zeros(&[1, 2, 2]);
        p.set(&[0, 0, 0], 1.0).unwrap();
        let m = ExposureMask::new(p).unwrap();
        let full = m.expand_to(4, 4).unwrap();
        assert_eq!(full.shape(), &[1, 4, 4]);
        // The 1 repeats at even coordinates.
        assert_eq!(full.get(&[0, 0, 0]).unwrap(), 1.0);
        assert_eq!(full.get(&[0, 2, 2]).unwrap(), 1.0);
        assert_eq!(full.get(&[0, 1, 1]).unwrap(), 0.0);
        assert_eq!(full.sum(), 4.0);
    }

    #[test]
    fn expand_requires_divisibility() {
        let m = ExposureMask::new(Tensor::ones(&[1, 3, 3])).unwrap();
        assert!(m.expand_to(9, 9).is_ok());
        assert!(m.expand_to(8, 9).is_err());
        assert!(m.expand_to(0, 9).is_err());
    }

    #[test]
    fn covers_all_pixels_detects_dead_pixels() {
        let mut p = Tensor::ones(&[2, 2, 2]);
        p.set(&[0, 1, 1], 0.0).unwrap();
        p.set(&[1, 1, 1], 0.0).unwrap();
        let m = ExposureMask::new(p).unwrap();
        assert!(!m.covers_all_pixels());
    }
}
