//! Built-in task-agnostic exposure patterns (the paper's Fig. 6 baselines).

use crate::{CeError, ExposureMask, Result};
use rand::Rng;
use snappix_tensor::Tensor;
use std::fmt;

/// The task-agnostic pattern families compared in the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// SnapPix's decorrelation-learned pattern (Sec. III).
    Decorrelated,
    /// Every pixel exposed in every slot.
    LongExposure,
    /// Every pixel exposed every 8th slot.
    ShortExposure,
    /// Each (pixel, slot) cell open independently with probability 0.5.
    Random,
    /// Each pixel open in exactly one uniformly random slot.
    SparseRandom,
}

impl fmt::Display for PatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PatternKind::Decorrelated => "decorrelated",
            PatternKind::LongExposure => "long-exposure",
            PatternKind::ShortExposure => "short-exposure",
            PatternKind::Random => "random",
            PatternKind::SparseRandom => "sparse-random",
        };
        f.write_str(name)
    }
}

fn check_dims(t: usize, tile: (usize, usize)) -> Result<()> {
    if t == 0 || tile.0 == 0 || tile.1 == 0 {
        return Err(CeError::InvalidConfig {
            context: format!("pattern dims t={t}, tile={tile:?} must be positive"),
        });
    }
    Ok(())
}

/// LONG EXPOSURE: all pixels exposed in all `t` slots.
///
/// # Errors
///
/// Returns [`CeError::InvalidConfig`] for zero extents.
pub fn long_exposure(t: usize, tile: (usize, usize)) -> Result<ExposureMask> {
    check_dims(t, tile)?;
    ExposureMask::new(Tensor::ones(&[t, tile.0, tile.1]))
}

/// SHORT EXPOSURE: all pixels exposed every `period`-th slot (the paper
/// uses every 8th frame with `t = 16`).
///
/// # Errors
///
/// Returns [`CeError::InvalidConfig`] for zero extents or a zero period.
pub fn short_exposure(t: usize, tile: (usize, usize), period: usize) -> Result<ExposureMask> {
    check_dims(t, tile)?;
    if period == 0 {
        return Err(CeError::InvalidConfig {
            context: "short exposure period must be positive".to_string(),
        });
    }
    let mut p = Tensor::zeros(&[t, tile.0, tile.1]);
    let (th, tw) = tile;
    let data = p.as_mut_slice();
    for f in (0..t).step_by(period) {
        for i in 0..th * tw {
            data[f * th * tw + i] = 1.0;
        }
    }
    ExposureMask::new(p)
}

/// RANDOM: each (pixel, slot) cell open independently with probability
/// `prob` (the paper uses 0.5).
///
/// # Errors
///
/// Returns [`CeError::InvalidConfig`] for zero extents or a probability
/// outside `[0, 1]`.
pub fn random<R: Rng + ?Sized>(
    t: usize,
    tile: (usize, usize),
    prob: f32,
    rng: &mut R,
) -> Result<ExposureMask> {
    check_dims(t, tile)?;
    if !(0.0..=1.0).contains(&prob) {
        return Err(CeError::InvalidConfig {
            context: format!("probability {prob} outside [0, 1]"),
        });
    }
    ExposureMask::new(Tensor::rand_bernoulli(rng, &[t, tile.0, tile.1], prob))
}

/// SPARSE RANDOM: each pixel exposed in exactly one uniformly random slot.
///
/// # Errors
///
/// Returns [`CeError::InvalidConfig`] for zero extents.
pub fn sparse_random<R: Rng + ?Sized>(
    t: usize,
    tile: (usize, usize),
    rng: &mut R,
) -> Result<ExposureMask> {
    check_dims(t, tile)?;
    let (th, tw) = tile;
    let mut p = Tensor::zeros(&[t, th, tw]);
    let data = p.as_mut_slice();
    for i in 0..th * tw {
        let slot = rng.random_range(0..t);
        data[slot * th * tw + i] = 1.0;
    }
    ExposureMask::new(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn long_exposure_is_all_open() {
        let m = long_exposure(16, (8, 8)).unwrap();
        assert_eq!(m.open_fraction(), 1.0);
        assert_eq!(m.exposure_counts().as_slice()[0], 16.0);
    }

    #[test]
    fn short_exposure_period_8() {
        let m = short_exposure(16, (4, 4), 8).unwrap();
        // Slots 0 and 8 open -> 2 exposures per pixel.
        assert_eq!(m.exposure_counts().as_slice(), &[2.0; 16]);
        assert!((m.open_fraction() - 2.0 / 16.0).abs() < 1e-6);
        assert!(short_exposure(16, (4, 4), 0).is_err());
    }

    #[test]
    fn random_rate_near_half() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = random(16, (16, 16), 0.5, &mut rng).unwrap();
        assert!((m.open_fraction() - 0.5).abs() < 0.05);
        assert!(random(16, (4, 4), 1.5, &mut rng).is_err());
    }

    #[test]
    fn sparse_random_exactly_one_slot_each() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = sparse_random(16, (8, 8), &mut rng).unwrap();
        assert_eq!(m.exposure_counts().as_slice(), &[1.0; 64]);
        assert!(m.covers_all_pixels());
        // Slots should vary across pixels (not everything in one slot).
        let per_slot = m
            .pattern()
            .sum_axis(1, false)
            .unwrap()
            .sum_axis(1, false)
            .unwrap();
        let occupied = per_slot.as_slice().iter().filter(|&&s| s > 0.0).count();
        assert!(occupied > 4, "only {occupied} slots used");
    }

    #[test]
    fn zero_dims_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(long_exposure(0, (4, 4)).is_err());
        assert!(short_exposure(16, (0, 4), 8).is_err());
        assert!(random(16, (4, 0), 0.5, &mut rng).is_err());
        assert!(sparse_random(0, (4, 4), &mut rng).is_err());
    }

    #[test]
    fn pattern_kind_names_unique() {
        let kinds = [
            PatternKind::Decorrelated,
            PatternKind::LongExposure,
            PatternKind::ShortExposure,
            PatternKind::Random,
            PatternKind::SparseRandom,
        ];
        let mut names: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
