//! Correlation statistics over coded tiles (paper Sec. III, Fig. 3).

use crate::{encode_batch, CeError, ExposureMask, Result};
use snappix_tensor::Tensor;

/// Harvests per-coded-pixel sample vectors from a batch of videos.
///
/// Each coded image is divided into tiles of `mask.tile()` pixels; every
/// tile of every image contributes one `P`-dimensional sample (`P` pixels
/// per tile). With `B` videos and `N^2` tiles per image this returns the
/// `[S, P]` matrix of `S = B * N^2` samples from which the Pearson
/// correlations of Eqn. 2 are estimated (Fig. 3).
///
/// # Errors
///
/// Fails when the videos do not match the mask (see
/// [`crate::encode_batch`]).
pub fn coded_tile_samples(videos: &Tensor, mask: &ExposureMask) -> Result<Tensor> {
    let coded = encode_batch(videos, mask)?;
    let (batch, h, w) = (coded.shape()[0], coded.shape()[1], coded.shape()[2]);
    let (th, tw) = mask.tile();
    let tiles_per_image = (h / th) * (w / tw);
    let mut all = Vec::with_capacity(batch);
    for b in 0..batch {
        let img = coded.index_axis(0, b)?;
        all.push(img.extract_patches(th, tw)?);
    }
    let refs: Vec<&Tensor> = all.iter().collect();
    let stacked = Tensor::concat(&refs, 0)?;
    debug_assert_eq!(stacked.shape()[0], batch * tiles_per_image);
    Ok(stacked)
}

/// Zero-mean contrast encoding (Fig. 3): removes each sample tile's DC
/// component so the mean pixel value of every tile is zero.
///
/// Proximal pixels share scene brightness; without removing this common
/// mode the decorrelation objective conflates inherent DC correlation with
/// exposure-induced redundancy and training can collapse to all-closed
/// masks (paper Sec. III). Input and output are `[s, p]` sample matrices.
///
/// # Errors
///
/// Fails for non-rank-2 input.
pub fn zero_mean_contrast(samples: &Tensor) -> Result<Tensor> {
    if samples.rank() != 2 {
        return Err(CeError::Tensor(snappix_tensor::TensorError::RankMismatch {
            expected: 2,
            got: samples.rank(),
        }));
    }
    let dc = samples.mean_axis(1, true)?;
    Ok(samples.sub(&dc)?)
}

/// Pearson correlation matrix between the `P` columns of an `[s, p]`
/// sample matrix. Zero-variance columns yield zero correlation (treated as
/// carrying no signal rather than poisoning the matrix with NaNs).
///
/// The `X^T X` Gram product runs through the tensor crate's
/// cache-blocked parallel matmul, and the `O(p^2)` std-normalization of
/// the row pairs is split row-wise across the same worker pool — results
/// are bit-for-bit identical at every thread count (see the parity
/// test).
///
/// # Errors
///
/// Fails for non-rank-2 input or fewer than two samples.
pub fn pearson_matrix(samples: &Tensor) -> Result<Tensor> {
    if samples.rank() != 2 {
        return Err(CeError::Tensor(snappix_tensor::TensorError::RankMismatch {
            expected: 2,
            got: samples.rank(),
        }));
    }
    let (s, p) = (samples.shape()[0], samples.shape()[1]);
    if s < 2 {
        return Err(CeError::InvalidConfig {
            context: format!("need at least 2 samples for correlation, got {s}"),
        });
    }
    let mu = samples.mean_axis(0, true)?;
    let centered = samples.sub(&mu)?;
    let var = centered.mul(&centered)?.mean_axis(0, false)?; // [p]
    let std: Vec<f32> = var.as_slice().iter().map(|&v| v.sqrt()).collect();
    // C = (X^T X) / s, then normalize by std_i * std_j.
    let cov = centered
        .transpose()?
        .matmul(&centered)?
        .scale(1.0 / s as f32);
    let mut c = cov;
    {
        let data = c.as_mut_slice();
        let std = &std;
        let normalize_row = |i: usize, row: &mut [f32]| {
            for (j, v) in row.iter_mut().enumerate() {
                let denom = std[i] * std[j];
                *v = if denom > 1e-12 {
                    (*v / denom).clamp(-1.0, 1.0)
                } else {
                    0.0
                };
            }
        };
        // The normalization is O(p^2) against the Gram product's
        // O(s * p^2): scale the worker count to the (small) work so only
        // a large matrix fans out, and never into tiny slices.
        let workers = snappix_tensor::parallel::workers_for(p * p, 1 << 14);
        snappix_tensor::parallel::with_threads(workers, || {
            snappix_tensor::parallel::par_chunks_mut(data, p, normalize_row)
        });
    }
    Ok(c)
}

/// Mean squared off-diagonal entry of a square matrix — the decorrelation
/// loss `L_Cor` of Eqn. 2 evaluated on a correlation matrix.
///
/// # Errors
///
/// Fails for non-square input or a 1x1 matrix (no off-diagonal).
pub fn mean_offdiag_sq(c: &Tensor) -> Result<f32> {
    offdiag_reduce(c, |x| x * x)
}

/// Mean absolute off-diagonal entry — the "Pearson correlation
/// coefficient" the paper reports per pattern in Fig. 6's legend.
///
/// # Errors
///
/// Fails for non-square input or a 1x1 matrix.
pub fn mean_offdiag_abs(c: &Tensor) -> Result<f32> {
    offdiag_reduce(c, f32::abs)
}

fn offdiag_reduce(c: &Tensor, f: impl Fn(f32) -> f32) -> Result<f32> {
    if c.rank() != 2 || c.shape()[0] != c.shape()[1] {
        return Err(CeError::Tensor(
            snappix_tensor::TensorError::IncompatibleShapes {
                context: format!("expected square matrix, got {:?}", c.shape()),
            },
        ));
    }
    let p = c.shape()[0];
    if p < 2 {
        return Err(CeError::InvalidConfig {
            context: "off-diagonal statistics need at least a 2x2 matrix".to_string(),
        });
    }
    let data = c.as_slice();
    let mut acc = 0.0f32;
    for i in 0..p {
        for j in 0..p {
            if i != j {
                acc += f(data[i * p + j]);
            }
        }
    }
    Ok(acc / (p * (p - 1)) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn tile_samples_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let videos = Tensor::rand_uniform(&mut rng, &[2, 4, 8, 8], 0.0, 1.0);
        let mask = patterns::random(4, (4, 4), 0.5, &mut rng).unwrap();
        let s = coded_tile_samples(&videos, &mask).unwrap();
        // 2 videos x 4 tiles each, 16 pixels per tile.
        assert_eq!(s.shape(), &[8, 16]);
    }

    #[test]
    fn zero_mean_contrast_zeroes_tile_dc() {
        let samples = Tensor::from_vec(vec![1.0, 3.0, 10.0, 20.0], &[2, 2]).unwrap();
        let z = zero_mean_contrast(&samples).unwrap();
        assert_eq!(z.as_slice(), &[-1.0, 1.0, -5.0, 5.0]);
        assert!(zero_mean_contrast(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn pearson_of_identical_columns_is_one() {
        let col = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1]).unwrap();
        let samples = Tensor::concat(&[&col, &col], 1).unwrap();
        let c = pearson_matrix(&samples).unwrap();
        assert!(c.approx_eq(&Tensor::ones(&[2, 2]), 1e-5));
    }

    #[test]
    fn pearson_of_anticorrelated_columns_is_minus_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1]).unwrap();
        let b = a.neg();
        let samples = Tensor::concat(&[&a, &b], 1).unwrap();
        let c = pearson_matrix(&samples).unwrap();
        assert!((c.get(&[0, 1]).unwrap() + 1.0).abs() < 1e-5);
    }

    #[test]
    fn pearson_of_independent_noise_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples = Tensor::rand_normal(&mut rng, &[2000, 3], 0.0, 1.0);
        let c = pearson_matrix(&samples).unwrap();
        assert!(mean_offdiag_abs(&c).unwrap() < 0.05);
        // Diagonal is exactly 1 for non-degenerate columns.
        for i in 0..3 {
            assert!((c.get(&[i, i]).unwrap() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_variance_column_yields_zero_not_nan() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]).unwrap();
        let constant = Tensor::full(&[3, 1], 5.0);
        let samples = Tensor::concat(&[&a, &constant], 1).unwrap();
        let c = pearson_matrix(&samples).unwrap();
        assert_eq!(c.get(&[0, 1]).unwrap(), 0.0);
        assert!(c.as_slice().iter().all(|v| v.is_finite()));
    }

    /// The parallel Pearson path (blocked matmul Gram product + row-split
    /// normalization) must match the single-thread run bit-for-bit across
    /// thread counts, including > p workers, on odd shapes.
    #[test]
    fn pearson_parallel_matches_serial_bit_for_bit() {
        use snappix_tensor::parallel::with_threads;
        let mut rng = StdRng::seed_from_u64(21);
        // (300, 64) drives the Gram matmul over the slab split; (16, 256)
        // drives the row-split normalization; (37, 5) stays fully serial.
        for (s, p) in [(37usize, 5usize), (300, 64), (16, 256)] {
            let samples = Tensor::rand_normal(&mut rng, &[s, p], 0.0, 1.0);
            let reference = with_threads(1, || pearson_matrix(&samples).unwrap());
            for threads in [2usize, 3, p + 9] {
                let c = with_threads(threads, || pearson_matrix(&samples).unwrap());
                assert_eq!(
                    c.as_slice(),
                    reference.as_slice(),
                    "{s}x{p} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn pearson_validation() {
        assert!(pearson_matrix(&Tensor::zeros(&[5])).is_err());
        assert!(pearson_matrix(&Tensor::zeros(&[1, 3])).is_err());
    }

    #[test]
    fn offdiag_statistics() {
        let c = Tensor::from_vec(vec![1.0, 0.5, -0.5, 1.0], &[2, 2]).unwrap();
        assert!((mean_offdiag_sq(&c).unwrap() - 0.25).abs() < 1e-6);
        assert!((mean_offdiag_abs(&c).unwrap() - 0.5).abs() < 1e-6);
        assert!(mean_offdiag_sq(&Tensor::zeros(&[2, 3])).is_err());
        assert!(mean_offdiag_sq(&Tensor::ones(&[1, 1])).is_err());
    }

    #[test]
    fn long_exposure_tiles_are_highly_correlated() {
        // On smooth scenes, long exposure preserves the DC-heavy local
        // structure: after contrast encoding the residual correlation is
        // still substantial relative to white noise.
        use snappix_video::{ssv2_like, Dataset};
        let data = Dataset::new(ssv2_like(8, 16, 16), 12);
        let mut clips = Vec::new();
        for i in 0..data.len() {
            clips.push(data.sample(i).video.into_frames());
        }
        let refs: Vec<&Tensor> = clips.iter().collect();
        let videos = Tensor::stack(&refs, 0).unwrap();
        let mask = patterns::long_exposure(8, (4, 4)).unwrap();
        let samples = coded_tile_samples(&videos, &mask).unwrap();
        let z = zero_mean_contrast(&samples).unwrap();
        let c = pearson_matrix(&z).unwrap();
        let rho = mean_offdiag_abs(&c).unwrap();
        assert!(rho > 0.1, "long exposure should stay correlated, got {rho}");
    }
}
