//! The coded-exposure integration (paper Eqn. 1).

use crate::{CeError, ExposureMask, Result};
use snappix_tensor::Tensor;

/// Encodes a `[t, h, w]` video into one `[h, w]` coded image (Eqn. 1):
/// `X(i, j) = sum_t M(i, j, t) * Y(i, j, t)`.
///
/// This is the *algorithmic reference implementation* of what the sensor
/// hardware in `snappix-sensor` does physically; the integration tests
/// assert the two agree bit-for-bit in the noiseless case.
///
/// # Errors
///
/// Returns [`CeError::InvalidMask`] when the mask's slot count differs from
/// the video's frame count or the tile does not divide the frame.
///
/// # Examples
///
/// ```
/// use snappix_ce::{encode, patterns};
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_ce::CeError> {
/// let video = Tensor::full(&[4, 8, 8], 0.25);
/// let mask = patterns::long_exposure(4, (4, 4))?;
/// let coded = encode(&video, &mask)?;
/// assert_eq!(coded.get(&[0, 0]).unwrap(), 1.0); // 4 slots x 0.25
/// # Ok(())
/// # }
/// ```
pub fn encode(video: &Tensor, mask: &ExposureMask) -> Result<Tensor> {
    if video.rank() != 3 {
        return Err(CeError::Tensor(snappix_tensor::TensorError::RankMismatch {
            expected: 3,
            got: video.rank(),
        }));
    }
    let (t, h, w) = (video.shape()[0], video.shape()[1], video.shape()[2]);
    if t != mask.num_slots() {
        return Err(CeError::InvalidMask {
            context: format!(
                "mask has {} slots but video has {t} frames",
                mask.num_slots()
            ),
        });
    }
    let full = mask.expand_to(h, w)?;
    let mut out = Tensor::zeros(&[h, w]);
    let (vs, ms) = (video.as_slice(), full.as_slice());
    let os = out.as_mut_slice();
    for f in 0..t {
        let base = f * h * w;
        for i in 0..h * w {
            os[i] += ms[base + i] * vs[base + i];
        }
    }
    Ok(out)
}

/// Like [`encode`] but divides every pixel by its exposure count, the
/// normalization the paper applies before feeding the ViT (Sec. IV).
/// Pixels never exposed are left at zero.
///
/// # Errors
///
/// Same conditions as [`encode`].
pub fn encode_normalized(video: &Tensor, mask: &ExposureMask) -> Result<Tensor> {
    let coded = encode(video, mask)?;
    Ok(apply_normalization(&coded, mask))
}

/// Encodes a `[batch, t, h, w]` batch into `[batch, h, w]` coded images.
///
/// # Errors
///
/// Same conditions as [`encode`], plus rank validation of the batch.
pub fn encode_batch(videos: &Tensor, mask: &ExposureMask) -> Result<Tensor> {
    if videos.rank() != 4 {
        return Err(CeError::Tensor(snappix_tensor::TensorError::RankMismatch {
            expected: 4,
            got: videos.rank(),
        }));
    }
    let batch = videos.shape()[0];
    let mut coded = Vec::with_capacity(batch);
    for b in 0..batch {
        coded.push(encode(&videos.index_axis(0, b)?, mask)?);
    }
    let refs: Vec<&Tensor> = coded.iter().collect();
    Ok(Tensor::stack(&refs, 0)?)
}

/// Batched [`encode_normalized`].
///
/// # Errors
///
/// Same conditions as [`encode_batch`].
pub fn encode_batch_normalized(videos: &Tensor, mask: &ExposureMask) -> Result<Tensor> {
    let coded = encode_batch(videos, mask)?;
    let batch = coded.shape()[0];
    let mut out = Vec::with_capacity(batch);
    for b in 0..batch {
        out.push(apply_normalization(&coded.index_axis(0, b)?, mask));
    }
    let refs: Vec<&Tensor> = out.iter().collect();
    Ok(Tensor::stack(&refs, 0)?)
}

/// Divides a raw `[h, w]` coded image by each pixel's exposure count (the
/// paper's pre-ViT normalization); unexposed pixels stay zero.
///
/// Useful when the coded image came from the hardware simulator rather
/// than [`encode`], e.g. a digitized sensor readout.
pub fn normalize_coded(coded: &Tensor, mask: &ExposureMask) -> Tensor {
    apply_normalization(coded, mask)
}

fn apply_normalization(coded: &Tensor, mask: &ExposureMask) -> Tensor {
    let (h, w) = (coded.shape()[0], coded.shape()[1]);
    let (th, tw) = mask.tile();
    let counts = mask.exposure_counts();
    let cs = counts.as_slice();
    let mut out = coded.clone();
    let os = out.as_mut_slice();
    for y in 0..h {
        for x in 0..w {
            let c = cs[(y % th) * tw + (x % tw)];
            if c > 0.0 {
                os[y * w + x] /= c;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn long_exposure_sums_all_frames() {
        let video = Tensor::arange(2 * 2 * 2).reshape(&[2, 2, 2]).unwrap();
        let mask = patterns::long_exposure(2, (2, 2)).unwrap();
        let coded = encode(&video, &mask).unwrap();
        // pixel (0,0): frames 0 and 4.
        assert_eq!(coded.as_slice(), &[4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn closed_mask_gives_zero_image() {
        let video = Tensor::ones(&[2, 4, 4]);
        let mut p = Tensor::zeros(&[2, 2, 2]);
        p.set(&[0, 0, 0], 0.0).unwrap();
        let mask = ExposureMask::new(p).unwrap();
        let coded = encode(&video, &mask).unwrap();
        assert_eq!(coded.sum(), 0.0);
    }

    #[test]
    fn mask_selects_frames_per_pixel() {
        // 2 slots, 1x2 tile: pixel col even -> slot 0, col odd -> slot 1.
        let mut p = Tensor::zeros(&[2, 1, 2]);
        p.set(&[0, 0, 0], 1.0).unwrap();
        p.set(&[1, 0, 1], 1.0).unwrap();
        let mask = ExposureMask::new(p).unwrap();
        let f0 = Tensor::full(&[1, 2, 4], 10.0);
        let f1 = Tensor::full(&[1, 2, 4], 20.0);
        let video = Tensor::concat(&[&f0, &f1], 0).unwrap();
        let coded = encode(&video, &mask).unwrap();
        assert_eq!(
            coded.as_slice(),
            &[10.0, 20.0, 10.0, 20.0, 10.0, 20.0, 10.0, 20.0]
        );
    }

    #[test]
    fn compression_is_t_to_one() {
        let mut rng = StdRng::seed_from_u64(0);
        let video = Tensor::rand_uniform(&mut rng, &[16, 16, 16], 0.0, 1.0);
        let mask = patterns::random(16, (8, 8), 0.5, &mut rng).unwrap();
        let coded = encode(&video, &mask).unwrap();
        assert_eq!(coded.len() * 16, video.len());
    }

    #[test]
    fn normalization_divides_by_exposure_count() {
        let video = Tensor::full(&[4, 4, 4], 1.0);
        let mask = patterns::long_exposure(4, (2, 2)).unwrap();
        let n = encode_normalized(&video, &mask).unwrap();
        assert!(n.approx_eq(&Tensor::ones(&[4, 4]), 1e-6));
    }

    #[test]
    fn normalization_leaves_unexposed_pixels_at_zero() {
        let video = Tensor::full(&[2, 2, 2], 1.0);
        let mut p = Tensor::zeros(&[2, 2, 2]);
        p.set(&[0, 0, 0], 1.0).unwrap(); // only pixel (0,0), slot 0
        let mask = ExposureMask::new(p).unwrap();
        let n = encode_normalized(&video, &mask).unwrap();
        assert_eq!(n.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(n.get(&[1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn batch_encode_matches_singles() {
        let mut rng = StdRng::seed_from_u64(1);
        let videos = Tensor::rand_uniform(&mut rng, &[3, 4, 8, 8], 0.0, 1.0);
        let mask = patterns::random(4, (4, 4), 0.5, &mut rng).unwrap();
        let batch = encode_batch(&videos, &mask).unwrap();
        assert_eq!(batch.shape(), &[3, 8, 8]);
        for b in 0..3 {
            let single = encode(&videos.index_axis(0, b).unwrap(), &mask).unwrap();
            assert!(batch.index_axis(0, b).unwrap().approx_eq(&single, 1e-6));
        }
        let nbatch = encode_batch_normalized(&videos, &mask).unwrap();
        assert_eq!(nbatch.shape(), &[3, 8, 8]);
    }

    #[test]
    fn validation_errors() {
        let mask = patterns::long_exposure(4, (2, 2)).unwrap();
        assert!(encode(&Tensor::zeros(&[3, 4, 4]), &mask).is_err()); // t mismatch
        assert!(encode(&Tensor::zeros(&[4, 5, 4]), &mask).is_err()); // tile mismatch
        assert!(encode(&Tensor::zeros(&[4, 4]), &mask).is_err()); // rank
        assert!(encode_batch(&Tensor::zeros(&[4, 4, 4]), &mask).is_err());
    }
}
