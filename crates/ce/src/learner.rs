//! Decorrelation-based mask learning (paper Sec. III).
//!
//! The exposure pattern is a learnable logit tensor `[t, th, tw]`; the
//! forward pass binarizes it with a straight-through estimator, applies the
//! coded-exposure integration to a batch of videos, harvests per-tile
//! sample vectors, contrast-encodes them, and minimizes the mean squared
//! off-diagonal Pearson correlation (Eqn. 2). Everything is task-agnostic:
//! no labels and no downstream model appear in the loss.

use crate::{mean_offdiag_abs, CeError, ExposureMask, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snappix_nn::{Adam, Optimizer, ParamStore, Session};
use snappix_tensor::Tensor;
use snappix_video::Dataset;

/// Configuration of the decorrelation trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct DecorrelationConfig {
    /// Number of exposure slots `t` (the paper uses 16).
    pub slots: usize,
    /// Tile extents `(th, tw)` (the paper uses the ViT patch size, 8x8).
    pub tile: (usize, usize),
    /// Adam learning rate for the mask logits.
    pub lr: f32,
    /// Videos per gradient step.
    pub batch_size: usize,
    /// Variance epsilon inside the Pearson normalization.
    pub eps: f32,
    /// Optional penalty weight pulling the open fraction towards 0.5;
    /// `0.0` reproduces the paper's pure decorrelation loss.
    pub coverage_weight: f32,
    /// Apply zero-mean contrast encoding before the correlation (paper
    /// Sec. III / Fig. 3). Disabling this reproduces the failure mode the
    /// paper describes: the inherent DC correlation of proximal pixels
    /// dominates the loss and training degenerates towards closing
    /// exposures.
    pub zero_mean: bool,
    /// Seed for logit initialization and batch order.
    pub seed: u64,
}

impl Default for DecorrelationConfig {
    fn default() -> Self {
        DecorrelationConfig {
            slots: 16,
            tile: (8, 8),
            // Aggressive for Adam, but the parameters are *logits behind a
            // straight-through binarization*: only their signs matter, and
            // the short step budgets used across this reproduction (tens of
            // steps, not thousands) need sign flips to happen quickly.
            // Empirically 0.05 leaves the mask half-converged — measurably
            // worse downstream than its random init — while 0.2 reaches the
            // sparse decorrelated regime the paper describes.
            lr: 0.2,
            batch_size: 8,
            eps: 1e-6,
            coverage_weight: 0.0,
            zero_mean: true,
            seed: 42,
        }
    }
}

/// Result of mask training.
#[derive(Debug, Clone)]
pub struct TrainedMask {
    /// The learned binary exposure mask.
    pub mask: ExposureMask,
    /// Decorrelation loss after each step.
    pub loss_history: Vec<f32>,
    /// Mean absolute off-diagonal Pearson correlation of the final mask on
    /// the last training batch (the number the paper quotes in Fig. 6).
    pub final_correlation: f32,
}

/// Learns a tile-repetitive exposure mask by minimizing pixel correlation.
///
/// # Examples
///
/// ```no_run
/// use snappix_ce::{DecorrelationConfig, DecorrelationTrainer};
/// use snappix_video::{ssv2_like, Dataset};
///
/// # fn main() -> Result<(), snappix_ce::CeError> {
/// let data = Dataset::new(ssv2_like(16, 32, 32), 64);
/// let mut trainer = DecorrelationTrainer::new(DecorrelationConfig::default())?;
/// let trained = trainer.train(&data, 20)?;
/// assert!(trained.mask.open_fraction() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DecorrelationTrainer {
    config: DecorrelationConfig,
    store: ParamStore,
    logits: snappix_nn::ParamId,
    optimizer: Adam,
    rng: StdRng,
}

impl DecorrelationTrainer {
    /// Creates a trainer with freshly initialized logits (~50% open).
    ///
    /// # Errors
    ///
    /// Returns [`CeError::InvalidConfig`] for zero extents or a
    /// non-positive batch size.
    pub fn new(config: DecorrelationConfig) -> Result<Self> {
        if config.slots == 0 || config.tile.0 == 0 || config.tile.1 == 0 {
            return Err(CeError::InvalidConfig {
                context: format!(
                    "slots {} and tile {:?} must be positive",
                    config.slots, config.tile
                ),
            });
        }
        if config.batch_size == 0 {
            return Err(CeError::InvalidConfig {
                context: "batch size must be positive".to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let init = Tensor::rand_uniform(
            &mut rng,
            &[config.slots, config.tile.0, config.tile.1],
            -0.5,
            0.5,
        );
        let mut store = ParamStore::new();
        let logits = store.register("ce.logits", init);
        let optimizer = Adam::new(config.lr);
        Ok(DecorrelationTrainer {
            config,
            store,
            logits,
            optimizer,
            rng,
        })
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &DecorrelationConfig {
        &self.config
    }

    /// The current binary mask implied by the logits.
    pub fn current_mask(&self) -> Result<ExposureMask> {
        let binary = self
            .store
            .value(self.logits)
            .map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        ExposureMask::new(binary)
    }

    /// Runs one gradient step on a `[batch, t, h, w]` video tensor and
    /// returns the decorrelation loss before the update.
    ///
    /// # Errors
    ///
    /// Fails when the video tensor does not match the configuration (wrong
    /// frame count, tile not dividing the frame) or a graph op fails.
    pub fn step(&mut self, videos: &Tensor) -> Result<f32> {
        let shape = videos.shape().to_vec();
        if shape.len() != 4 || shape[1] != self.config.slots {
            return Err(CeError::InvalidConfig {
                context: format!(
                    "expected [batch, {}, h, w] videos, got {shape:?}",
                    self.config.slots
                ),
            });
        }
        let (h, w) = (shape[2], shape[3]);
        let (th, tw) = self.config.tile;
        if h % th != 0 || w % tw != 0 {
            return Err(CeError::InvalidMask {
                context: format!("tile {th}x{tw} does not divide frame {h}x{w}"),
            });
        }
        let (gh, gw) = (h / th, w / tw);
        let p = th * tw;

        let mut sess = Session::new(&self.store);
        let logits = sess.param(self.logits);
        let mask = sess.graph.binarize_ste(logits, 0.0)?;
        let tiled = sess.graph.tile_spatial(mask, gh, gw)?;
        let tiled4 = sess.graph.reshape(tiled, &[1, self.config.slots, h, w])?;
        let vids = sess.input(videos.clone());
        let exposed = sess.graph.mul(tiled4, vids)?;
        let coded = sess.graph.sum_axis(exposed, 1, false)?; // [b, h, w]
        let patches = sess.graph.extract_patches(coded, th, tw)?; // [b, n2, p]
        let samples = sess.graph.reshape(patches, &[shape[0] * gh * gw, p])?;

        // Zero-mean contrast encoding: remove per-tile DC (skipped in the
        // ablation configuration).
        let contrast = if self.config.zero_mean {
            let dc = sess.graph.mean_axis(samples, 1, true)?;
            sess.graph.sub(samples, dc)?
        } else {
            samples
        };

        // Pearson normalization across samples.
        let mu = sess.graph.mean_axis(contrast, 0, true)?;
        let centered = sess.graph.sub(contrast, mu)?;
        let sq = sess.graph.mul(centered, centered)?;
        let var = sess.graph.mean_axis(sq, 0, true)?;
        let var_eps = sess.graph.add_scalar(var, self.config.eps)?;
        let inv_std = sess.graph.powf(var_eps, -0.5)?;
        let normed = sess.graph.mul(centered, inv_std)?;

        // Correlation matrix and Eqn. 2.
        let normed_t = sess.graph.transpose(normed)?;
        let corr = sess.graph.matmul(normed_t, normed)?;
        let s = shape[0] * gh * gw;
        let corr = sess.graph.scale(corr, 1.0 / s as f32)?;
        let offdiag = {
            let mut m = Tensor::ones(&[p, p]);
            for i in 0..p {
                m.set(&[i, i], 0.0).expect("diagonal index in range");
            }
            sess.input(m)
        };
        let masked = sess.graph.mul(corr, offdiag)?;
        let sq_corr = sess.graph.mul(masked, masked)?;
        let total = sess.graph.sum(sq_corr)?;
        let mut loss = sess.graph.scale(total, 1.0 / (p * (p - 1)) as f32)?;

        if self.config.coverage_weight > 0.0 {
            // Optional regularizer: (mean_open - 0.5)^2.
            let open = sess.graph.mean(mask)?;
            let centered_open = sess.graph.add_scalar(open, -0.5)?;
            let penalty = sess.graph.mul(centered_open, centered_open)?;
            let scaled = sess.graph.scale(penalty, self.config.coverage_weight)?;
            loss = sess.graph.add(loss, scaled)?;
        }

        let loss_value = sess.graph.value(loss).item().map_err(CeError::from)?;
        let grads = sess.backward(loss)?;
        self.optimizer.step(&mut self.store, &grads)?;
        Ok(loss_value)
    }

    /// Trains for `steps` gradient steps, drawing batches from `dataset`.
    ///
    /// # Errors
    ///
    /// Fails when the dataset clips do not match the configuration, or on
    /// an empty dataset.
    pub fn train(&mut self, dataset: &Dataset, steps: usize) -> Result<TrainedMask> {
        if dataset.is_empty() {
            return Err(CeError::InvalidConfig {
                context: "cannot train on an empty dataset".to_string(),
            });
        }
        use rand::Rng;
        let mut history = Vec::with_capacity(steps);
        let mut last_batch: Option<Tensor> = None;
        for _ in 0..steps {
            let start = self.rng.random_range(0..dataset.len());
            let batch = dataset.batch(start, self.config.batch_size);
            history.push(self.step(&batch.videos)?);
            last_batch = Some(batch.videos);
        }
        let mask = self.current_mask()?;
        let final_correlation = match last_batch {
            Some(videos) => {
                let samples = crate::coded_tile_samples(&videos, &mask)?;
                let contrast = crate::zero_mean_contrast(&samples)?;
                let corr = crate::pearson_matrix(&contrast)?;
                mean_offdiag_abs(&corr)?
            }
            None => f32::NAN,
        };
        Ok(TrainedMask {
            mask,
            loss_history: history,
            final_correlation,
        })
    }
}

/// Measures the mean absolute off-diagonal Pearson correlation of `mask`
/// on clips drawn from `dataset` — the per-pattern numbers in Fig. 6's
/// legend.
///
/// # Errors
///
/// Fails when the dataset clips do not match the mask or the dataset is
/// empty.
pub fn measure_pattern_correlation(
    dataset: &Dataset,
    mask: &ExposureMask,
    num_clips: usize,
) -> Result<f32> {
    if dataset.is_empty() || num_clips == 0 {
        return Err(CeError::InvalidConfig {
            context: "need a non-empty dataset and at least one clip".to_string(),
        });
    }
    let batch = dataset.batch(0, num_clips.min(dataset.len()));
    let samples = crate::coded_tile_samples(&batch.videos, mask)?;
    let contrast = crate::zero_mean_contrast(&samples)?;
    let corr = crate::pearson_matrix(&contrast)?;
    mean_offdiag_abs(&corr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use snappix_video::ssv2_like;

    fn small_config() -> DecorrelationConfig {
        DecorrelationConfig {
            slots: 8,
            tile: (4, 4),
            lr: 0.05,
            batch_size: 4,
            eps: 1e-6,
            coverage_weight: 0.0,
            zero_mean: true,
            seed: 7,
        }
    }

    #[test]
    fn zero_mean_ablation_degrades_exposure_coverage() {
        // The paper (Sec. III) motivates zero-mean contrast encoding as a
        // collapse guard: without it the inherent DC correlation pushes
        // the optimizer towards closing exposures. Verify the ablation
        // keeps strictly fewer exposures open than the full objective.
        let data = Dataset::new(ssv2_like(8, 16, 16), 32);
        let train = |zero_mean: bool| {
            let mut cfg = small_config();
            cfg.zero_mean = zero_mean;
            cfg.lr = 0.1;
            let mut trainer = DecorrelationTrainer::new(cfg).unwrap();
            trainer.train(&data, 60).unwrap().mask.open_fraction()
        };
        let with_contrast = train(true);
        let without_contrast = train(false);
        assert!(
            without_contrast < with_contrast,
            "without zero-mean encoding the mask should close exposures: \
             {without_contrast} vs {with_contrast}"
        );
    }

    #[test]
    fn construction_validates() {
        let mut bad = small_config();
        bad.slots = 0;
        assert!(DecorrelationTrainer::new(bad).is_err());
        let mut bad = small_config();
        bad.batch_size = 0;
        assert!(DecorrelationTrainer::new(bad).is_err());
    }

    #[test]
    fn initial_mask_is_valid_and_roughly_half_open() {
        let trainer = DecorrelationTrainer::new(small_config()).unwrap();
        let mask = trainer.current_mask().unwrap();
        assert_eq!(mask.num_slots(), 8);
        assert_eq!(mask.tile(), (4, 4));
        let frac = mask.open_fraction();
        assert!((0.25..=0.75).contains(&frac), "open fraction {frac}");
    }

    #[test]
    fn step_validates_input() {
        let mut trainer = DecorrelationTrainer::new(small_config()).unwrap();
        assert!(trainer.step(&Tensor::zeros(&[2, 4, 8, 8])).is_err()); // wrong t
        assert!(trainer.step(&Tensor::zeros(&[2, 8, 9, 8])).is_err()); // tile mismatch
        assert!(trainer.step(&Tensor::zeros(&[8, 8, 8])).is_err()); // rank
    }

    #[test]
    fn training_reduces_correlation_below_random() {
        let data = Dataset::new(ssv2_like(8, 16, 16), 32);
        let mut trainer = DecorrelationTrainer::new(small_config()).unwrap();
        let trained = trainer.train(&data, 25).unwrap();
        assert_eq!(trained.loss_history.len(), 25);
        assert!(trained.mask.open_fraction() > 0.05, "mask collapsed");

        // Compare against the random pattern on held-out clips.
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let random = patterns::random(8, (4, 4), 0.5, &mut rng).unwrap();
        let eval = Dataset::new(ssv2_like(8, 16, 16), 16);
        let learned_rho = measure_pattern_correlation(&eval, &trained.mask, 16).unwrap();
        let random_rho = measure_pattern_correlation(&eval, &random, 16).unwrap();
        assert!(
            learned_rho < random_rho,
            "decorrelated {learned_rho} must beat random {random_rho}"
        );
    }

    #[test]
    fn training_on_empty_dataset_errors() {
        let data = Dataset::new(ssv2_like(8, 16, 16), 0);
        let mut trainer = DecorrelationTrainer::new(small_config()).unwrap();
        assert!(trainer.train(&data, 1).is_err());
    }

    #[test]
    fn measure_correlation_orders_known_patterns() {
        // The paper's Fig. 6 legend orders: long (0.38) > random (0.29) >
        // sparse random (0.23). Verify the qualitative ordering that long
        // exposure is the most correlated.
        let data = Dataset::new(ssv2_like(8, 16, 16), 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let long = patterns::long_exposure(8, (4, 4)).unwrap();
        let rand_mask = patterns::random(8, (4, 4), 0.5, &mut rng).unwrap();
        let rho_long = measure_pattern_correlation(&data, &long, 16).unwrap();
        let rho_rand = measure_pattern_correlation(&data, &rand_mask, 16).unwrap();
        assert!(
            rho_long > rho_rand,
            "long {rho_long} should exceed random {rho_rand}"
        );
    }
}
