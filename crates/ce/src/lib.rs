//! Coded-exposure (CE) compression and decorrelation-based mask learning —
//! the primary contribution of the SnapPix paper (Secs. II-B and III).
//!
//! Coded exposure compresses a `T`-frame video into a *single* coded image
//! by selectively exposing each pixel in a subset of the `T` exposure
//! slots and integrating (Eqn. 1):
//!
//! ```text
//! X(i, j) = sum_t M(i, j, t) * Y(i, j, t)
//! ```
//!
//! SnapPix's innovations, all implemented here:
//!
//! * **Tile-repetitive masks** ([`ExposureMask`]): the binary pattern `M`
//!   repeats across `th x tw` tiles, bounding the pixel non-uniformity the
//!   downstream model must absorb (Sec. IV).
//! * **Task-agnostic pattern learning by decorrelation**
//!   ([`DecorrelationTrainer`]): the mask is trained to minimize the mean
//!   squared Pearson correlation between coded pixels within a tile
//!   (Eqn. 2), with zero-mean contrast encoding and a straight-through
//!   estimator through the binarization — no downstream task in the loop.
//! * **Baseline patterns** ([`patterns`]): long, short, random and
//!   sparse-random exposure, reproduced from the paper's Fig. 6
//!   comparison.
//!
//! # Examples
//!
//! ```
//! use snappix_ce::{patterns, encode};
//! use snappix_video::{ssv2_like, Dataset};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), snappix_ce::CeError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mask = patterns::random(16, (8, 8), 0.5, &mut rng)?;
//! let data = Dataset::new(ssv2_like(16, 32, 32), 1);
//! let coded = encode(data.sample(0).video.frames(), &mask)?;
//! assert_eq!(coded.shape(), &[32, 32]); // 16 frames -> 1 image
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod error;
mod io;
mod learner;
mod mask;
pub mod patterns;
mod sense;
mod stats;

pub use encode::{
    encode, encode_batch, encode_batch_normalized, encode_normalized, normalize_coded,
};
pub use error::CeError;
pub use io::{load_mask, mask_from_str, mask_to_string, save_mask};
pub use learner::{
    measure_pattern_correlation, DecorrelationConfig, DecorrelationTrainer, TrainedMask,
};
pub use mask::ExposureMask;
pub use patterns::PatternKind;
pub use sense::{AlgorithmicEncoder, Sense};
pub use stats::{
    coded_tile_samples, mean_offdiag_abs, mean_offdiag_sq, pearson_matrix, zero_mean_contrast,
};

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, CeError>;
