use snappix_autograd::AutogradError;
use snappix_tensor::TensorError;
use std::fmt;

/// Error type for coded-exposure operations.
#[derive(Debug)]
pub enum CeError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An autograd operation failed during mask learning.
    Autograd(AutogradError),
    /// A neural-network utility (optimizer) failed during mask learning.
    Nn(snappix_nn::NnError),
    /// A mask was structurally invalid (non-binary, wrong rank, zero
    /// extents, or tile size not dividing the frame).
    InvalidMask {
        /// Human-readable description of the problem.
        context: String,
    },
    /// Configuration values were out of range.
    InvalidConfig {
        /// Human-readable description of the problem.
        context: String,
    },
}

impl fmt::Display for CeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CeError::Tensor(e) => write!(f, "tensor error: {e}"),
            CeError::Autograd(e) => write!(f, "autograd error: {e}"),
            CeError::Nn(e) => write!(f, "nn error: {e}"),
            CeError::InvalidMask { context } => write!(f, "invalid exposure mask: {context}"),
            CeError::InvalidConfig { context } => write!(f, "invalid configuration: {context}"),
        }
    }
}

impl std::error::Error for CeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CeError::Tensor(e) => Some(e),
            CeError::Autograd(e) => Some(e),
            CeError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CeError {
    fn from(e: TensorError) -> Self {
        CeError::Tensor(e)
    }
}

impl From<AutogradError> for CeError {
    fn from(e: AutogradError) -> Self {
        CeError::Autograd(e)
    }
}

impl From<snappix_nn::NnError> for CeError {
    fn from(e: snappix_nn::NnError) -> Self {
        CeError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: CeError = TensorError::InvalidArgument {
            context: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("tensor"));
        assert!(std::error::Error::source(&e).is_some());
        let m = CeError::InvalidMask {
            context: "not binary".into(),
        };
        assert!(m.to_string().contains("not binary"));
        assert!(std::error::Error::source(&m).is_none());
    }
}
