//! Exposure-mask persistence.
//!
//! A learned mask is the artifact that gets programmed into the sensor's
//! pattern controller, so it needs a stable on-disk form. The format is a
//! small line-oriented text file (easy to diff, easy to parse from
//! firmware tooling):
//!
//! ```text
//! snappix-mask v1
//! slots 16
//! tile 8 8
//! # slot 0
//! 10110101
//! ...
//! ```

use crate::{CeError, ExposureMask, Result};
use snappix_tensor::Tensor;
use std::io::{BufRead, Write};
use std::path::Path;

/// Serializes `mask` into its text form.
pub fn mask_to_string(mask: &ExposureMask) -> String {
    let (th, tw) = mask.tile();
    let t = mask.num_slots();
    let p = mask.pattern().as_slice();
    let mut out = String::new();
    out.push_str("snappix-mask v1\n");
    out.push_str(&format!("slots {t}\n"));
    out.push_str(&format!("tile {th} {tw}\n"));
    for slot in 0..t {
        out.push_str(&format!("# slot {slot}\n"));
        for y in 0..th {
            for x in 0..tw {
                out.push(if p[slot * th * tw + y * tw + x] > 0.5 {
                    '1'
                } else {
                    '0'
                });
            }
            out.push('\n');
        }
    }
    out
}

/// Parses a mask from its text form.
///
/// # Errors
///
/// Returns [`CeError::InvalidMask`] for malformed headers, wrong row
/// counts/widths, or characters other than `0`/`1`.
pub fn mask_from_str(text: &str) -> Result<ExposureMask> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().unwrap_or("");
    if header != "snappix-mask v1" {
        return Err(CeError::InvalidMask {
            context: format!("bad header {header:?}"),
        });
    }
    let slots = parse_kv(lines.next(), "slots")?;
    let tile_line = lines.next().unwrap_or("");
    let mut tile_parts = tile_line.split_whitespace();
    if tile_parts.next() != Some("tile") {
        return Err(CeError::InvalidMask {
            context: format!("expected tile line, got {tile_line:?}"),
        });
    }
    let th: usize = parse_usize(tile_parts.next(), "tile height")?;
    let tw: usize = parse_usize(tile_parts.next(), "tile width")?;

    let mut data = Vec::with_capacity(slots * th * tw);
    for _slot in 0..slots {
        for _y in 0..th {
            let row = lines.next().ok_or_else(|| CeError::InvalidMask {
                context: "file ends before all rows are read".to_string(),
            })?;
            if row.len() != tw {
                return Err(CeError::InvalidMask {
                    context: format!("row {row:?} is not {tw} bits wide"),
                });
            }
            for ch in row.chars() {
                data.push(match ch {
                    '0' => 0.0,
                    '1' => 1.0,
                    other => {
                        return Err(CeError::InvalidMask {
                            context: format!("invalid bit character {other:?}"),
                        })
                    }
                });
            }
        }
    }
    if lines.next().is_some() {
        return Err(CeError::InvalidMask {
            context: "trailing content after the last slot".to_string(),
        });
    }
    ExposureMask::new(Tensor::from_vec(data, &[slots, th, tw])?)
}

/// Writes `mask` to `path` in the text format.
///
/// # Errors
///
/// Returns [`CeError::InvalidConfig`] wrapping the I/O failure message.
pub fn save_mask(mask: &ExposureMask, path: impl AsRef<Path>) -> Result<()> {
    let mut file = std::fs::File::create(path).map_err(io_err)?;
    file.write_all(mask_to_string(mask).as_bytes())
        .map_err(io_err)
}

/// Reads a mask from `path`.
///
/// # Errors
///
/// Returns [`CeError::InvalidMask`] for malformed content or
/// [`CeError::InvalidConfig`] for I/O failures.
pub fn load_mask(path: impl AsRef<Path>) -> Result<ExposureMask> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut text = String::new();
    for line in std::io::BufReader::new(file).lines() {
        text.push_str(&line.map_err(io_err)?);
        text.push('\n');
    }
    mask_from_str(&text)
}

fn io_err(e: std::io::Error) -> CeError {
    CeError::InvalidConfig {
        context: format!("mask i/o failed: {e}"),
    }
}

fn parse_kv(line: Option<&str>, key: &str) -> Result<usize> {
    let line = line.unwrap_or("");
    let mut parts = line.split_whitespace();
    if parts.next() != Some(key) {
        return Err(CeError::InvalidMask {
            context: format!("expected {key} line, got {line:?}"),
        });
    }
    parse_usize(parts.next(), key)
}

fn parse_usize(token: Option<&str>, what: &str) -> Result<usize> {
    token
        .and_then(|t| t.parse().ok())
        .filter(|&v: &usize| v > 0)
        .ok_or_else(|| CeError::InvalidMask {
            context: format!("missing or invalid {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn round_trip_through_string() {
        let mut rng = StdRng::seed_from_u64(0);
        let mask = patterns::random(4, (3, 5), 0.5, &mut rng).unwrap();
        let text = mask_to_string(&mask);
        let back = mask_from_str(&text).unwrap();
        assert_eq!(back, mask);
    }

    #[test]
    fn round_trip_through_file() {
        let mut rng = StdRng::seed_from_u64(1);
        let mask = patterns::sparse_random(8, (4, 4), &mut rng).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("snappix_mask_{}.txt", std::process::id()));
        save_mask(&mask, &path).unwrap();
        let back = load_mask(&path).unwrap();
        assert_eq!(back, mask);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_form_is_human_readable() {
        let mask = patterns::long_exposure(2, (2, 2)).unwrap();
        let text = mask_to_string(&mask);
        assert!(text.starts_with("snappix-mask v1\nslots 2\ntile 2 2\n"));
        assert!(text.contains("11"));
        assert!(text.contains("# slot 1"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(mask_from_str("garbage").is_err());
        assert!(mask_from_str("snappix-mask v1\nslots 0\ntile 2 2\n").is_err());
        assert!(mask_from_str("snappix-mask v1\nslots 1\ntile 2 2\n11\n1\n").is_err());
        assert!(mask_from_str("snappix-mask v1\nslots 1\ntile 2 2\n11\n1x\n").is_err());
        assert!(mask_from_str("snappix-mask v1\nslots 1\ntile 2 2\n11\n").is_err());
        // Trailing content.
        assert!(mask_from_str("snappix-mask v1\nslots 1\ntile 1 1\n1\n0\n").is_err());
        // Missing tile keyword.
        assert!(mask_from_str("snappix-mask v1\nslots 1\nsize 1 1\n1\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "snappix-mask v1\n\n# a comment\nslots 1\ntile 1 2\n# body\n10\n";
        let mask = mask_from_str(text).unwrap();
        assert_eq!(mask.pattern().as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_mask("/definitely/not/a/path.txt").is_err());
    }
}
