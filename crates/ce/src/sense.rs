//! The [`Sense`] abstraction: "video in, coded image out".
//!
//! The workspace has two ways of producing a coded image from a clip —
//! the algorithmic Eqn. 1 encoder used at training time (this crate) and
//! the charge-domain hardware simulation used at deployment time
//! (`snappix_sensor::HardwareSensor`). `Sense` is the trait both sides
//! implement so pipelines, tests and benches can swap backends via
//! generics instead of duplicating glue for each path.

use crate::{encode, encode_batch, encode_batch_normalized, encode_normalized, ExposureMask};
use snappix_tensor::{Tensor, TensorError};

/// A coded-exposure capture backend: turns a `[t, h, w]` clip into the
/// `[h, w]` coded image an edge node would transmit.
///
/// Implementations take `&mut self` because physical backends are
/// stateful (noise RNGs, per-capture accounting); the pure algorithmic
/// encoder simply ignores the mutability.
///
/// The two first-party implementations are [`AlgorithmicEncoder`] (this
/// crate, the training-time path) and `snappix_sensor::HardwareSensor`
/// (the deployment path); the workspace property tests assert they agree
/// whenever the hardware readout is ideal.
pub trait Sense {
    /// Error produced by this backend.
    ///
    /// The `From<TensorError>` bound lets the provided [`Sense::sense_batch`]
    /// propagate batching (slice/stack) failures through any backend's
    /// error type.
    type Error: std::error::Error + From<TensorError> + 'static;

    /// The exposure mask this backend runs.
    fn mask(&self) -> &ExposureMask;

    /// Whether this backend divides coded pixels by their exposure count
    /// (the paper's pre-ViT normalization).
    ///
    /// Pipelines validate this against the model's
    /// `normalize_by_exposure` flag at assembly time — a mismatch would
    /// silently feed the model inputs scaled differently from its
    /// training data. The default is `true`, the paper's convention;
    /// backends that can disable normalization must override it to
    /// report their actual setting.
    fn normalizes(&self) -> bool {
        true
    }

    /// Senses one `[t, h, w]` clip into an `[h, w]` coded image.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the backend's mask or geometry.
    fn sense(&mut self, clip: &Tensor) -> Result<Tensor, Self::Error>;

    /// Senses a `[batch, t, h, w]` clip batch into `[batch, h, w]` coded
    /// images.
    ///
    /// The default implementation loops over [`Sense::sense`] and stacks;
    /// backends with a cheaper batched path (e.g. the algorithmic
    /// encoder) override it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sense::sense`], plus rank validation of the
    /// batch.
    fn sense_batch(&mut self, clips: &Tensor) -> Result<Tensor, Self::Error> {
        if clips.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: clips.rank(),
            }
            .into());
        }
        let batch = clips.shape()[0];
        let mut coded = Vec::with_capacity(batch);
        for b in 0..batch {
            coded.push(self.sense(&clips.index_axis(0, b)?)?);
        }
        let refs: Vec<&Tensor> = coded.iter().collect();
        Tensor::stack(&refs, 0).map_err(Into::into)
    }
}

/// The training-time [`Sense`] backend: a stateless wrapper around the
/// algorithmic Eqn. 1 codec ([`encode`] / [`encode_normalized`]).
///
/// Configuration follows the workspace's builder-style `with_*` idiom:
/// constructors pick documented defaults and `with_*` methods return
/// `self` with one knob changed.
///
/// # Examples
///
/// ```
/// use snappix_ce::{patterns, AlgorithmicEncoder, Sense};
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_ce::CeError> {
/// let mask = patterns::long_exposure(4, (4, 4))?;
/// let mut enc = AlgorithmicEncoder::new(mask);
/// let coded = enc.sense(&Tensor::full(&[4, 8, 8], 0.5))?;
/// assert_eq!(coded.shape(), &[8, 8]);
/// assert_eq!(coded.get(&[0, 0])?, 0.5); // normalized long exposure
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmicEncoder {
    mask: ExposureMask,
    normalize: bool,
}

impl AlgorithmicEncoder {
    /// Creates an encoder for `mask`.
    ///
    /// Defaults to exposure-count normalization (the paper's pre-ViT
    /// convention); disable it with
    /// [`with_normalization`](Self::with_normalization).
    pub fn new(mask: ExposureMask) -> Self {
        AlgorithmicEncoder {
            mask,
            normalize: true,
        }
    }

    /// Sets whether coded pixels are divided by their exposure count
    /// (see [`encode_normalized`]).
    #[must_use]
    pub fn with_normalization(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }
}

impl Sense for AlgorithmicEncoder {
    type Error = crate::CeError;

    fn mask(&self) -> &ExposureMask {
        &self.mask
    }

    fn normalizes(&self) -> bool {
        self.normalize
    }

    fn sense(&mut self, clip: &Tensor) -> Result<Tensor, Self::Error> {
        if self.normalize {
            encode_normalized(clip, &self.mask)
        } else {
            encode(clip, &self.mask)
        }
    }

    fn sense_batch(&mut self, clips: &Tensor) -> Result<Tensor, Self::Error> {
        if self.normalize {
            encode_batch_normalized(clips, &self.mask)
        } else {
            encode_batch(clips, &self.mask)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn sense_matches_free_functions() {
        let mut rng = StdRng::seed_from_u64(3);
        let mask = patterns::random(4, (4, 4), 0.5, &mut rng).unwrap();
        let clip = Tensor::rand_uniform(&mut rng, &[4, 8, 8], 0.0, 1.0);
        let mut enc = AlgorithmicEncoder::new(mask.clone());
        assert!(enc
            .sense(&clip)
            .unwrap()
            .approx_eq(&encode_normalized(&clip, &mask).unwrap(), 0.0));
        let mut raw = AlgorithmicEncoder::new(mask.clone()).with_normalization(false);
        assert!(!raw.normalizes());
        assert!(raw
            .sense(&clip)
            .unwrap()
            .approx_eq(&encode(&clip, &mask).unwrap(), 0.0));
        assert_eq!(enc.mask().num_slots(), 4);
    }

    #[test]
    fn sense_batch_matches_per_clip_loop() {
        let mut rng = StdRng::seed_from_u64(4);
        let mask = patterns::random(4, (4, 4), 0.5, &mut rng).unwrap();
        let clips = Tensor::rand_uniform(&mut rng, &[3, 4, 8, 8], 0.0, 1.0);
        let mut enc = AlgorithmicEncoder::new(mask);
        let batch = enc.sense_batch(&clips).unwrap();
        assert_eq!(batch.shape(), &[3, 8, 8]);
        for b in 0..3 {
            let single = enc.sense(&clips.index_axis(0, b).unwrap()).unwrap();
            assert!(batch.index_axis(0, b).unwrap().approx_eq(&single, 0.0));
        }
    }

    /// Exercises the trait's *default* `sense_batch` (which
    /// `AlgorithmicEncoder` overrides) through a minimal adapter.
    #[test]
    fn default_sense_batch_loops_and_stacks() {
        struct Adapter(AlgorithmicEncoder);
        impl Sense for Adapter {
            type Error = crate::CeError;
            fn mask(&self) -> &ExposureMask {
                self.0.mask()
            }
            fn sense(&mut self, clip: &Tensor) -> Result<Tensor, Self::Error> {
                self.0.sense(clip)
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let mask = patterns::random(4, (4, 4), 0.5, &mut rng).unwrap();
        let clips = Tensor::rand_uniform(&mut rng, &[2, 4, 8, 8], 0.0, 1.0);
        let mut adapter = Adapter(AlgorithmicEncoder::new(mask.clone()));
        let via_default = adapter.sense_batch(&clips).unwrap();
        let via_override = AlgorithmicEncoder::new(mask).sense_batch(&clips).unwrap();
        assert!(via_default.approx_eq(&via_override, 0.0));
        assert!(adapter.sense_batch(&Tensor::zeros(&[4, 8, 8])).is_err());
    }
}
