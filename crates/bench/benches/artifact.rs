//! Criterion microbench: weight loading through the `.spx` artifact vs
//! the legacy `load_params` stream — the acceptance measurement for the
//! storage refactor (numbers recorded in BENCHMARKS.md).
//!
//! Three load paths over the same checkpoint:
//!
//! * `artifact/load_params` — the legacy `.snpx` path: parse the stream,
//!   copy every tensor into per-store owned buffers.
//! * `artifact/open_and_load` — cold `.spx` path: read the file, verify
//!   the checksum, parse the table, then hand out zero-copy windows into
//!   one shared payload buffer.
//! * `artifact/load_from_open_reader` — warm `.spx` path: the reader is
//!   already open (a fleet stamping replica N), so "loading" is just
//!   `Arc` clones of the payload plus shape checks — no file IO, no
//!   payload copy.
//!
//! After the timing groups, the bench prints the resident-weight-bytes
//! table for worker counts {1, 4, 8}: shared storage keeps the resident
//! set flat while the naive per-replica sum scales linearly.

use criterion::{criterion_group, criterion_main, Criterion};
use snappix_nn::ArtifactReader;
use snappix_serve::prelude::*;
use std::path::PathBuf;

const T: usize = 16;
const HW: usize = 16;
const CLASSES: usize = 10;

fn model() -> SnapPixAr {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let mask = patterns::random(T, (8, 8), 0.5, &mut rng).expect("valid dims");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("geometry")
}

fn checkpoint_pair() -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("snappix_bench_artifact_{}", std::process::id()));
    let snpx = base.with_extension("snpx");
    let spx = base.with_extension("spx");
    let trained = model();
    save_params(trained.store(), &snpx).expect("legacy save");
    write_artifact(trained.store(), &spx).expect("artifact save");
    (snpx, spx)
}

fn bench_artifact(c: &mut Criterion) {
    let (snpx, spx) = checkpoint_pair();
    let payload_kib = std::fs::metadata(&spx).expect("artifact written").len() / 1024;

    let mut group = c.benchmark_group("artifact");
    group.sample_size(30);

    group.bench_function(format!("load_params_{payload_kib}KiB"), |b| {
        b.iter(|| {
            let mut m = model();
            load_params(m.store_mut(), &snpx).expect("legacy load");
            m
        })
    });

    group.bench_function(format!("open_and_load_{payload_kib}KiB"), |b| {
        b.iter(|| {
            let mut m = model();
            let reader = ArtifactReader::open(&spx).expect("artifact open");
            reader.load_into(m.store_mut()).expect("artifact load");
            m
        })
    });

    let reader = ArtifactReader::open(&spx).expect("artifact open");
    group.bench_function(format!("load_from_open_reader_{payload_kib}KiB"), |b| {
        b.iter(|| {
            let mut m = model();
            reader.load_into(m.store_mut()).expect("artifact load");
            m
        })
    });
    group.finish();

    // Resident weight memory vs worker count: the artifact's payload is
    // shared read-only across replicas, so the resident set stays flat
    // while the naive (deep-copy) accounting scales linearly.
    eprintln!("artifact bench: resident weight bytes vs workers");
    for workers in [1usize, 4, 8] {
        let replicas = Pipeline::builder(model())
            .with_artifact(&spx)
            .expect("artifact open")
            .build_replicas(workers)
            .expect("replica assembly");
        let resident = resident_weight_bytes(&replicas);
        let naive: usize = replicas.iter().map(Pipeline::weight_bytes).sum();
        eprintln!(
            "  workers {workers}: resident {resident} B, deep-copy {naive} B, ratio {:.2}x",
            naive as f64 / resident as f64
        );
    }

    std::fs::remove_file(snpx).ok();
    std::fs::remove_file(spx).ok();
}

criterion_group!(benches, bench_artifact);
criterion_main!(benches);
