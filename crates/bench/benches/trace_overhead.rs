//! Criterion macrobench: what does tracing cost the serving hot path?
//!
//! Three variants of the `serve` bench's dynamic-batching workload
//! (same model, same clips, same client fan-in):
//!
//! * `tracing_disabled` — the default: every server carries a
//!   [`Tracer`] field, so even "no tracing" pays the disabled tracer's
//!   `Option` branches on admission, batch claim, and batch execution.
//!   This is the number the <2% overhead gate in BENCHMARKS.md is
//!   about: it must be indistinguishable from the pre-trace serve
//!   bench.
//! * `tracing_enabled` — a live tracer recording every span (request,
//!   queue_wait, batch, compute, plus the pipeline's stage spans) into
//!   per-thread rings, cleared between iterations so ring rotation
//!   never enters the measurement.
//!
//! The two must also agree on every label — tracing is observation,
//! not behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use snappix_serve::prelude::*;

const T: usize = 16;
const HW: usize = 16;
const CLASSES: usize = 10;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 8;

fn model() -> SnapPixAr {
    let mut rng = StdRng::seed_from_u64(1);
    let mask = patterns::random(T, (8, 8), 0.5, &mut rng).expect("valid dims");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("geometry")
}

fn clips() -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(0);
    (0..CLIENTS * PER_CLIENT)
        .map(|_| Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0))
        .collect()
}

fn server(tracer: Tracer) -> Server {
    Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_queue_depth(CLIENTS * PER_CLIENT)
        .with_batch_policy(BatchPolicy::greedy(8))
        .with_tracer(tracer)
        .build()
        .expect("server assembly")
}

/// One full client burst: every label, in client-major order.
fn burst(server: &Server, clips: &[Tensor]) -> Vec<usize> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|i| {
                            server
                                .submit(&clips[client * PER_CLIENT + i])
                                .expect("admission")
                                .wait()
                                .expect("prediction")
                                .label
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client"))
            .collect()
    })
}

fn bench_trace_overhead(c: &mut Criterion) {
    let clips = clips();
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(30);

    let disabled = server(Tracer::disabled());
    group.bench_function(
        format!("tracing_disabled{CLIENTS}x{PER_CLIENT}_{HW}x{HW}"),
        |b| b.iter(|| burst(&disabled, &clips)),
    );

    let tracer = Tracer::new();
    let enabled = server(tracer.clone());
    group.bench_function(
        format!("tracing_enabled{CLIENTS}x{PER_CLIENT}_{HW}x{HW}"),
        |b| {
            b.iter(|| {
                let labels = burst(&enabled, &clips);
                tracer.clear();
                labels
            })
        },
    );
    group.finish();

    // Observation, not behaviour: both servers classified identically.
    let baseline = burst(&disabled, &clips);
    assert_eq!(
        burst(&enabled, &clips),
        baseline,
        "tracing changed the served labels"
    );
    let spans = tracer.snapshot();
    assert!(!spans.is_empty(), "the enabled tracer recorded the burst");
    disabled.shutdown();
    enabled.shutdown();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
