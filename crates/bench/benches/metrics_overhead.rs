//! Criterion macrobench: what does the metrics registry cost the
//! serving hot path?
//!
//! Two variants of the `serve` bench's dynamic-batching workload (same
//! model, same clips, same client fan-in):
//!
//! * `metrics_disabled` — a server built with `Registry::disabled()`:
//!   every handle is a no-op, so this measures the residual cost of
//!   carrying the handles at all (an `Option` branch per record).
//! * `metrics_enabled` — the default `Registry::new()`: every request
//!   increments counters and lands queue/compute latency samples in
//!   the log-linear histograms (one atomic fetch-add per sample; the
//!   registry lock is never taken after registration).
//!
//! The enabled number is the one the <2% overhead gate in
//! BENCHMARKS.md is about: it must be indistinguishable from the
//! pre-metrics serve bench. The two variants must also agree on every
//! label — metrics are observation, not behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use snappix_serve::prelude::*;

const T: usize = 16;
const HW: usize = 16;
const CLASSES: usize = 10;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 8;

fn model() -> SnapPixAr {
    let mut rng = StdRng::seed_from_u64(1);
    let mask = patterns::random(T, (8, 8), 0.5, &mut rng).expect("valid dims");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("geometry")
}

fn clips() -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(0);
    (0..CLIENTS * PER_CLIENT)
        .map(|_| Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0))
        .collect()
}

fn server(registry: Registry) -> Server {
    Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_queue_depth(CLIENTS * PER_CLIENT)
        .with_batch_policy(BatchPolicy::greedy(8))
        .with_metrics(registry)
        .build()
        .expect("server assembly")
}

/// One full client burst: every label, in client-major order.
fn burst(server: &Server, clips: &[Tensor]) -> Vec<usize> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|i| {
                            server
                                .submit(&clips[client * PER_CLIENT + i])
                                .expect("admission")
                                .wait()
                                .expect("prediction")
                                .label
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client"))
            .collect()
    })
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let clips = clips();
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(30);

    let disabled = server(Registry::disabled());
    group.bench_function(
        format!("metrics_disabled{CLIENTS}x{PER_CLIENT}_{HW}x{HW}"),
        |b| b.iter(|| burst(&disabled, &clips)),
    );

    let registry = Registry::new();
    let enabled = server(registry.clone());
    group.bench_function(
        format!("metrics_enabled{CLIENTS}x{PER_CLIENT}_{HW}x{HW}"),
        |b| b.iter(|| burst(&enabled, &clips)),
    );
    group.finish();

    // Observation, not behaviour: both servers classified identically.
    let baseline = burst(&disabled, &clips);
    assert_eq!(
        burst(&enabled, &clips),
        baseline,
        "metrics changed the served labels"
    );
    // And the enabled registry really counted every sample, exactly.
    let page = registry.render();
    let count: u64 = enabled.stats().completed;
    assert!(
        page.contains(&format!(
            "snappix_server_queue_latency_seconds_count {count}\n"
        )),
        "every request since start must land in the histogram"
    );
    disabled.shutdown();
    enabled.shutdown();
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
