//! Criterion macrobench: the `snappix-stream` multi-stream runner vs a
//! serial per-stream loop — the acceptance measurement for the streaming
//! subsystem (numbers recorded in BENCHMARKS.md).
//!
//! Both sides classify the same 8-stream sliding-window workload
//! (`T = 8` windows at hop 4 over 40-frame `16x16` videos, 9 windows per
//! stream, 72 windows total):
//!
//! * `streams/serial_per_stream_loop` is the no-streaming-layer
//!   baseline — streams handled one after another, each window through
//!   `Pipeline::infer_clip`, the way a naive node would poll its
//!   cameras round-robin.
//! * `streams/concurrent_runner` drives all 8 streams concurrently
//!   through a `StreamRunner` over a one-worker `Server`
//!   (`BatchPolicy::greedy(8)`), so windows from *different* streams
//!   coalesce into shared batched forward passes. One worker isolates
//!   the cross-stream batching win from replica parallelism, which a
//!   1-core container could not show anyway.

use criterion::{criterion_group, criterion_main, Criterion};
use snappix_stream::prelude::*;

const T: usize = 8;
const HOP: usize = 4;
const HW: usize = 16;
const CLASSES: usize = 10;
const STREAMS: usize = 8;
const FRAMES: usize = 40;

fn model() -> SnapPixAr {
    let mask = patterns::long_exposure(T, (8, 8)).expect("valid mask");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("geometry")
}

fn videos() -> Vec<Video> {
    let data = Dataset::new(ssv2_like(FRAMES, HW, HW), STREAMS);
    (0..STREAMS).map(|i| data.sample(i).video).collect()
}

fn bench_streams(c: &mut Criterion) {
    let videos = videos();
    let windows_per_stream = (FRAMES - T) / HOP + 1;

    let mut group = c.benchmark_group("streams");
    group.sample_size(20);

    // Baseline: the pre-streaming world — one engine, one camera at a
    // time, one window at a time.
    let mut serial = Pipeline::builder(model()).build().expect("assembly");
    group.bench_function(
        format!("serial_per_stream_loop{STREAMS}x{windows_per_stream}_{HW}x{HW}"),
        |b| {
            b.iter(|| {
                let mut labels = Vec::with_capacity(STREAMS * windows_per_stream);
                for video in &videos {
                    for window in video.windows(T, HOP) {
                        labels.push(serial.infer_clip(&window).expect("inference").label);
                    }
                }
                labels
            })
        },
    );

    // The streaming subsystem: 8 concurrent sessions over one server,
    // windows batching across streams.
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_queue_depth(STREAMS * windows_per_stream)
        .with_batch_policy(BatchPolicy::greedy(8))
        .build()
        .expect("server assembly");
    group.bench_function(
        format!("concurrent_runner{STREAMS}x{windows_per_stream}_{HW}x{HW}"),
        |b| {
            b.iter(|| {
                let mut runner = StreamRunner::new(&server);
                for video in &videos {
                    runner.add_stream(
                        ReplaySource::new(video.clone()),
                        SessionConfig::new(T, HOP).with_smoothing(Smoothing::Off),
                    );
                }
                let report = runner.run().expect("streaming run");
                assert_eq!(
                    report.aggregate.inferred,
                    (STREAMS * windows_per_stream) as u64
                );
                report
            })
        },
    );
    group.finish();

    // One more timed run outside criterion to report the headline
    // aggregate windows/sec and the achieved batching.
    let mut runner = StreamRunner::new(&server);
    for video in &videos {
        runner.add_stream(
            ReplaySource::new(video.clone()),
            SessionConfig::new(T, HOP).with_smoothing(Smoothing::Off),
        );
    }
    let report = runner.run().expect("streaming run");
    let stats = server.shutdown();
    eprintln!(
        "streams bench telemetry: {:.1} windows/s aggregate over {} streams \
         (e2e p50 {:.2?} p99 {:.2?}); server mean batch {:.2} over {} batches",
        report.windows_per_sec(),
        report.streams.len(),
        report.aggregate.latency.p50,
        report.aggregate.latency.p99,
        stats.mean_batch_size(),
        stats.batches,
    );
}

criterion_group!(benches, bench_streams);
criterion_main!(benches);
