//! Criterion microbench: one decorrelation gradient step (Sec. III) and
//! the Pearson-matrix statistics it rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use snappix_ce::{pearson_matrix, zero_mean_contrast, DecorrelationConfig, DecorrelationTrainer};
use snappix_tensor::Tensor;

fn bench_decorrelation_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_learning");
    group.sample_size(10);
    for (tile, batch) in [(4usize, 4usize), (8, 4), (8, 8)] {
        let mut trainer = DecorrelationTrainer::new(DecorrelationConfig {
            slots: 16,
            tile: (tile, tile),
            batch_size: batch,
            ..DecorrelationConfig::default()
        })
        .expect("valid config");
        let mut rng = StdRng::seed_from_u64(1);
        let videos = Tensor::rand_uniform(&mut rng, &[batch, 16, 32, 32], 0.0, 1.0);
        group.bench_with_input(
            BenchmarkId::new("step", format!("tile{tile}_batch{batch}")),
            &videos,
            |b, videos| b.iter(|| trainer.step(videos).expect("step")),
        );
    }
    group.finish();
}

fn bench_pearson(c: &mut Criterion) {
    let mut group = c.benchmark_group("pearson");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(2);
    for p in [16usize, 64] {
        let samples = Tensor::rand_uniform(&mut rng, &[256, p], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("matrix", p), &samples, |b, s| {
            b.iter(|| {
                let z = zero_mean_contrast(s).expect("rank 2");
                pearson_matrix(&z).expect("enough samples")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decorrelation_step, bench_pearson);
criterion_main!(benches);
