//! Criterion microbench: the batched `Pipeline` engine vs a per-clip
//! loop — the acceptance measurement for the throughput-first API
//! redesign (numbers recorded in BENCHMARKS.md).
//!
//! `pipeline_batch/infer_batch8_*` pushes 8 clips through ONE sensing
//! pass and ONE model forward; `pipeline_single/per_clip_loop8_*`
//! classifies the same 8 clips one at a time through the same engine.
//! Per-call fixed costs — autograd graph construction, parameter
//! binding, per-op bookkeeping and tensor allocation — amortize over the
//! batch, so the batched path wins most where clips are small relative
//! to that overhead (the paper's edge regime, `16x16`); at `32x32` the
//! per-clip compute grows and the gap narrows. `legacy_system_loop8`
//! runs the deprecated `SnapPixSystem` shim, whose API forces every clip
//! through the charge-domain hardware simulation, for the historical
//! trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;

const T: usize = 16;
const CLASSES: usize = 10;
const BATCH: usize = 8;

fn model(hw: usize) -> SnapPixAr {
    let mut rng = StdRng::seed_from_u64(1);
    let mask = patterns::random(T, (8, 8), 0.5, &mut rng).expect("valid dims");
    SnapPixAr::new(VitConfig::snappix_s(hw, hw, CLASSES), mask).expect("geometry")
}

fn clips(hw: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(0);
    Tensor::rand_uniform(&mut rng, &[BATCH, T, hw, hw], 0.0, 1.0)
}

fn bench_pipeline(c: &mut Criterion) {
    for hw in [16usize, 32] {
        let clips = clips(hw);
        let singles: Vec<Tensor> = (0..BATCH)
            .map(|b| clips.index_axis(0, b).expect("clip"))
            .collect();

        let mut group = c.benchmark_group("pipeline_batch");
        group.sample_size(20);
        let mut pipeline = Pipeline::builder(model(hw)).build().expect("assembly");
        group.bench_function(format!("infer_batch{BATCH}_{hw}x{hw}"), |b| {
            b.iter(|| pipeline.infer(&clips).expect("batched inference"))
        });
        group.finish();

        let mut group = c.benchmark_group("pipeline_single");
        group.sample_size(20);
        let mut pipeline = Pipeline::builder(model(hw)).build().expect("assembly");
        group.bench_function(format!("per_clip_loop{BATCH}_{hw}x{hw}"), |b| {
            b.iter(|| {
                singles
                    .iter()
                    .map(|clip| pipeline.infer_clip(clip).expect("inference").label)
                    .collect::<Vec<usize>>()
            })
        });

        #[allow(deprecated)]
        {
            let mut system = SnapPixSystem::new(model(hw), ReadoutConfig::noiseless(8, T as f32))
                .expect("assembly");
            group.bench_function(format!("legacy_system_loop{BATCH}_{hw}x{hw}"), |b| {
                b.iter(|| {
                    singles
                        .iter()
                        .map(|clip| system.classify(clip).expect("classify"))
                        .collect::<Vec<usize>>()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
