//! Criterion microbench: the batched `Pipeline` engine vs a per-clip
//! loop — the acceptance measurement for the throughput-first API
//! redesign (numbers recorded in BENCHMARKS.md).
//!
//! `pipeline_batch/infer_batch8_*` pushes 8 clips through ONE sensing
//! pass and ONE model forward; `pipeline_single/per_clip_loop8_*`
//! classifies the same 8 clips one at a time through the same engine.
//! Per-call fixed costs — autograd graph construction, parameter
//! binding, per-op bookkeeping and tensor allocation — amortize over the
//! batch, so the batched path wins most where clips are small relative
//! to that overhead (the paper's edge regime, `16x16`); at `32x32` the
//! per-clip compute grows and the gap narrows.
//! `pipeline_batch/infer_batch8_*_serial` pins the same engine to one
//! worker (`PipelineBuilder::with_threads(1)`), so the spread against
//! the default row quantifies what the shared data-parallel layer buys
//! on the current machine.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;

const T: usize = 16;
const CLASSES: usize = 10;
const BATCH: usize = 8;

fn model(hw: usize) -> SnapPixAr {
    let mut rng = StdRng::seed_from_u64(1);
    let mask = patterns::random(T, (8, 8), 0.5, &mut rng).expect("valid dims");
    SnapPixAr::new(VitConfig::snappix_s(hw, hw, CLASSES), mask).expect("geometry")
}

fn clips(hw: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(0);
    Tensor::rand_uniform(&mut rng, &[BATCH, T, hw, hw], 0.0, 1.0)
}

fn bench_pipeline(c: &mut Criterion) {
    for hw in [16usize, 32] {
        let clips = clips(hw);
        let singles: Vec<Tensor> = (0..BATCH)
            .map(|b| clips.index_axis(0, b).expect("clip"))
            .collect();

        let mut group = c.benchmark_group("pipeline_batch");
        group.sample_size(20);
        let mut pipeline = Pipeline::builder(model(hw)).build().expect("assembly");
        group.bench_function(format!("infer_batch{BATCH}_{hw}x{hw}"), |b| {
            b.iter(|| pipeline.infer(&clips).expect("batched inference"))
        });
        let mut serial = Pipeline::builder(model(hw))
            .with_threads(1)
            .build()
            .expect("assembly");
        group.bench_function(format!("infer_batch{BATCH}_{hw}x{hw}_serial"), |b| {
            b.iter(|| serial.infer(&clips).expect("batched inference"))
        });
        group.finish();

        let mut group = c.benchmark_group("pipeline_single");
        group.sample_size(20);
        let mut pipeline = Pipeline::builder(model(hw)).build().expect("assembly");
        group.bench_function(format!("per_clip_loop{BATCH}_{hw}x{hw}"), |b| {
            b.iter(|| {
                singles
                    .iter()
                    .map(|clip| pipeline.infer_clip(clip).expect("inference").label)
                    .collect::<Vec<usize>>()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
