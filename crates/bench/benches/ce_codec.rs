//! Criterion microbench: coded-exposure encode throughput (Eqn. 1) at
//! several resolutions and slot counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use snappix_ce::{encode, encode_normalized, patterns};
use snappix_tensor::Tensor;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ce_encode");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0);
    for (t, hw) in [(8usize, 32usize), (16, 32), (16, 64), (16, 112)] {
        let mask = patterns::random(t, (8, 8), 0.5, &mut rng).expect("valid dims");
        let video = Tensor::rand_uniform(&mut rng, &[t, hw, hw], 0.0, 1.0);
        group.bench_with_input(
            BenchmarkId::new("encode", format!("{t}x{hw}x{hw}")),
            &(video.clone(), mask.clone()),
            |b, (video, mask)| b.iter(|| encode(video, mask).expect("encode")),
        );
        group.bench_with_input(
            BenchmarkId::new("encode_normalized", format!("{t}x{hw}x{hw}")),
            &(video, mask),
            |b, (video, mask)| b.iter(|| encode_normalized(video, mask).expect("encode")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
