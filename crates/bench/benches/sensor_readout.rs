//! Criterion microbench: the charge-domain sensor capture protocol
//! (Sec. V) and the readout chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use snappix_ce::patterns;
use snappix_sensor::{CeSensor, Readout, ReadoutConfig};
use snappix_tensor::Tensor;

fn bench_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensor_capture");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(0);
    for hw in [16usize, 32, 64] {
        let mask = patterns::random(16, (8, 8), 0.5, &mut rng).expect("valid dims");
        let video = Tensor::rand_uniform(&mut rng, &[16, hw, hw], 0.0, 1.0);
        let mut sensor = CeSensor::new(hw, hw, mask).expect("geometry");
        group.bench_with_input(BenchmarkId::new("capture", hw), &video, |b, v| {
            b.iter(|| sensor.capture(v).expect("capture"))
        });
    }
    group.finish();
}

fn bench_readout(c: &mut Criterion) {
    let mut group = c.benchmark_group("readout");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(1);
    let analog = Tensor::rand_uniform(&mut rng, &[112, 112], 0.0, 16.0);
    let mut noiseless = Readout::new(ReadoutConfig::noiseless(8, 16.0));
    let mut noisy = Readout::new(ReadoutConfig::default());
    group.bench_function("noiseless_8bit", |b| b.iter(|| noiseless.digitize(&analog)));
    group.bench_function("noisy_8bit", |b| b.iter(|| noisy.digitize(&analog)));
    group.finish();
}

criterion_group!(benches, bench_capture, bench_readout);
criterion_main!(benches);
