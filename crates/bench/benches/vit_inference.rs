//! Criterion microbench: model forward passes — SnapPix-S vs SnapPix-B vs
//! SVC2D vs the video transformer (Table I's throughput column), plus the
//! SVC-slowdown comparison that motivates the ViT co-design (Sec. IV).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use snappix_ce::patterns;
use snappix_models::{ActionModel, C3d, SnapPixAr, Svc2d, VideoVit, VitConfig};
use snappix_nn::Session;
use snappix_tensor::Tensor;

const T: usize = 16;
const HW: usize = 32;
const CLASSES: usize = 10;

fn clips(batch: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(0);
    Tensor::rand_uniform(&mut rng, &[batch, T, HW, HW], 0.0, 1.0)
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_forward");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    let mask = patterns::random(T, (8, 8), 0.5, &mut rng).expect("valid dims");
    let videos = clips(4);

    let snappix_s =
        SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask.clone()).expect("geometry");
    let snappix_b = SnapPixAr::new(VitConfig::snappix_b(HW, HW, CLASSES), mask).expect("geometry");
    let svc2d = Svc2d::new(T, HW, HW, 8, CLASSES).expect("geometry");
    let c3d = C3d::new(T, HW, HW, CLASSES).expect("geometry");
    let video_vit = VideoVit::new(T, HW, HW, CLASSES).expect("geometry");

    let models: Vec<(&str, &dyn ActionModel)> = vec![
        ("snappix_s", &snappix_s),
        ("snappix_b", &snappix_b),
        ("svc2d", &svc2d),
        ("c3d", &c3d),
        ("video_vit", &video_vit),
    ];
    for (name, model) in models {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sess = Session::inference(model.store());
                model.build_logits(&mut sess, &videos).expect("forward")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
