//! Criterion microbench: the energy model sweeps (cheap by construction —
//! this guards against accidental algorithmic regressions making the
//! planner non-interactive).

use criterion::{criterion_group, criterion_main, Criterion};
use snappix_energy::{EnergyModel, Scenario, Wireless};

fn bench_energy_sweep(c: &mut Criterion) {
    let model = EnergyModel::paper();
    c.bench_function("energy_slot_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0f64;
            for slots in 1..=64 {
                for wireless in [Wireless::PassiveWifi, Wireless::LoraBackscatter] {
                    let s = Scenario {
                        frame_pixels: 112 * 112,
                        slots,
                        wireless,
                    };
                    total += model.edge_energy_saving(&s);
                }
            }
            total
        })
    });
}

criterion_group!(benches, bench_energy_sweep);
criterion_main!(benches);
