//! Criterion macrobench: the `snappix-serve` dynamic-batching server vs
//! a per-client serial loop — the acceptance measurement for the serving
//! subsystem (numbers recorded in BENCHMARKS.md).
//!
//! Both sides classify the same `CLIENTS x PER_CLIENT` workload of
//! `16x16` clips (the paper's edge scale):
//!
//! * `serve/per_client_serial_loop` is the no-serving-layer baseline —
//!   requests are served one `infer_clip` at a time in arrival order,
//!   the way a naive node would loop over its clients.
//! * `serve/dynamic_batching` stands up a `Server` (one worker replica,
//!   so the comparison isolates *batching* from replica parallelism),
//!   hammers it from `CLIENTS` real client threads, and waits out every
//!   ticket. The win comes from coalescing concurrent requests into
//!   shared forward passes, amortizing per-call graph construction and
//!   tensor allocation exactly as the PR 2 pipeline bench predicts for
//!   batch 8.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use snappix_serve::prelude::*;

const T: usize = 16;
const HW: usize = 16;
const CLASSES: usize = 10;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 8;

fn model() -> SnapPixAr {
    let mut rng = StdRng::seed_from_u64(1);
    let mask = patterns::random(T, (8, 8), 0.5, &mut rng).expect("valid dims");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("geometry")
}

fn clips() -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(0);
    (0..CLIENTS * PER_CLIENT)
        .map(|_| Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0))
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let clips = clips();

    let mut group = c.benchmark_group("serve");
    group.sample_size(30);

    // Baseline: the pre-serve world — clients' clips handled one at a
    // time by a single engine.
    let mut serial = Pipeline::builder(model()).build().expect("assembly");
    group.bench_function(
        format!("per_client_serial_loop{}x{PER_CLIENT}_{HW}x{HW}", CLIENTS),
        |b| {
            b.iter(|| {
                clips
                    .iter()
                    .map(|clip| serial.infer_clip(clip).expect("inference").label)
                    .collect::<Vec<usize>>()
            })
        },
    );

    // The serving subsystem: concurrent clients, dynamic batching.
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_queue_depth(CLIENTS * PER_CLIENT)
        // Greedy batching: with every client bursting at once the queue
        // is never empty, so batches form without any added delay.
        .with_batch_policy(BatchPolicy::greedy(8))
        .build()
        .expect("server assembly");
    group.bench_function(
        format!("dynamic_batching{}x{PER_CLIENT}_{HW}x{HW}", CLIENTS),
        |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..CLIENTS)
                        .map(|client| {
                            let server = &server;
                            let clips = &clips;
                            scope.spawn(move || {
                                (0..PER_CLIENT)
                                    .map(|i| {
                                        server
                                            .submit(&clips[client * PER_CLIENT + i])
                                            .expect("admission")
                                            .wait()
                                            .expect("prediction")
                                            .label
                                    })
                                    .collect::<Vec<usize>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("client"))
                        .collect::<Vec<usize>>()
                })
            })
        },
    );
    group.finish();

    let stats = server.shutdown();
    eprintln!(
        "serve bench telemetry: mean batch size {:.2} over {} batches",
        stats.mean_batch_size(),
        stats.batches
    );
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
