//! Criterion macrobench: the `snappix-fleet` event-driven simulator at
//! fleet scale — the acceptance measurement for the fleet subsystem
//! (numbers recorded in BENCHMARKS.md).
//!
//! One configuration per fleet size (8 / 64 / 256 / 1024 nodes), all
//! over the same one-worker server with greedy batch-8 dynamic batching
//! (one worker isolates event-loop + batching throughput from replica
//! parallelism, which a 1-core container could not show anyway). Each
//! node replays a pre-rendered 20-frame `16x16` video windowed at
//! `T = 8` / hop 4 (4 windows per node) under the mixed energy
//! personalities of `examples/fleet.rs` — a quarter mains-powered, the
//! rest battery-backed with varying harvest — so the duty-cycle ladder
//! and the energy ledger are live in the measured loop, exactly as they
//! would be in a real deployment sweep.
//!
//! Alongside the criterion timing, each size logs a one-shot telemetry
//! line: wall-clock windows/s through the simulator, energy per
//! inference, and the server's achieved mean batch — the fleet-scaling
//! numbers the BENCHMARKS.md table quotes.

use criterion::{criterion_group, criterion_main, Criterion};
use snappix_fleet::prelude::*;

const T: usize = 8;
const HOP: usize = 4;
const HW: usize = 16;
const CLASSES: usize = 10;
const FRAMES: usize = 20;
const DRIVERS: usize = 4;

fn model() -> SnapPixAr {
    let mask = patterns::long_exposure(T, (8, 8)).expect("valid mask");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("geometry")
}

fn videos(nodes: usize) -> Vec<Video> {
    let data = Dataset::new(ssv2_like(FRAMES, HW, HW), nodes);
    (0..nodes).map(|i| data.sample(i).video).collect()
}

fn node_config(i: usize, cost: f64) -> NodeConfig {
    // Battery reserves worth only ~2 inferences, so the ladder engages
    // inside the short benched run and the energy path stays live.
    let budget = match i % 4 {
        0 => EnergyBudget::unbounded(),
        1 => EnergyBudget::new(cost * 2.0),
        2 => EnergyBudget::new(cost * 2.0).with_harvest(cost * 20.0),
        _ => EnergyBudget::new(cost * 2.0).with_harvest(cost * 4.0),
    };
    NodeConfig::new(T, HOP)
        .with_fps(30.0)
        .with_budget(budget)
        .with_smoothing(Smoothing::Majority { k: 3 })
        .with_sleep_cost(cost * 0.01)
}

fn run_fleet(server: &Server, videos: &[Video], cost: f64) -> FleetReport {
    let mut sim = FleetSim::new(server).with_drivers(DRIVERS);
    for (i, video) in videos.iter().enumerate() {
        sim.add_node(ReplaySource::new(video.clone()), node_config(i, cost))
            .expect("valid node");
    }
    sim.run().expect("fleet run")
}

fn bench_fleet(c: &mut Criterion) {
    let cost = EnergyModel::paper()
        .snappix_energy(&Scenario {
            frame_pixels: HW * HW,
            slots: T,
            wireless: Wireless::PassiveWifi,
        })
        .total_pj();
    let windows_per_node = (FRAMES - T) / HOP + 1;

    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    for nodes in [8usize, 64, 256, 1024] {
        let videos = videos(nodes);
        let server = Server::builder(Pipeline::builder(model()))
            .with_workers(1)
            .with_queue_depth(64)
            .with_batch_policy(BatchPolicy::greedy(8))
            .build()
            .expect("server assembly");

        // One-shot telemetry outside the timed loop.
        let report = run_fleet(&server, &videos, cost);
        assert!(report.check_conserved(), "ledgers balance at {nodes} nodes");
        eprintln!(
            "fleet telemetry: {nodes} nodes x {windows_per_node} windows -> \
             {} inferred / {} shed / {} slept in {:.1} ms wall \
             ({:.0} windows/s through the simulator, {:.0} pJ/inference)",
            report.stats.inferred,
            report.stats.shed,
            report.stats.slept,
            report.wall.as_secs_f64() * 1e3,
            report.stats.windows as f64 / report.wall.as_secs_f64(),
            report.stats.energy_per_inference_pj(),
        );

        group.bench_function(format!("sim{nodes}x{windows_per_node}_{HW}x{HW}"), |b| {
            b.iter(|| run_fleet(&server, &videos, cost).stats.inferred)
        });

        let stats = server.shutdown();
        eprintln!(
            "fleet telemetry: {nodes} nodes server totals: {} requests in {} batches \
             (mean batch {:.2})",
            stats.completed,
            stats.batches,
            stats.mean_batch_size()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
