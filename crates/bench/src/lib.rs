//! Experiment harness for the SnapPix reproduction.
//!
//! One function per paper artifact: [`run_fig6`] (task-agnostic pattern
//! comparison), [`run_table1`] (system comparison), [`run_energy`]
//! (Sec. VI-D), [`run_ablation`] (Sec. VI-E) and [`run_area`] (Sec. V).
//! The `snappix-bench` binaries are thin wrappers that call these and
//! print the rows; EXPERIMENTS.md records paper-vs-measured values.
//!
//! All experiments run at the reproduction scale documented in DESIGN.md:
//! procedural datasets, `T = 16` exposure slots, 32x32 frames, 8x8 tiles,
//! and CPU-sized ViTs. Absolute numbers therefore differ from the paper;
//! the *orderings and ratios* are the reproduction targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;
use snappix_energy::{EdgeGpuScenario, GpuModelClass, JetsonXavierModel};

/// Exposure slots used by every experiment (the paper's `T`).
pub const SLOTS: usize = 16;
/// Frame side in pixels.
pub const FRAME: usize = 32;
/// CE tile / ViT patch side.
pub const TILE: usize = 8;

/// Scale knobs for the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Clips in each dataset (train + test).
    pub dataset_size: usize,
    /// Training epochs for action recognition.
    pub ar_epochs: usize,
    /// Gradient steps for reconstruction training.
    pub rec_steps: usize,
    /// Gradient steps for decorrelation mask learning.
    pub mask_steps: usize,
    /// Gradient steps for MAE pre-training.
    pub pretrain_steps: usize,
}

impl Scale {
    /// Scale used by CI-style smoke runs.
    pub fn smoke() -> Self {
        Scale {
            dataset_size: 60,
            ar_epochs: 4,
            rec_steps: 60,
            mask_steps: 30,
            pretrain_steps: 30,
        }
    }

    /// Scale used for the recorded EXPERIMENTS.md numbers (a few minutes
    /// per table on a laptop CPU).
    pub fn experiment() -> Self {
        Scale {
            dataset_size: 300,
            ar_epochs: 12,
            rec_steps: 400,
            mask_steps: 100,
            pretrain_steps: 150,
        }
    }

    /// Picks the scale from the `SNAPPIX_SCALE` environment variable
    /// (`smoke` or `experiment`, defaulting to `experiment`).
    pub fn from_env() -> Self {
        match std::env::var("SNAPPIX_SCALE").as_deref() {
            Ok("smoke") => Scale::smoke(),
            _ => Scale::experiment(),
        }
    }
}

/// Learns the decorrelated mask on `data` at scale `s`.
///
/// # Errors
///
/// Propagates trainer errors (geometry, empty dataset).
pub fn learn_decorrelated_mask(
    data: &Dataset,
    s: &Scale,
) -> Result<ExposureMask, Box<dyn std::error::Error>> {
    let mut trainer = DecorrelationTrainer::new(DecorrelationConfig {
        slots: SLOTS,
        tile: (TILE, TILE),
        batch_size: 8,
        lr: 0.1,
        ..DecorrelationConfig::default()
    })?;
    Ok(trainer.train(data, s.mask_steps)?.mask)
}

// ---------------------------------------------------------------------
// Fig. 6: task-agnostic CE pattern comparison
// ---------------------------------------------------------------------

/// One point of Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Pattern name.
    pub pattern: String,
    /// Mean |off-diagonal Pearson| of coded tiles (legend numbers).
    pub correlation: f32,
    /// Action-recognition accuracy (%, y-axis).
    pub ar_accuracy: f32,
    /// Reconstruction PSNR (dB, x-axis).
    pub rec_psnr: f32,
    /// The paper's reported correlation for this pattern, if any.
    pub paper_correlation: Option<f32>,
}

/// Regenerates Fig. 6: trains the same CE-optimized ViT-S from scratch on
/// AR and REC for each task-agnostic pattern.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_fig6(s: &Scale) -> Result<Vec<Fig6Row>, Box<dyn std::error::Error>> {
    let data = Dataset::new(ssv2_like(SLOTS, FRAME, FRAME), s.dataset_size);
    let (train, test) = data.split(0.8);
    let mut rng = StdRng::seed_from_u64(0xF16);

    let mut masks: Vec<(String, ExposureMask, Option<f32>)> = vec![(
        "decorrelated".into(),
        learn_decorrelated_mask(&train, s)?,
        Some(0.16),
    )];
    masks.push((
        "sparse-random".into(),
        patterns::sparse_random(SLOTS, (TILE, TILE), &mut rng)?,
        Some(0.23),
    ));
    masks.push((
        "random".into(),
        patterns::random(SLOTS, (TILE, TILE), 0.5, &mut rng)?,
        Some(0.29),
    ));
    masks.push((
        "long-exposure".into(),
        patterns::long_exposure(SLOTS, (TILE, TILE))?,
        Some(0.38),
    ));
    masks.push((
        "short-exposure".into(),
        patterns::short_exposure(SLOTS, (TILE, TILE), 8)?,
        Some(0.48),
    ));

    let mut rows = Vec::new();
    for (name, mask, paper_rho) in masks {
        let correlation = measure_pattern_correlation(&train, &mask, 24.min(train.len()))?;

        // AR from scratch.
        let mut ar = SnapPixAr::new(
            VitConfig::snappix_s(FRAME, FRAME, train.num_classes()),
            mask.clone(),
        )?;
        train_action_model(&mut ar, &train, &TrainOptions::experiment(s.ar_epochs))?;
        let ar_accuracy = evaluate_accuracy(&ar, &test)?;

        // REC from scratch.
        let mut rec = SnapPixRec::new(
            VitConfig::snappix_s(FRAME, FRAME, train.num_classes()),
            mask.clone(),
            SLOTS,
            3e-3,
        )?;
        rec.train(&train, s.rec_steps, 6)?;
        let rec_psnr = rec.evaluate_psnr(&test, test.len())?;

        rows.push(Fig6Row {
            pattern: name,
            correlation,
            ar_accuracy,
            rec_psnr,
            paper_correlation: paper_rho,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Table I: comparison with previous systems
// ---------------------------------------------------------------------

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Input type ("CE" or "Video"), as in the paper's Input column.
    pub input: &'static str,
    /// Accuracy per dataset (%), ordered ucf101 / ssv2 / k400.
    pub accuracy: [f32; 3],
    /// Inference throughput (clips/sec) on this machine.
    pub inferences_per_sec: f64,
}

/// Regenerates Table I: SnapPix-S/B vs SVC2D, C3D and the video
/// transformer across the three dataset stand-ins.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_table1(s: &Scale) -> Result<Vec<Table1Row>, Box<dyn std::error::Error>> {
    let configs = [
        ucf101_like(SLOTS, FRAME, FRAME),
        ssv2_like(SLOTS, FRAME, FRAME),
        k400_like(SLOTS, FRAME, FRAME),
    ];
    // A shared decorrelated mask trained on the "pre-training" set, as in
    // the paper (trained once, reused everywhere).
    let pretrain_data = Dataset::new(ssv2_like(SLOTS, FRAME, FRAME), s.dataset_size);
    let mask = learn_decorrelated_mask(&pretrain_data, s)?;

    // Throughput is measured on a fixed batch.
    let rate_batch = pretrain_data.batch(0, 8);

    type Builder = Box<dyn Fn(usize) -> Result<Box<dyn ActionModel>, Box<dyn std::error::Error>>>;
    let builders: Vec<(String, &'static str, Builder)> = vec![
        (
            "SnapPix-S".into(),
            "CE",
            Box::new({
                let mask = mask.clone();
                move |classes| {
                    Ok(Box::new(SnapPixAr::new(
                        VitConfig::snappix_s(FRAME, FRAME, classes),
                        mask.clone(),
                    )?))
                }
            }),
        ),
        (
            "SnapPix-B".into(),
            "CE",
            Box::new({
                let mask = mask.clone();
                move |classes| {
                    Ok(Box::new(SnapPixAr::new(
                        VitConfig::snappix_b(FRAME, FRAME, classes),
                        mask.clone(),
                    )?))
                }
            }),
        ),
        (
            "SVC2D".into(),
            "CE",
            Box::new(|classes| Ok(Box::new(Svc2d::new(SLOTS, FRAME, FRAME, TILE, classes)?))),
        ),
        (
            "C3D".into(),
            "Video",
            Box::new(|classes| Ok(Box::new(C3d::new(SLOTS, FRAME, FRAME, classes)?))),
        ),
        (
            "VideoMAEv2-ST-like".into(),
            "Video",
            Box::new(|classes| Ok(Box::new(VideoVit::new(SLOTS, FRAME, FRAME, classes)?))),
        ),
    ];

    let mut rows: Vec<Table1Row> = Vec::new();
    for (name, input, build) in &builders {
        let mut accuracy = [0.0f32; 3];
        let mut rate = 0.0f64;
        for (d, config) in configs.iter().enumerate() {
            let data = Dataset::new(config.clone(), s.dataset_size);
            let (train, test) = data.split(0.8);
            let mut model = build(train.num_classes())?;
            train_action_model(
                model.as_mut(),
                &train,
                &TrainOptions::experiment(s.ar_epochs),
            )?;
            accuracy[d] = evaluate_accuracy(model.as_ref(), &test)?;
            if d == 0 {
                rate = measure_inference_rate(model.as_ref(), &rate_batch.videos, 3)?;
            }
        }
        rows.push(Table1Row {
            model: name.clone(),
            input,
            accuracy,
            inferences_per_sec: rate,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Sec. VI-D: energy analysis
// ---------------------------------------------------------------------

/// The energy results of Sec. VI-D.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// ADC/MIPI + wireless reduction factor (paper: 16x).
    pub readout_wireless_reduction: f64,
    /// Short-range (passive WiFi) edge energy saving (paper: 7.6x).
    pub short_range_saving: f64,
    /// Long-range (LoRa) edge energy saving (paper: 15.4x).
    pub long_range_saving: f64,
    /// Edge-GPU saving vs VideoMAEv2-ST (paper: 1.4x).
    pub gpu_saving_vs_videomae: f64,
    /// Edge-GPU saving vs C3D (paper: 4.5x).
    pub gpu_saving_vs_c3d: f64,
    /// Accuracy gap of SnapPix-B over the downsample baseline (%; paper:
    /// 9.83 / 6.24 / 16.45 on UCF/SSV2/K400) at reproduction scale, on
    /// the SSV2 stand-in.
    pub downsample_accuracy_gap: f32,
}

/// Regenerates the Sec. VI-D analysis, including the downsample-baseline
/// accuracy comparison.
///
/// # Errors
///
/// Propagates training errors from the accuracy comparison.
pub fn run_energy(s: &Scale) -> Result<EnergyReport, Box<dyn std::error::Error>> {
    let model = EnergyModel::paper();
    let scenario = |wireless| Scenario {
        frame_pixels: 112 * 112,
        slots: SLOTS,
        wireless,
    };
    let gpu = EdgeGpuScenario {
        sensing: scenario(Wireless::PassiveWifi),
        gpu: JetsonXavierModel::paper(),
    };

    // Accuracy gap: SnapPix-B vs downsample(4x4)+video transformer at the
    // same 16x compression rate.
    let data = Dataset::new(ssv2_like(SLOTS, FRAME, FRAME), s.dataset_size);
    let (train, test) = data.split(0.8);
    let mask = learn_decorrelated_mask(&train, s)?;
    let mut snappix_b = SnapPixAr::new(
        VitConfig::snappix_b(FRAME, FRAME, train.num_classes()),
        mask,
    )?;
    train_action_model(
        &mut snappix_b,
        &train,
        &TrainOptions::experiment(s.ar_epochs),
    )?;
    let acc_snappix = evaluate_accuracy(&snappix_b, &test)?;
    let mut down = DownsampleVideoVit::new(SLOTS, FRAME, FRAME, 4, train.num_classes())?;
    train_action_model(&mut down, &train, &TrainOptions::experiment(s.ar_epochs))?;
    let acc_down = evaluate_accuracy(&down, &test)?;

    Ok(EnergyReport {
        readout_wireless_reduction: model
            .readout_and_wireless_reduction(&scenario(Wireless::PassiveWifi)),
        short_range_saving: model.edge_energy_saving(&scenario(Wireless::PassiveWifi)),
        long_range_saving: model.edge_energy_saving(&scenario(Wireless::LoraBackscatter)),
        gpu_saving_vs_videomae: gpu.saving(
            &model,
            GpuModelClass::SnapPixS,
            GpuModelClass::VideoMaeSt,
        ),
        gpu_saving_vs_c3d: gpu.saving(&model, GpuModelClass::SnapPixS, GpuModelClass::C3d),
        downsample_accuracy_gap: acc_snappix - acc_down,
    })
}

// ---------------------------------------------------------------------
// Sec. VI-E: ablation study
// ---------------------------------------------------------------------

/// One ablation configuration's result.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration name.
    pub variant: String,
    /// AR accuracy (%) on the SSV2 stand-in.
    pub accuracy: f32,
    /// The paper's reported cumulative accuracy delta vs the full system,
    /// if any.
    pub paper_delta: Option<f32>,
}

/// Regenerates the Sec. VI-E ablation: full system, no pre-training,
/// random pattern, and global (non-tile-repetitive) pattern, all with
/// SnapPix-S on the SSV2 stand-in.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_ablation(s: &Scale) -> Result<Vec<AblationRow>, Box<dyn std::error::Error>> {
    let data = Dataset::new(ssv2_like(SLOTS, FRAME, FRAME), s.dataset_size);
    let (train, test) = data.split(0.8);
    let classes = train.num_classes();
    let mask = learn_decorrelated_mask(&train, s)?;
    let mut rng = StdRng::seed_from_u64(0xAB1);

    let opts = TrainOptions::experiment(s.ar_epochs);

    // Full system: MAE pre-training + decorrelated tile-repetitive mask.
    let full_acc = {
        let cfg = MaeConfig::for_encoder(VitConfig::snappix_s(FRAME, FRAME, classes), SLOTS);
        let mut mae = MaePretrainer::new(cfg, mask.clone(), 3e-3)?;
        mae.train(&train, s.pretrain_steps, 6)?;
        let mut ar = SnapPixAr::new(VitConfig::snappix_s(FRAME, FRAME, classes), mask.clone())?;
        mae.transfer_encoder(ar.store_mut());
        train_action_model(&mut ar, &train, &opts)?;
        evaluate_accuracy(&ar, &test)?
    };

    // (1) Remove pre-training.
    let no_pretrain_acc = {
        let mut ar = SnapPixAr::new(VitConfig::snappix_s(FRAME, FRAME, classes), mask.clone())?;
        train_action_model(&mut ar, &train, &opts)?;
        evaluate_accuracy(&ar, &test)?
    };

    // (2) Replace the decorrelated pattern with a random one (no
    // pre-training; the paper stacks ablations cumulatively).
    let random_acc = {
        let random = patterns::random(SLOTS, (TILE, TILE), 0.5, &mut rng)?;
        let mut ar = SnapPixAr::new(VitConfig::snappix_s(FRAME, FRAME, classes), random)?;
        train_action_model(&mut ar, &train, &opts)?;
        evaluate_accuracy(&ar, &test)?
    };

    // (3) Replace tile-repetitive with a global pattern: every pixel of
    // the frame draws its own exposure schedule, so patches no longer
    // share a layout the patch-wise MLPs can learn.
    let global_acc = {
        let global = patterns::random(SLOTS, (FRAME, FRAME), 0.5, &mut rng)?;
        let mut ar = SnapPixAr::with_unconstrained_mask(
            VitConfig::snappix_s(FRAME, FRAME, classes),
            global,
        )?;
        train_action_model(&mut ar, &train, &opts)?;
        evaluate_accuracy(&ar, &test)?
    };

    Ok(vec![
        AblationRow {
            variant: "full (pretrain + decorrelated + tile-repetitive)".into(),
            accuracy: full_acc,
            paper_delta: None,
        },
        AblationRow {
            variant: "- pretraining".into(),
            accuracy: no_pretrain_acc,
            paper_delta: Some(-11.39),
        },
        AblationRow {
            variant: "- decorrelated pattern (random)".into(),
            accuracy: random_acc,
            paper_delta: Some(-11.39 - 3.43),
        },
        AblationRow {
            variant: "- tile repetition (global pattern)".into(),
            accuracy: global_acc,
            paper_delta: Some(-11.39 - 3.43 - 23.74),
        },
    ])
}

// ---------------------------------------------------------------------
// Sec. V: area scaling
// ---------------------------------------------------------------------

/// Regenerates the Sec. V area comparison rows.
pub fn run_area() -> Vec<snappix_sensor::area::AreaRow> {
    snappix_sensor::area::area_table(&[2, 4, 6, 8, 10, 12, 14, 16])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_is_smaller_than_experiment_scale() {
        let smoke = Scale::smoke();
        let full = Scale::experiment();
        assert!(smoke.dataset_size < full.dataset_size);
        assert!(smoke.ar_epochs < full.ar_epochs);
    }

    #[test]
    fn area_rows_cover_paper_anchors() {
        let rows = run_area();
        let n8 = rows.iter().find(|r| r.tile == 8).expect("N=8 present");
        assert!((n8.broadcast_wire_side_um - 2.24).abs() < 1e-9);
        let n14 = rows.iter().find(|r| r.tile == 14).expect("N=14 present");
        assert!(n14.broadcast_exceeds_aps);
    }

    #[test]
    fn energy_report_reproduces_paper_ratios() {
        // The analytic parts need no heavy training; use a tiny scale and
        // skip asserting the (stochastic) accuracy-gap sign here.
        let report = run_energy(&Scale {
            dataset_size: 24,
            ar_epochs: 1,
            rec_steps: 1,
            mask_steps: 5,
            pretrain_steps: 1,
        })
        .expect("energy report");
        assert!((report.readout_wireless_reduction - 16.0).abs() < 1e-9);
        assert!((report.short_range_saving - 7.6).abs() < 0.2);
        assert!(report.long_range_saving > 14.0);
        assert!((report.gpu_saving_vs_videomae - 1.4).abs() < 0.1);
        assert!((report.gpu_saving_vs_c3d - 4.5).abs() < 0.3);
    }
}
