//! Regenerates the paper's Sec. V area comparison: per-pixel CE logic and
//! the shift-register vs broadcast wire scaling over tile size.
//!
//! Run with: `cargo run -p snappix-bench --release --bin area`

use snappix_bench::run_area;
use snappix_sensor::area;

fn main() {
    println!("== Sec. V: area overhead ==\n");
    println!(
        "per-pixel CE logic: {:.1} um^2 @65nm (synthesis) -> {:.2} um^2 @22nm (DeepScale)",
        area::LOGIC_AREA_65NM_UM2,
        area::LOGIC_AREA_22NM_UM2
    );
    println!(
        "interpolated: {:.2} um^2 @45nm, {:.2} um^2 @28nm\n",
        area::logic_area_um2(45.0),
        area::logic_area_um2(28.0)
    );

    println!(
        "{:<8} {:>16} {:>16} {:>16} {:>12}",
        "tile N", "shift-reg wires", "broadcast wires", "wire side (um)", "fits APS?"
    );
    for row in run_area() {
        println!(
            "{:<8} {:>16} {:>16} {:>16.2} {:>12}",
            row.tile,
            row.shift_register_wires,
            row.broadcast_wires,
            row.broadcast_wire_side_um,
            if row.broadcast_exceeds_aps {
                "no"
            } else {
                "yes"
            }
        );
    }
    println!(
        "\npaper anchors: 2.24 um at N=8, 3.92 um at N=14 (exceeds the \
         state-of-the-art APS). Broadcast crossover here: N={}; the \
         shift-register design stays at 4 wires forever.",
        area::broadcast_crossover_tile()
    );
}
