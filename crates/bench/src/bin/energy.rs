//! Regenerates the paper's Sec. VI-D energy analysis: edge-server savings
//! (short/long range), the edge-GPU scenario, and the downsample-baseline
//! accuracy comparison.
//!
//! Run with: `cargo run -p snappix-bench --release --bin energy`
//! Set `SNAPPIX_SCALE=smoke` for a fast sanity pass.

use snappix_bench::{run_energy, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    println!("== Sec. VI-D: edge energy analysis (scale {scale:?}) ==\n");
    let r = run_energy(&scale)?;
    println!("{:<44} {:>10} {:>10}", "quantity", "measured", "paper");
    println!(
        "{:<44} {:>9.1}x {:>10}",
        "ADC/MIPI + wireless reduction", r.readout_wireless_reduction, "16x"
    );
    println!(
        "{:<44} {:>9.1}x {:>10}",
        "edge saving, short range (passive WiFi)", r.short_range_saving, "7.6x"
    );
    println!(
        "{:<44} {:>9.1}x {:>10}",
        "edge saving, long range (LoRa backscatter)", r.long_range_saving, "15.4x"
    );
    println!(
        "{:<44} {:>9.1}x {:>10}",
        "edge-GPU saving vs VideoMAEv2-ST", r.gpu_saving_vs_videomae, "1.4x"
    );
    println!(
        "{:<44} {:>9.1}x {:>10}",
        "edge-GPU saving vs C3D", r.gpu_saving_vs_c3d, "4.5x"
    );
    println!(
        "{:<44} {:>9.1}% {:>10}",
        "SnapPix-B over downsample baseline (ssv2)", r.downsample_accuracy_gap, "+6.24%"
    );
    Ok(())
}
