//! Regenerates the paper's Table I: SnapPix-S/B vs SVC2D, C3D and the
//! VideoMAEv2-ST-like video transformer, on the three dataset stand-ins,
//! with inference throughput.
//!
//! Run with: `cargo run -p snappix-bench --release --bin table1`
//! Set `SNAPPIX_SCALE=smoke` for a fast sanity pass.

use snappix_bench::{run_table1, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    println!("== Table I: comparison with previous systems (scale {scale:?}) ==\n");
    let rows = run_table1(&scale)?;
    println!(
        "{:<20} {:<6} {:>12} {:>12} {:>12} {:>12}",
        "model", "input", "ucf101-like", "ssv2-like", "k400-like", "inf/sec"
    );
    for r in &rows {
        println!(
            "{:<20} {:<6} {:>11.1}% {:>11.1}% {:>11.1}% {:>12.0}",
            r.model, r.input, r.accuracy[0], r.accuracy[1], r.accuracy[2], r.inferences_per_sec
        );
    }
    println!(
        "\npaper (112x112, T=16, real datasets):\n\
         SnapPix-S  CE    74.65% 42.38% 47.58%  2282/s\n\
         SnapPix-B  CE    79.14% 45.21% 54.11%   760/s\n\
         SVC2D      CE    41.16% 23.05% 26.09%  2135/s\n\
         C3D        Video 62.70% 33.48% 41.66%   541/s\n\
         VideoMAEv2 Video 72.54% 39.84% 41.99%   750/s\n\
         shape to reproduce: SnapPix variants lead accuracy; CE-input models \
         out-run video-input models at matched width."
    );
    Ok(())
}
