//! Regenerates the paper's Sec. VI-E ablation study on SnapPix-S
//! (SSV2 stand-in, AR task): remove pre-training, replace the
//! decorrelated pattern with random, replace tile-repetitive with a
//! global pattern.
//!
//! Run with: `cargo run -p snappix-bench --release --bin ablation`
//! Set `SNAPPIX_SCALE=smoke` for a fast sanity pass.

use snappix_bench::{run_ablation, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    println!("== Sec. VI-E: ablation study (scale {scale:?}) ==\n");
    let rows = run_ablation(&scale)?;
    let full = rows.first().map(|r| r.accuracy).unwrap_or(f32::NAN);
    println!(
        "{:<48} {:>10} {:>12} {:>14}",
        "variant", "acc (%)", "delta (ours)", "delta (paper)"
    );
    for r in &rows {
        println!(
            "{:<48} {:>10.1} {:>12.1} {:>14}",
            r.variant,
            r.accuracy,
            r.accuracy - full,
            r.paper_delta
                .map(|d| format!("{d:+.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\npaper shape: every removal hurts; the global (non-tile-repetitive) \
         pattern is by far the most damaging, pre-training second."
    );
    Ok(())
}
