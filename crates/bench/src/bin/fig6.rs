//! Regenerates the paper's Fig. 6: task-agnostic CE pattern comparison
//! (AR accuracy vs REC PSNR, with per-pattern Pearson correlation).
//!
//! Run with: `cargo run -p snappix-bench --release --bin fig6`
//! Set `SNAPPIX_SCALE=smoke` for a fast sanity pass.

use snappix_bench::{run_fig6, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    println!("== Fig. 6: task-agnostic CE patterns (scale {scale:?}) ==\n");
    let rows = run_fig6(&scale)?;
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>14}",
        "pattern", "corr (ours)", "corr (paper)", "AR acc (%)", "REC PSNR (dB)"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12.3} {:>14} {:>14.1} {:>14.2}",
            r.pattern,
            r.correlation,
            r.paper_correlation
                .map(|c| format!("{c:.2}"))
                .unwrap_or_else(|| "-".into()),
            r.ar_accuracy,
            r.rec_psnr
        );
    }
    println!(
        "\npaper shape: decorrelated dominates the (AR, REC) Pareto front; \
         random is best-in-REC-only, sparse-random competitive-in-AR-only, \
         long/short worst; ordering tracks the correlation coefficient."
    );
    Ok(())
}
