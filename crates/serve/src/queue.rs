//! The bounded admission queue feeding the worker pool, with the
//! dynamic-batching pop at its heart.
//!
//! One `SharedQueue` sits between every client thread and every worker:
//! clients push individual requests (failing fast with
//! [`ServeError::Overloaded`] when the bound is hit), workers pop
//! *batches* — taking what is queued up to the policy's `max_batch` and
//! holding a partial batch open up to `max_delay` for late arrivals.
//! Everything is plain `std` (`Mutex` + two `Condvar`s), matching the
//! workspace's zero-dependency rule.

use crate::{BatchPolicy, ServeError};
use snappix::Prediction;
use snappix_tensor::Tensor;
use snappix_trace::{DetachedSpan, SpanCtx};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// One queued unit of work: the clip, its timing metadata, and the
/// channel its [`Prediction`] (or error) travels back on.
#[derive(Debug)]
pub(crate) struct Request {
    /// The `[t, h, w]` clip to classify (validated at submission).
    pub clip: Tensor,
    /// When the request was admitted — the start of its queue latency.
    pub enqueued: Instant,
    /// Expire the request instead of running it past this instant.
    pub deadline: Option<Instant>,
    /// Where the answer goes. A dropped receiver is fine: the send
    /// fails silently and the work is simply discarded.
    pub reply: Sender<Result<Prediction, ServeError>>,
    /// The request's trace context — the span the worker should parent
    /// this request's `compute` span to (zero when tracing is off).
    pub trace: SpanCtx,
    /// The open `queue_wait` span, started at admission on the client
    /// thread and finished by the worker that claims the batch.
    pub queue_span: Option<DetachedSpan>,
}

impl Request {
    /// Whether the request's deadline (if any) has passed at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }

    /// Answers the request, ignoring clients that stopped listening.
    pub fn answer(self, result: Result<Prediction, ServeError>) {
        let _ = self.reply.send(result);
    }
}

#[derive(Debug, Default)]
struct State {
    queue: VecDeque<Request>,
    shutting_down: bool,
}

/// The bounded MPMC queue between clients and workers.
#[derive(Debug)]
pub(crate) struct SharedQueue {
    state: Mutex<State>,
    /// Signals workers that requests (or shutdown) arrived.
    not_empty: Condvar,
    /// Signals blocked submitters that capacity (or shutdown) arrived.
    not_full: Condvar,
    capacity: usize,
}

fn relock<'a, T>(
    result: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A worker that panicked mid-batch must not wedge every client: the
    // queue state itself is always left consistent (pushes and drains
    // are atomic under the lock), so recover the guard.
    result.unwrap_or_else(PoisonError::into_inner)
}

impl SharedQueue {
    /// A queue admitting at most `capacity` requests (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SharedQueue {
            state: Mutex::new(State::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently queued (excludes batches already claimed by
    /// workers).
    pub fn depth(&self) -> usize {
        relock(self.state.lock()).queue.len()
    }

    /// Admits `request` without blocking, shedding load when full.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::ShuttingDown`] once shutdown began.
    pub fn try_push(&self, request: Request) -> Result<(), ServeError> {
        let mut state = relock(self.state.lock());
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.queue.len() >= self.capacity {
            return Err(ServeError::Overloaded {
                capacity: self.capacity,
            });
        }
        state.queue.push_back(request);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Admits `request`, blocking until the queue has room — the
    /// cooperative client API (backpressure propagates to the caller
    /// instead of an error).
    ///
    /// The request's `enqueued` stamp is reset at actual admission, so
    /// queue-latency telemetry measures time *in the queue*, not time
    /// blocked at the door waiting for a slot (the request's deadline,
    /// fixed at submission, is unaffected).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] once shutdown began (including while
    /// blocked waiting for room).
    pub fn push_blocking(&self, mut request: Request) -> Result<(), ServeError> {
        let mut state = relock(self.state.lock());
        while state.queue.len() >= self.capacity && !state.shutting_down {
            state = relock(self.not_full.wait(state));
        }
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        request.enqueued = Instant::now();
        state.queue.push_back(request);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Claims the next batch of work for a worker: blocks until at least
    /// one request is queued, then keeps the batch open up to
    /// `policy.max_delay` (or until `policy.max_batch` requests are
    /// waiting), and drains it atomically.
    ///
    /// Returns `None` exactly once the queue is shut down *and* drained —
    /// the worker's signal to exit. A shutdown mid-wait flushes partial
    /// batches immediately instead of sleeping out the delay, so
    /// shutdown latency is one in-flight batch, not `max_delay`.
    ///
    /// The returned batch may contain requests whose deadline has
    /// already passed; the worker expires them (it owns the stats).
    pub fn pop_batch(&self, policy: &BatchPolicy) -> Option<Vec<Request>> {
        let mut state = relock(self.state.lock());
        loop {
            // Phase 1: wait for any work at all.
            while state.queue.is_empty() {
                if state.shutting_down {
                    return None;
                }
                state = relock(self.not_empty.wait(state));
            }
            // Phase 2: hold the batch open for late arrivals.
            let opened = Instant::now();
            while state.queue.len() < policy.max_batch && !state.shutting_down {
                let Some(remaining) = policy.max_delay.checked_sub(opened.elapsed()) else {
                    break;
                };
                if remaining.is_zero() {
                    break;
                }
                let (guard, timeout) = self
                    .not_empty
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            // Phase 3: drain. Another worker may have raced us to the
            // requests while we held the batch open — then go back to
            // waiting rather than returning an empty batch.
            let take = state.queue.len().min(policy.max_batch);
            if take == 0 {
                continue;
            }
            let batch: Vec<Request> = state.queue.drain(..take).collect();
            self.not_full.notify_all();
            return Some(batch);
        }
    }

    /// Begins shutdown: no new admissions, blocked submitters fail with
    /// [`ServeError::ShuttingDown`], and workers exit once the queue is
    /// drained.
    pub fn shutdown(&self) {
        relock(self.state.lock()).shutting_down = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn request() -> (
        Request,
        std::sync::mpsc::Receiver<Result<Prediction, ServeError>>,
    ) {
        let (tx, rx) = channel();
        (
            Request {
                clip: Tensor::zeros(&[2, 4, 4]),
                enqueued: Instant::now(),
                deadline: None,
                reply: tx,
                trace: SpanCtx::default(),
                queue_span: None,
            },
            rx,
        )
    }

    #[test]
    fn try_push_sheds_load_at_capacity() {
        let q = SharedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        let (a, _ra) = request();
        let (b, _rb) = request();
        let (c, _rc) = request();
        q.try_push(a).unwrap();
        q.try_push(b).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(
            q.try_push(c).unwrap_err(),
            ServeError::Overloaded { capacity: 2 }
        );
    }

    #[test]
    fn pop_batch_coalesces_what_is_queued() {
        let q = SharedQueue::new(8);
        let mut receivers = Vec::new();
        for _ in 0..5 {
            let (r, rx) = request();
            q.try_push(r).unwrap();
            receivers.push(rx);
        }
        let policy = BatchPolicy::greedy(4);
        let batch = q.pop_batch(&policy).expect("work queued");
        assert_eq!(batch.len(), 4, "capped at max_batch");
        let rest = q.pop_batch(&policy).expect("one left");
        assert_eq!(rest.len(), 1);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_batch_waits_out_the_delay_for_late_arrivals() {
        let q = std::sync::Arc::new(SharedQueue::new(8));
        let (first, _r1) = request();
        q.try_push(first).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                let (late, rx) = request();
                q.try_push(late).unwrap();
                rx
            })
        };
        let policy = BatchPolicy::new(2, Duration::from_millis(500));
        let batch = q.pop_batch(&policy).expect("work queued");
        assert_eq!(batch.len(), 2, "the late request joined the batch");
        let _rx = producer.join().unwrap();
    }

    #[test]
    fn shutdown_drains_then_stops_workers_and_rejects_clients() {
        let q = SharedQueue::new(4);
        let (queued, _rq) = request();
        q.try_push(queued).unwrap();
        q.shutdown();
        let (rejected, _rr) = request();
        assert_eq!(q.try_push(rejected).unwrap_err(), ServeError::ShuttingDown);
        let (blocked, _rb) = request();
        assert_eq!(
            q.push_blocking(blocked).unwrap_err(),
            ServeError::ShuttingDown
        );
        // The queued request still comes out (drain-before-exit), and a
        // shutdown pop doesn't sleep out the batching delay.
        let policy = BatchPolicy::new(8, Duration::from_secs(30));
        let started = Instant::now();
        let batch = q.pop_batch(&policy).expect("drain pending work");
        assert_eq!(batch.len(), 1);
        assert!(started.elapsed() < Duration::from_secs(5), "no delay sleep");
        assert!(q.pop_batch(&policy).is_none(), "then workers exit");
    }

    #[test]
    fn expiry_and_answers_flow_through_requests() {
        let (mut r, rx) = request();
        assert!(!r.expired(Instant::now()));
        r.deadline = Some(Instant::now() - Duration::from_millis(1));
        assert!(r.expired(Instant::now()));
        r.answer(Err(ServeError::Disconnected));
        assert_eq!(rx.recv().unwrap(), Err(ServeError::Disconnected));
    }
}
