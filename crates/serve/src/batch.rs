//! The dynamic batching policy: how many concurrent requests a worker
//! coalesces into one forward pass, and how long it will hold a partial
//! batch open waiting for more.

use std::time::Duration;

/// Controls how the central batcher trades latency for throughput.
///
/// A worker that finds requests waiting takes up to
/// [`max_batch`](Self::max_batch) of them immediately; when fewer are
/// available it keeps the partial batch open for up to
/// [`max_delay`](Self::max_delay) in case more clients arrive, then runs
/// with what it has. `max_delay` is the most latency batching may *add*
/// to a request; `Duration::ZERO` degenerates to take-what's-there
/// batching (still batching under burst load, never waiting for it).
///
/// # Examples
///
/// ```
/// use snappix_serve::BatchPolicy;
/// use std::time::Duration;
///
/// let policy = BatchPolicy::new(16, Duration::from_millis(2));
/// assert_eq!(policy.max_batch, 16);
/// let greedy = BatchPolicy::greedy(8);
/// assert_eq!(greedy.max_delay, Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest `[batch, t, h, w]` batch a worker will assemble.
    pub max_batch: usize,
    /// Longest a worker holds a partial batch open for late arrivals.
    pub max_delay: Duration,
}

impl BatchPolicy {
    /// A policy batching up to `max_batch` clips (clamped to at least 1)
    /// with at most `max_delay` of added queueing.
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        BatchPolicy {
            max_batch: max_batch.max(1),
            max_delay,
        }
    }

    /// A policy that never waits: workers run immediately with whatever
    /// is queued (up to `max_batch`). Lowest latency; batches only form
    /// when clients genuinely pile up.
    pub fn greedy(max_batch: usize) -> Self {
        BatchPolicy::new(max_batch, Duration::ZERO)
    }
}

impl Default for BatchPolicy {
    /// Batch up to 8 clips (the micro-batch size `Pipeline` defaults to)
    /// holding partial batches open for at most 2 ms.
    fn default() -> Self {
        BatchPolicy::new(8, Duration::from_millis(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_clamp_and_default_sanely() {
        assert_eq!(BatchPolicy::new(0, Duration::ZERO).max_batch, 1);
        let d = BatchPolicy::default();
        assert_eq!(d.max_batch, 8);
        assert_eq!(d.max_delay, Duration::from_millis(2));
        assert_eq!(BatchPolicy::greedy(4).max_delay, Duration::ZERO);
    }
}
