//! The serving engine: worker replicas around a central dynamic batcher.

use crate::queue::{Request, SharedQueue};
use crate::stats::Recorder;
use crate::{BatchPolicy, ServeError, ServerStats, Ticket};
use snappix::prelude::ActionModel;
use snappix::{Error, Pipeline, PipelineBuilder};
use snappix_ce::{AlgorithmicEncoder, Sense};
use snappix_metrics::Registry;
use snappix_tensor::{parallel, Tensor};
use snappix_trace::{ArgValue, SpanCtx, Tracer};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Staged construction of a [`Server`], created by [`Server::builder`].
///
/// The builder owns a [`PipelineBuilder`] *recipe* and stamps one
/// pipeline replica out of it per worker
/// (via [`PipelineBuilder::build_replicas`]), so every worker thread
/// serves from its own copy of the weights with no shared mutable state.
#[derive(Debug, Clone)]
pub struct ServerBuilder<S: Sense = AlgorithmicEncoder> {
    recipe: PipelineBuilder<S>,
    workers: usize,
    queue_depth: usize,
    policy: BatchPolicy,
    worker_threads: Option<usize>,
    tracer: Tracer,
    metrics: Registry,
}

impl<S: Sense> ServerBuilder<S> {
    /// Sets the number of worker threads, each owning one pipeline
    /// replica (clamped to at least 1).
    ///
    /// Defaults to the ambient worker count
    /// ([`parallel::default_threads`]) — one replica per core. Replicas
    /// share one read-only copy of the model weights
    /// ([`PipelineBuilder::build_replicas`]), so scaling workers adds
    /// session/backend state but not weight memory (see
    /// [`ServerStats::resident_weight_bytes`]).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bounds the admission queue (clamped to at least 1): once this
    /// many requests are waiting, [`Server::try_submit`] sheds load with
    /// [`ServeError::Overloaded`] and [`Server::submit`] blocks.
    /// Defaults to 64.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the dynamic batching policy (see [`BatchPolicy`]).
    #[must_use]
    pub fn with_batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Loads the recipe's model weights from the sealed `.spx` artifact
    /// at `path` (see [`PipelineBuilder::with_artifact`]).
    ///
    /// The artifact's payload is read once and shared read-only across
    /// every worker replica, so weight memory stays ~flat as
    /// [`with_workers`](Self::with_workers) scales — observable via
    /// [`ServerStats::resident_weight_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Nn`] when the artifact cannot be opened or does
    /// not match the model.
    pub fn with_artifact(mut self, path: impl AsRef<std::path::Path>) -> Result<Self, Error> {
        self.recipe = self.recipe.with_artifact(path)?;
        Ok(self)
    }

    /// Attaches a span recorder: every admitted request is stamped with
    /// a trace id (carried on its [`Ticket`]), admission opens a
    /// `queue_wait` span, and workers emit one `batch` span per forward
    /// pass with the pipeline's `sense`/`forward`/`readout` spans
    /// nested under it — plus a `compute` span per member request
    /// linking it to the shared batch. The tracer is also installed on
    /// every pipeline replica. Defaults to [`Tracer::disabled`]: no
    /// records, near-zero hot-path cost, and results are bit-for-bit
    /// identical either way.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Sets the metrics [`Registry`] the server records into: request
    /// counters, queue/compute latency histograms (with trace-id
    /// exemplars when a tracer is attached), the batch-size histogram,
    /// and per-stage summaries, all under `snappix_server_*` family
    /// names. [`Server::stats`] is derived from the same cells, so the
    /// registry's rendered page and the stats struct always agree.
    ///
    /// Defaults to an enabled [`Registry::new`] private to this server.
    /// Pass a shared registry to fold the server's families into a
    /// larger page (the gateway does exactly that), or
    /// [`Registry::disabled`] to drop all telemetry recording —
    /// serving results are bit-for-bit identical either way, and
    /// [`Server::stats`] then reads all-zero.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Registry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Pins the data-parallel worker count *inside* each replica,
    /// applied to every replica through the same
    /// [`PipelineBuilder::with_threads`] scoping the rest of the
    /// workspace uses.
    ///
    /// Defaults to `ambient_threads / workers` (at least 1), so the
    /// server as a whole never oversubscribes the machine: N serving
    /// workers times the per-replica budget stays within the
    /// `SNAPPIX_THREADS` / core budget. This (explicit or derived)
    /// budget overrides any `with_threads` already set on the recipe.
    #[must_use]
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads.max(1));
        self
    }

    /// Assembles the server: validates the pipeline recipe, stamps out
    /// one replica per worker, and starts the worker threads.
    ///
    /// # Errors
    ///
    /// Any [`PipelineBuilder::build`] validation error (mask or
    /// normalization mismatch), or [`Error::Pipeline`] when worker
    /// threads cannot be spawned.
    pub fn build(self) -> Result<Server, Error>
    where
        S: Clone + Send + 'static,
        Error: From<S::Error>,
    {
        let workers = self.workers;
        let per_replica = self
            .worker_threads
            .unwrap_or_else(|| (parallel::default_threads() / workers).max(1));
        let replicas = self
            .recipe
            .with_threads(per_replica)
            .with_tracer(self.tracer.clone())
            .build_replicas(workers)?;

        let model = replicas[0].model();
        let cfg = model.encoder().config();
        let expected_clip = [model.mask().num_slots(), cfg.height, cfg.width];
        let num_classes = model.num_classes();
        // Weights are fixed for the server's lifetime, so resident
        // bytes are measured once, before the replicas move into their
        // threads. build_replicas shares one read-only storage, so this
        // stays ~flat in the worker count.
        let resident_weight_bytes = snappix::resident_weight_bytes(&replicas) as u64;

        let queue = Arc::new(SharedQueue::new(self.queue_depth));
        let recorder = Arc::new(Recorder::new(resident_weight_bytes, self.metrics.clone()));
        let mut handles = Vec::with_capacity(workers);
        for (i, replica) in replicas.into_iter().enumerate() {
            let worker_queue = Arc::clone(&queue);
            let worker_recorder = Arc::clone(&recorder);
            let policy = self.policy;
            let spawned = std::thread::Builder::new()
                .name(format!("snappix-serve-{i}"))
                .spawn(move || run_worker(replica, &worker_queue, &worker_recorder, policy));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind the partial pool before reporting.
                    queue.shutdown();
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(Error::Pipeline {
                        context: format!("failed to spawn serving worker {i}: {e}"),
                    });
                }
            }
        }
        Ok(Server {
            queue,
            recorder,
            handles,
            expected_clip,
            num_classes,
            policy: self.policy,
            worker_threads: per_replica,
            tracer: self.tracer,
        })
    }
}

/// A multi-client serving engine over [`Pipeline`] replicas.
///
/// N worker threads each own a private replica of the pipeline (same
/// weights, same backend configuration); a central dynamic batcher
/// coalesces concurrent client requests into one `[batch, t, h, w]`
/// tensor per forward pass under a [`BatchPolicy`]; and a bounded
/// admission queue turns overload into an explicit
/// [`ServeError::Overloaded`] instead of unbounded memory growth.
/// With a deterministic backend (the algorithmic encoder, or a
/// hardware sensor with a noiseless readout) results are *identical*
/// to running each clip through a serial pipeline — batching and
/// replication change the schedule, never the numbers (pinned by the
/// workspace integration tests). A *noisy* readout is stateful: each
/// replica draws from its own RNG stream, so which noise realization a
/// clip receives depends on scheduling — exactly as it would across
/// physical sensors.
///
/// All client methods take `&self`, so one `Server` can be shared across
/// client threads directly (e.g. via [`std::thread::scope`]) or behind
/// an [`Arc`].
///
/// Dropping the server shuts it down gracefully: no new admissions,
/// queued work is drained, workers are joined.
///
/// # Examples
///
/// ```no_run
/// use snappix::prelude::*;
/// use snappix_serve::Server;
///
/// # fn main() -> Result<(), snappix::Error> {
/// let mask = patterns::long_exposure(8, (8, 8))?;
/// let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
/// let server = Server::builder(Pipeline::builder(model))
///     .with_workers(2)
///     .build()?;
/// let ticket = server
///     .submit(&Tensor::zeros(&[8, 16, 16]))
///     .map_err(snappix::Error::from)?;
/// let prediction = ticket.wait().map_err(snappix::Error::from)?;
/// println!("class {} — {}", prediction.label, server.stats());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Server {
    queue: Arc<SharedQueue>,
    recorder: Arc<Recorder>,
    handles: Vec<JoinHandle<()>>,
    expected_clip: [usize; 3],
    num_classes: usize,
    policy: BatchPolicy,
    worker_threads: usize,
    tracer: Tracer,
}

impl Server {
    /// Starts building a server around a pipeline recipe; see
    /// [`ServerBuilder`] for the knobs and their defaults.
    pub fn builder<S: Sense>(recipe: PipelineBuilder<S>) -> ServerBuilder<S> {
        ServerBuilder {
            recipe,
            workers: parallel::default_threads(),
            queue_depth: 64,
            policy: BatchPolicy::default(),
            worker_threads: None,
            tracer: Tracer::disabled(),
            metrics: Registry::new(),
        }
    }

    /// The span recorder requests flow through (disabled unless
    /// [`ServerBuilder::with_tracer`] attached one). Snapshot it to
    /// export traces: `server.tracer().snapshot().to_chrome_json()`.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics registry the server records into (see
    /// [`ServerBuilder::with_metrics`]). Render it for a Prometheus
    /// page — `server.stats()` first to refresh the scrape-time gauges,
    /// then `server.metrics().render()` — or clone it to register
    /// further families alongside the server's.
    pub fn metrics(&self) -> &Registry {
        self.recorder.registry()
    }

    /// Number of worker threads (= pipeline replicas).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The data-parallel thread budget each replica runs under.
    pub fn worker_threads(&self) -> usize {
        self.worker_threads
    }

    /// The admission bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Requests waiting in the admission queue right now.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// The dynamic batching policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of output classes of the served model.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The `[t, h, w]` clip geometry this server accepts.
    pub fn expected_clip(&self) -> [usize; 3] {
        self.expected_clip
    }

    /// A point-in-time telemetry snapshot.
    pub fn stats(&self) -> ServerStats {
        self.recorder.snapshot(self.queue.depth())
    }

    /// Submits a clip without blocking, shedding load when the queue is
    /// full — the building block for callers that implement their own
    /// retry/backoff (or return 503s).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadClip`] for a geometry mismatch,
    /// [`ServeError::Overloaded`] at capacity,
    /// [`ServeError::ShuttingDown`] during shutdown.
    pub fn try_submit(&self, clip: &Tensor) -> Result<Ticket, ServeError> {
        self.admit(clip, None, false)
    }

    /// Like [`try_submit`](Self::try_submit), but the request expires
    /// (with [`ServeError::DeadlineExpired`] on its [`Ticket`]) if it is
    /// still queued `deadline` from now — stale work is shed instead of
    /// served late.
    ///
    /// # Errors
    ///
    /// Same as [`try_submit`](Self::try_submit).
    pub fn try_submit_within(
        &self,
        clip: &Tensor,
        deadline: Duration,
    ) -> Result<Ticket, ServeError> {
        self.admit(clip, Some(deadline), false)
    }

    /// Submits a clip, blocking until the queue has room — backpressure
    /// propagates to the caller as waiting, never as unbounded queueing.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadClip`] for a geometry mismatch,
    /// [`ServeError::ShuttingDown`] during shutdown.
    pub fn submit(&self, clip: &Tensor) -> Result<Ticket, ServeError> {
        self.admit(clip, None, true)
    }

    /// Like [`submit`](Self::submit) with a per-request deadline; the
    /// deadline clock starts when the call is made — time spent blocked
    /// waiting for queue room counts against the deadline.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Self::submit).
    pub fn submit_within(&self, clip: &Tensor, deadline: Duration) -> Result<Ticket, ServeError> {
        self.admit(clip, Some(deadline), true)
    }

    /// Submits one clip and blocks for its [`Prediction`](snappix::Prediction) —
    /// the one-call client API mirroring [`Pipeline::infer_clip`].
    ///
    /// # Errors
    ///
    /// Any admission or execution failure; see [`ServeError`].
    pub fn infer_clip(&self, clip: &Tensor) -> Result<snappix::Prediction, ServeError> {
        self.submit(clip)?.wait()
    }

    /// Submits one clip and blocks for its class label.
    ///
    /// # Errors
    ///
    /// Same as [`infer_clip`](Self::infer_clip).
    pub fn classify(&self, clip: &Tensor) -> Result<usize, ServeError> {
        Ok(self.infer_clip(clip)?.label)
    }

    /// Shuts the server down gracefully — stops admissions, serves what
    /// is queued, joins the workers — and returns the final telemetry.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.recorder.snapshot(0)
    }

    fn admit(
        &self,
        clip: &Tensor,
        deadline: Option<Duration>,
        block: bool,
    ) -> Result<Ticket, ServeError> {
        if clip.shape() != self.expected_clip {
            return Err(ServeError::BadClip {
                context: format!(
                    "expected a [t, h, w] = {:?} clip, got {:?}",
                    self.expected_clip,
                    clip.shape()
                ),
            });
        }
        // Trace stamping: inherit the trace already open on this thread
        // (the gateway's request span) or mint a fresh id, then open the
        // queue-wait span — it starts here on the client thread and is
        // finished by whichever worker claims the batch.
        let parent = self.tracer.current();
        let trace_id = if parent.trace_id != 0 {
            parent.trace_id
        } else {
            self.tracer.new_trace_id()
        };
        let trace = SpanCtx {
            trace_id,
            span_id: parent.span_id,
        };
        let (reply, receiver) = channel();
        let enqueued = Instant::now();
        let request = Request {
            clip: clip.clone(),
            enqueued,
            deadline: deadline.and_then(|d| enqueued.checked_add(d)),
            reply,
            trace,
            queue_span: Some(self.tracer.span_detached("queue_wait", trace)),
        };
        // Shed-path fast exit: under sustained overload there is no
        // point deep-cloning the clip and building a channel only for
        // try_push to reject it. The check is racy (capacity may free
        // up before the authoritative check under the queue lock), but
        // a stale rejection under overload is exactly what shedding
        // means.
        if !block && self.queue.depth() >= self.queue.capacity() {
            self.recorder.record_rejected();
            return Err(ServeError::Overloaded {
                capacity: self.queue.capacity(),
            });
        }
        // Count the admission *before* publishing the request: once it
        // is in the queue a worker may complete it at any moment, and a
        // completion must never be observable ahead of its submission
        // (the conserved-accounting invariant on `ServerStats`). A
        // rejected push compensates below.
        self.recorder.record_admitted();
        let admitted = if block {
            self.queue.push_blocking(request)
        } else {
            self.queue.try_push(request)
        };
        match admitted {
            Ok(()) => Ok(Ticket::new(receiver, trace_id)),
            Err(e) => {
                self.recorder.record_unadmitted();
                if matches!(e, ServeError::Overloaded { .. }) {
                    self.recorder.record_rejected();
                }
                Err(e)
            }
        }
    }

    fn stop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.queue.shutdown();
        for handle in self.handles.drain(..) {
            // A worker that panicked already failed its in-flight batch
            // (clients observe `Disconnected`); the others still drain.
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One worker: claim a batch, expire stale requests, run the rest
/// through the private replica in a single forward pass, fan the
/// per-clip predictions back out.
fn run_worker<S>(
    mut pipeline: Pipeline<S>,
    queue: &SharedQueue,
    recorder: &Recorder,
    policy: BatchPolicy,
) where
    S: Sense,
    Error: From<S::Error>,
{
    let tracer = pipeline.tracer().clone();
    while let Some(mut batch) = queue.pop_batch(&policy) {
        let claimed = Instant::now();
        // Close every member's queue-wait span at the moment the batch
        // is claimed — that is where queueing ends, even for requests
        // that turn out to be expired.
        for request in &mut batch {
            if let Some(span) = request.queue_span.take() {
                span.finish();
            }
        }
        // Each queue-latency sample carries its request's trace id so
        // the registry histogram can attach it as an exemplar.
        let queue_latencies: Vec<(Duration, u64)> = batch
            .iter()
            .map(|r| (claimed.duration_since(r.enqueued), r.trace.trace_id))
            .collect();
        let (expired, live): (Vec<Request>, Vec<Request>) =
            batch.into_iter().partition(|r| r.expired(claimed));
        let expired_count = expired.len() as u64;
        for request in expired {
            let waited = claimed.duration_since(request.enqueued);
            request.answer(Err(ServeError::DeadlineExpired { waited }));
        }
        if live.is_empty() {
            recorder.record_batch(&queue_latencies, expired_count, 0, None);
            continue;
        }

        // One `batch` span per forward pass, on the background trace
        // (many requests share it). It sits on this thread's span
        // stack, so the pipeline's `sense`/`forward`/`readout` guards
        // nest under it with no plumbing.
        let mut batch_span = tracer.span("batch");
        batch_span.arg("clips", live.len());
        // The compute histogram gets one sample per batch; its exemplar
        // points at the first rider's trace.
        let compute_trace = live.first().map_or(0, |r| r.trace.trace_id);
        let batch_ctx = batch_span.ctx();
        let compute_start_us = tracer.now_us();
        let started = Instant::now();
        let clips: Vec<&Tensor> = live.iter().map(|r| &r.clip).collect();
        let result = Tensor::stack(&clips, 0)
            .map_err(Error::Tensor)
            .and_then(|stacked| pipeline.infer(&stacked));
        let compute_end_us = tracer.now_us();
        drop(batch_span);
        if tracer.is_enabled() {
            // Each member request gets its own `compute` span over the
            // one shared forward pass, parented into *its* trace and
            // pointing back at the shared batch span via the arg.
            for request in &live {
                tracer.record_span(
                    "compute",
                    request.trace.trace_id,
                    request.trace.span_id,
                    compute_start_us,
                    compute_end_us,
                    vec![("batch", ArgValue::U64(batch_ctx.span_id))],
                );
            }
        }
        recorder.record_profile(&pipeline.take_profile());
        match result {
            // Guarded so a prediction-count regression in the pipeline
            // fails every rider loudly instead of `zip` silently
            // dropping the tail (which would break the conserved
            // accounting and strand clients on `Disconnected`).
            Ok(inference) if inference.len() == live.len() => {
                let compute = started.elapsed();
                let executed = live.len();
                for (request, prediction) in live.into_iter().zip(inference) {
                    request.answer(Ok(prediction));
                }
                recorder.record_batch(
                    &queue_latencies,
                    expired_count,
                    executed,
                    Some((compute, compute_trace)),
                );
            }
            Ok(inference) => {
                let message = format!(
                    "pipeline returned {} predictions for a batch of {} clips",
                    inference.len(),
                    live.len()
                );
                let executed = live.len();
                for request in live {
                    request.answer(Err(ServeError::Inference {
                        message: message.clone(),
                    }));
                }
                recorder.record_batch(&queue_latencies, expired_count, executed, None);
            }
            Err(e) => {
                let message = e.to_string();
                let executed = live.len();
                for request in live {
                    request.answer(Err(ServeError::Inference {
                        message: message.clone(),
                    }));
                }
                recorder.record_batch(&queue_latencies, expired_count, executed, None);
            }
        }
    }
}
