//! Serving telemetry: registry-backed counters, histograms, and latency
//! quantiles, snapshotted as [`ServerStats`].
//!
//! Every number here lives in a [`snappix_metrics::Registry`]: the
//! request counters are registry [`Counter`]s, queue and compute
//! latency are log-linear [`Histogram`]s (every sample since process
//! start is counted — no sliding window — with bounded relative error
//! and trace-id exemplars), and scrape-time gauges are refreshed on
//! each [`Recorder::snapshot`]. [`ServerStats`] is *derived from* the
//! registry, so the struct the Rust API returns and the Prometheus page
//! the registry renders can never disagree.

use snappix::PipelineProfile;
use snappix_metrics::{
    Counter, Gauge, Histogram, HistogramOpts, HistogramSnapshot, Registry, Summary,
};
use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Order statistics over a latency stream.
///
/// Derived from a log-linear histogram covering *every* sample since
/// the server started: `samples` and `total` are exact, `max` is exact,
/// and the percentiles are nearest-rank with relative error bounded by
/// the histogram's bucket growth factor (2⁻⁶ ≈ 1.6% by default) — see
/// [`HistogramSnapshot::quantile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// All-time number of samples recorded.
    pub samples: u64,
    /// All-time running total of the stream — the summary's `_sum`.
    pub total: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Maximum latency (exact).
    pub max: Duration,
}

impl LatencySummary {
    /// Nearest-rank percentiles over a finite sample set (`samples` is
    /// the set's length; empty input yields the all-zero default).
    ///
    /// Exact ranking over materialized samples — used where the full
    /// sample set is at hand (e.g. the streaming layer's per-stream
    /// reports). The server derives its summaries from histograms via
    /// [`from_histogram`](Self::from_histogram) instead.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let nearest_rank = |p: f64| {
            let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            samples: samples.len() as u64,
            total: samples.iter().sum(),
            p50: nearest_rank(50.0),
            p95: nearest_rank(95.0),
            p99: nearest_rank(99.0),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Derives the summary from a nanosecond-valued histogram snapshot:
    /// count, total, and max are exact; percentiles carry the
    /// histogram's bounded relative error.
    pub fn from_histogram(snap: &HistogramSnapshot) -> Self {
        if snap.count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            samples: snap.count,
            total: Duration::from_nanos(snap.sum),
            p50: Duration::from_nanos(snap.quantile(0.5)),
            p95: Duration::from_nanos(snap.quantile(0.95)),
            p99: Duration::from_nanos(snap.quantile(0.99)),
            max: Duration::from_nanos(snap.max),
        }
    }

    /// The summary's percentiles as `(quantile, value)` pairs, in
    /// ascending quantile order — the exportable form consumed by
    /// metrics encoders.
    pub fn quantiles(&self) -> [(f64, Duration); 3] {
        [(0.5, self.p50), (0.95, self.p95), (0.99, self.p99)]
    }
}

/// A point-in-time snapshot of a [`Server`](crate::Server)'s telemetry,
/// from [`Server::stats`](crate::Server::stats).
///
/// Request accounting is conserved: every admitted request ends up in
/// exactly one of `completed`, `expired` or `failed`, and
/// `submitted = completed + expired + failed + in-flight`.
///
/// With a [disabled](snappix_metrics::Registry::disabled) metrics
/// registry every field is zero — like a disabled tracer, turning
/// telemetry off turns the readouts off, while serving results stay
/// bit-for-bit identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests admitted into the queue (all-time).
    pub submitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Submissions shed with `Overloaded` (never admitted; not part of
    /// `submitted`).
    pub rejected: u64,
    /// Admitted requests expired at their deadline instead of being run.
    pub expired: u64,
    /// Admitted requests that rode in a batch whose inference failed.
    pub failed: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Histogram of executed batch sizes: `batch_sizes[k]` counts the
    /// batches that ran exactly `k` clips (index 0 is never used).
    pub batch_sizes: Vec<u64>,
    /// Requests sitting in the admission queue right now.
    pub queue_depth: usize,
    /// Bytes of model weights resident in memory across all worker
    /// replicas, counting each shared storage buffer once. Replicas
    /// share one read-only weight storage, so this stays ~flat as
    /// workers scale — the observable form of the zero-copy artifact
    /// refactor. Weights are fixed at build time, so this is a
    /// constant, not a counter.
    pub resident_weight_bytes: u64,
    /// Time since the server started.
    pub uptime: Duration,
    /// Time requests spent queued before their batch was claimed.
    pub queue_latency: LatencySummary,
    /// Time batches spent in `Pipeline::infer`.
    pub compute_latency: LatencySummary,
    /// Where batch compute time goes by pipeline stage
    /// (`sense`/`forward`/`readout`), aggregated across every worker
    /// replica. Populated whenever metrics are enabled — stage timing
    /// does not require a tracer.
    pub profile: PipelineProfile,
}

impl ServerStats {
    /// Completed requests per second of uptime.
    pub fn throughput(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Mean clips per executed batch — the direct measure of how much
    /// the dynamic batcher is coalescing.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.clips_batched() as f64 / self.batches as f64
    }

    /// Total clips that rode in executed batches (the batch-size
    /// histogram's weighted sum). Every such clip was answered — with a
    /// prediction or a batch failure — so this always equals
    /// `completed + failed`.
    pub fn clips_batched(&self) -> u64 {
        self.batch_sizes
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum()
    }

    /// Requests admitted but not yet resolved: queued, riding in a
    /// running batch, or claimed-but-unanswered at snapshot time.
    ///
    /// Saturating: a conservation violation can never make this wrap,
    /// so call [`check_conserved`](Self::check_conserved) when drift
    /// must be *detected* rather than hidden.
    pub fn in_flight(&self) -> u64 {
        self.submitted
            .saturating_sub(self.completed + self.expired + self.failed)
    }

    /// Verifies the snapshot's conserved-accounting invariants,
    /// returning the in-flight count on success:
    ///
    /// * every resolved request was first admitted
    ///   (`completed + expired + failed <= submitted`), and
    /// * every clip that rode an executed batch was resolved as exactly
    ///   one of completed/failed
    ///   (`clips_batched() == completed + failed`).
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant with both
    /// sides of the failed equation — the payload for
    /// [`debug_assert_conserved`](Self::debug_assert_conserved) and for
    /// operators alerting on a drifting metrics page.
    pub fn check_conserved(&self) -> Result<u64, String> {
        let resolved = self.completed + self.expired + self.failed;
        if resolved > self.submitted {
            return Err(format!(
                "accounting drift: completed {} + expired {} + failed {} = {} \
                 exceeds submitted {}",
                self.completed, self.expired, self.failed, resolved, self.submitted
            ));
        }
        let batched = self.clips_batched();
        if batched != self.completed + self.failed {
            return Err(format!(
                "accounting drift: batch-size histogram holds {} clips but \
                 completed {} + failed {} = {}",
                batched,
                self.completed,
                self.failed,
                self.completed + self.failed
            ));
        }
        Ok(self.submitted - resolved)
    }

    /// Debug-asserts [`check_conserved`](Self::check_conserved): in
    /// debug builds (and therefore in every test) a counter drift
    /// panics at the telemetry surface that would have published it; in
    /// release builds this is free and the page is served as-is.
    ///
    /// The gateway's `/stats` and `/metrics` handlers call this on
    /// every snapshot they export, so a conservation regression
    /// anywhere in the serving stack fails the integration suite
    /// instead of silently mis-reporting to operators.
    #[track_caller]
    pub fn debug_assert_conserved(&self) {
        debug_assert!(
            self.check_conserved().is_ok(),
            "{}",
            self.check_conserved().expect_err("checked")
        );
    }
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} of {} requests in {:.2?} ({:.1} clips/s; {} shed, {} expired, {} failed)",
            self.completed,
            self.submitted,
            self.uptime,
            self.throughput(),
            self.rejected,
            self.expired,
            self.failed,
        )?;
        writeln!(
            f,
            "batches: {} executed, mean size {:.2}, queue depth {}, resident weights {} B",
            self.batches,
            self.mean_batch_size(),
            self.queue_depth,
            self.resident_weight_bytes,
        )?;
        writeln!(
            f,
            "queue latency:   p50 {:.2?}  p95 {:.2?}  p99 {:.2?}  max {:.2?}",
            self.queue_latency.p50,
            self.queue_latency.p95,
            self.queue_latency.p99,
            self.queue_latency.max,
        )?;
        writeln!(
            f,
            "compute latency: p50 {:.2?}  p95 {:.2?}  p99 {:.2?}  max {:.2?}",
            self.compute_latency.p50,
            self.compute_latency.p95,
            self.compute_latency.p99,
            self.compute_latency.max,
        )?;
        write!(f, "stages: {}", self.profile)
    }
}

/// Exact side data the registry's fixed-shape metrics cannot carry: the
/// per-size batch histogram (the conserved-accounting witness) and the
/// per-stage profile with its `max` fields.
#[derive(Debug, Default)]
struct Aux {
    batch_sizes: Vec<u64>,
    profile: PipelineProfile,
}

/// The shared recorder workers and the submission path write into. All
/// counters and latency samples land in [`Registry`] cells — atomics on
/// the hot path — so the same numbers surface as [`ServerStats`] *and*
/// on any `/metrics` page rendered from the registry.
#[derive(Debug)]
pub(crate) struct Recorder {
    started: Instant,
    /// Fixed at build time: weights never change while serving.
    resident_weight_bytes: u64,
    registry: Registry,
    submitted: Counter,
    completed: Counter,
    rejected: Counter,
    expired: Counter,
    failed: Counter,
    batches: Counter,
    batch_size: Histogram,
    queue_latency: Histogram,
    compute_latency: Histogram,
    stages: [(Summary, &'static str); 3],
    in_flight: Gauge,
    queue_depth: Gauge,
    uptime: Gauge,
    aux: Mutex<Aux>,
}

impl Recorder {
    /// Registers the `snappix_server_*` families on `registry` (no-ops
    /// when it is disabled) and wires the recorder to their handles.
    pub fn new(resident_weight_bytes: u64, registry: Registry) -> Self {
        let counter = |name, help| registry.counter(name, help);
        let submitted = counter(
            "snappix_server_requests_submitted_total",
            "Requests admitted into the serving queue.",
        );
        let completed = counter(
            "snappix_server_requests_completed_total",
            "Admitted requests answered with a prediction.",
        );
        let rejected = counter(
            "snappix_server_requests_rejected_total",
            "Submissions shed with Overloaded (never admitted).",
        );
        let expired = counter(
            "snappix_server_requests_expired_total",
            "Admitted requests expired at their deadline instead of being run.",
        );
        let failed = counter(
            "snappix_server_requests_failed_total",
            "Admitted requests that rode in a batch whose inference failed.",
        );
        let batches = counter(
            "snappix_server_batches_total",
            "Batched forward passes executed.",
        );
        // 7 sub-bucket bits: every batch size below 128 gets its own
        // singleton bucket, so `le` values are exact sizes.
        let batch_size = registry.histogram(
            "snappix_server_batch_size",
            "Executed batch sizes (clips per forward pass).",
            HistogramOpts::default().with_sub_bucket_bits(7),
        );
        let queue_latency = registry.histogram(
            "snappix_server_queue_latency_seconds",
            "Time requests spent queued before their batch was claimed.",
            HistogramOpts::nanos().with_exemplars(),
        );
        let compute_latency = registry.histogram(
            "snappix_server_compute_latency_seconds",
            "Time batches spent in the pipeline forward pass.",
            HistogramOpts::nanos().with_exemplars(),
        );
        let stages = ["sense", "forward", "readout"].map(|stage| {
            (
                registry.summary_with(
                    "snappix_server_stage_latency_seconds",
                    "Forward-pass wall time by pipeline stage, aggregated across worker replicas.",
                    1e-9,
                    &[("stage", stage)],
                ),
                stage,
            )
        });
        let in_flight = registry.gauge(
            "snappix_server_requests_in_flight",
            "Admitted requests not yet resolved (queued or mid-batch).",
        );
        let queue_depth = registry.gauge(
            "snappix_server_queue_depth",
            "Requests sitting in the admission queue right now.",
        );
        let uptime = registry.gauge(
            "snappix_server_uptime_seconds",
            "Seconds since the server started.",
        );
        registry
            .gauge(
                "snappix_server_resident_weight_bytes",
                "Bytes of model weights resident across all worker replicas \
                 (shared storage counted once).",
            )
            .set(resident_weight_bytes as f64);
        Recorder {
            started: Instant::now(),
            resident_weight_bytes,
            registry,
            submitted,
            completed,
            rejected,
            expired,
            failed,
            batches,
            batch_size,
            queue_latency,
            compute_latency,
            stages,
            in_flight,
            queue_depth,
            uptime,
            aux: Mutex::new(Aux::default()),
        }
    }

    /// The registry the recorder's families live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Aux> {
        self.aux.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn record_admitted(&self) {
        self.submitted.inc();
    }

    /// Undoes a [`record_admitted`](Self::record_admitted) whose push
    /// was then rejected. Admissions are counted *before* the request
    /// is published to the queue (so a racing worker can never complete
    /// an uncounted request); a failed push compensates here.
    pub fn record_unadmitted(&self) {
        self.submitted.deduct(1);
    }

    pub fn record_rejected(&self) {
        self.rejected.inc();
    }

    /// Folds one replica's per-stage profile delta (from
    /// [`Pipeline::take_profile`](snappix::Pipeline::take_profile))
    /// into the server-wide aggregate. Workers call this after every
    /// batch.
    pub fn record_profile(&self, delta: &PipelineProfile) {
        if delta.is_empty() || !self.registry.is_enabled() {
            return;
        }
        for (summary, stage) in &self.stages {
            let s = match *stage {
                "sense" => delta.sense,
                "forward" => delta.forward,
                _ => delta.readout,
            };
            summary.observe_many(s.calls, s.total.as_nanos() as u64);
        }
        self.lock().profile.merge(delta);
    }

    /// Records one claimed batch: per-request queue latencies (each
    /// carrying its request's trace id for exemplars), the expiry
    /// count, and (when any requests remain) the executed batch size
    /// with its compute time and a representative trace id.
    pub fn record_batch(
        &self,
        queue_latencies: &[(Duration, u64)],
        expired: u64,
        executed: usize,
        compute: Option<(Duration, u64)>,
    ) {
        for &(latency, trace_id) in queue_latencies {
            self.queue_latency
                .record_with_trace(latency.as_nanos() as u64, trace_id);
        }
        self.expired.add(expired);
        if executed > 0 {
            self.batches.inc();
            self.batch_size.record(executed as u64);
            if self.registry.is_enabled() {
                let mut aux = self.lock();
                if aux.batch_sizes.len() <= executed {
                    aux.batch_sizes.resize(executed + 1, 0);
                }
                aux.batch_sizes[executed] += 1;
            }
            if let Some((compute, trace_id)) = compute {
                self.compute_latency
                    .record_with_trace(compute.as_nanos() as u64, trace_id);
                self.completed.add(executed as u64);
            } else {
                self.failed.add(executed as u64);
            }
        }
    }

    pub fn snapshot(&self, queue_depth: usize) -> ServerStats {
        let (batch_sizes, profile) = {
            let aux = self.lock();
            (aux.batch_sizes.clone(), aux.profile)
        };
        let stats = ServerStats {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            rejected: self.rejected.get(),
            expired: self.expired.get(),
            failed: self.failed.get(),
            batches: self.batches.get(),
            batch_sizes,
            queue_depth,
            resident_weight_bytes: self.resident_weight_bytes,
            uptime: self.started.elapsed(),
            queue_latency: LatencySummary::from_histogram(&self.queue_latency.snapshot()),
            compute_latency: LatencySummary::from_histogram(&self.compute_latency.snapshot()),
            profile,
        };
        // Refresh the scrape-time gauges: a registry render right after
        // a snapshot (the gateway's `/metrics` path) sees current
        // values.
        self.in_flight.set(stats.in_flight() as f64);
        self.queue_depth.set(queue_depth as f64);
        self.uptime.set(stats.uptime.as_secs_f64());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> Recorder {
        Recorder::new(1024, Registry::new())
    }

    #[test]
    fn accounting_is_conserved_across_outcomes() {
        let r = recorder();
        for _ in 0..10 {
            r.record_admitted();
        }
        // A rejected push compensates its optimistic admission count.
        r.record_admitted();
        r.record_unadmitted();
        r.record_rejected();
        // Batch of 4: one expired, three ran fine.
        r.record_batch(
            &[(Duration::from_millis(1), 7); 4],
            1,
            3,
            Some((Duration::from_millis(7), 7)),
        );
        // Batch of 2 that failed inference.
        r.record_batch(&[(Duration::from_millis(2), 0); 2], 0, 2, None);
        // Batch that expired entirely: nothing executed.
        r.record_batch(&[(Duration::from_millis(3), 0)], 1, 0, None);
        let s = r.snapshot(4);
        assert_eq!(s.submitted, 10);
        assert_eq!(s.rejected, 1);
        assert_eq!((s.completed, s.expired, s.failed), (3, 2, 2));
        assert_eq!(
            s.completed + s.expired + s.failed + 3,
            s.submitted,
            "3 in flight"
        );
        assert_eq!(s.batches, 2, "empty batches are not executions");
        assert_eq!(s.batch_sizes[3], 1);
        assert_eq!(s.batch_sizes[2], 1);
        assert_eq!(s.queue_depth, 4);
        assert_eq!(s.resident_weight_bytes, 1024);
        assert_eq!(s.queue_latency.samples, 7);
        assert_eq!(s.compute_latency.samples, 1);
        // Running totals back the exporter's `_sum` lines:
        // 4 x 1ms + 2 x 2ms + 1 x 3ms queued, one 7ms forward pass.
        assert_eq!(s.queue_latency.total, Duration::from_millis(11));
        assert_eq!(s.compute_latency.total, Duration::from_millis(7));
        assert!((s.mean_batch_size() - 2.5).abs() < 1e-9);
        assert!(s.throughput() >= 0.0);
        let text = s.to_string();
        assert!(text.contains("batches: 2"));
        assert!(text.contains("resident weights 1024 B"));
        assert!(text.contains("p99"));
        // The registry agrees with the struct, line for line.
        let page = r.registry().render();
        for needle in [
            "snappix_server_requests_submitted_total 10\n",
            "snappix_server_requests_completed_total 3\n",
            "snappix_server_requests_in_flight 3\n",
            "snappix_server_queue_depth 4\n",
            "snappix_server_resident_weight_bytes 1024\n",
            "snappix_server_batches_total 2\n",
            "snappix_server_batch_size_sum 5\n",
            "snappix_server_batch_size_count 2\n",
            "snappix_server_queue_latency_seconds_count 7\n",
            "snappix_server_compute_latency_seconds_count 1\n",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
    }

    #[test]
    fn stage_profiles_merge_across_replicas() {
        let r = recorder();
        let mut a = PipelineProfile::default();
        a.sense.calls = 2;
        a.sense.total = Duration::from_millis(4);
        a.sense.max = Duration::from_millis(3);
        a.batches = 2;
        a.clips = 5;
        let mut b = PipelineProfile::default();
        b.sense.calls = 1;
        b.sense.total = Duration::from_millis(10);
        b.sense.max = Duration::from_millis(10);
        b.forward.calls = 1;
        b.forward.total = Duration::from_millis(6);
        b.forward.max = Duration::from_millis(6);
        b.batches = 1;
        b.clips = 3;
        r.record_profile(&a);
        r.record_profile(&b);
        r.record_profile(&PipelineProfile::default()); // no-op
        let s = r.snapshot(0);
        assert_eq!(s.profile.sense.calls, 3);
        assert_eq!(s.profile.sense.total, Duration::from_millis(14));
        assert_eq!(s.profile.sense.max, Duration::from_millis(10));
        assert_eq!(s.profile.forward.calls, 1);
        assert_eq!((s.profile.batches, s.profile.clips), (3, 8));
        assert!(s.to_string().contains("stages:"));
        // The stage summaries mirror the profile on the rendered page.
        let page = r.registry().render();
        assert!(
            page.contains("snappix_server_stage_latency_seconds_sum{stage=\"sense\"} 0.014\n"),
            "{page}"
        );
        assert!(
            page.contains("snappix_server_stage_latency_seconds_count{stage=\"sense\"} 3\n"),
            "{page}"
        );
        assert!(
            page.contains("snappix_server_stage_latency_seconds_count{stage=\"forward\"} 1\n"),
            "{page}"
        );
    }

    #[test]
    fn conservation_helpers_detect_drift() {
        let r = recorder();
        for _ in 0..6 {
            r.record_admitted();
        }
        r.record_batch(
            &[(Duration::from_millis(1), 0); 4],
            1,
            3,
            Some((Duration::from_millis(2), 0)),
        );
        let healthy = r.snapshot(2);
        assert_eq!(healthy.clips_batched(), 3);
        assert_eq!(healthy.in_flight(), 2);
        assert_eq!(healthy.check_conserved(), Ok(2));
        healthy.debug_assert_conserved();

        // Drift type 1: more resolutions than admissions.
        let mut drifted = healthy.clone();
        drifted.completed += 10;
        drifted.batch_sizes[3] = 0;
        drifted.batch_sizes.resize(14, 0);
        drifted.batch_sizes[13] = 1;
        assert_eq!(drifted.in_flight(), 0, "saturating, never wrapping");
        let err = drifted.check_conserved().expect_err("over-resolved");
        assert!(err.contains("exceeds submitted"), "{err}");

        // Drift type 2: histogram disagrees with the outcome counters.
        let mut skewed = healthy;
        skewed.batch_sizes[3] = 2;
        let err = skewed.check_conserved().expect_err("histogram drift");
        assert!(err.contains("histogram"), "{err}");
    }

    #[test]
    #[should_panic(expected = "accounting drift")]
    fn debug_assert_conserved_panics_on_drift_in_debug_builds() {
        let mut s = recorder().snapshot(0);
        s.completed = 1; // never admitted
        if cfg!(debug_assertions) {
            s.debug_assert_conserved();
        } else {
            // Release builds compile the assert out; satisfy the
            // should_panic expectation explicitly.
            panic!("accounting drift checks are debug-only");
        }
    }

    #[test]
    fn quantiles_export_in_ascending_order() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let q = LatencySummary::from_samples(&samples).quantiles();
        assert_eq!(
            q,
            [
                (0.5, Duration::from_millis(50)),
                (0.95, Duration::from_millis(95)),
                (0.99, Duration::from_millis(99)),
            ]
        );
    }

    #[test]
    fn from_samples_is_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.samples, 100);
        assert_eq!(s.total, Duration::from_millis(5050));
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p95, Duration::from_millis(95));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        // Order-independent: ranking sorts internally.
        let reversed: Vec<Duration> = samples.iter().rev().copied().collect();
        assert_eq!(LatencySummary::from_samples(&reversed), s);
    }

    #[test]
    fn no_samples_are_lost_under_sustained_load() {
        // 5000 samples — beyond the 4096-sample sliding window the
        // pre-registry recorder ranked over. Every one lands in the
        // histogram: `_count` on the rendered page equals submissions
        // exactly, and the totals stay exact.
        let r = recorder();
        const BATCH: usize = 50;
        const BATCHES: usize = 100;
        let mut expected_total = Duration::ZERO;
        for batch in 0..BATCHES {
            for _ in 0..BATCH {
                r.record_admitted();
            }
            let latencies: Vec<(Duration, u64)> = (0..BATCH)
                .map(|i| (Duration::from_micros((batch * BATCH + i) as u64 + 1), 0))
                .collect();
            expected_total += latencies.iter().map(|&(d, _)| d).sum::<Duration>();
            r.record_batch(&latencies, 0, BATCH, Some((Duration::from_millis(1), 0)));
        }
        let s = r.snapshot(0);
        assert_eq!(s.submitted, (BATCH * BATCHES) as u64);
        assert_eq!(s.queue_latency.samples, 5000, "all 5000 samples counted");
        assert_eq!(s.queue_latency.total, expected_total, "sum stays exact");
        assert_eq!(s.queue_latency.max, Duration::from_micros(5000));
        // p99 of 1..=5000 µs is 4950 µs; the histogram's answer is
        // within its configured relative error (2^-6).
        let p99 = s.queue_latency.p99.as_micros() as f64;
        assert!((p99 - 4950.0).abs() / 4950.0 <= 1.0 / 64.0, "p99 {p99}");
        let page = r.registry().render();
        assert!(
            page.contains("snappix_server_queue_latency_seconds_count 5000\n"),
            "{page}"
        );
        s.debug_assert_conserved();
    }

    #[test]
    fn disabled_registry_records_nothing_and_stays_conserved() {
        let r = Recorder::new(512, Registry::disabled());
        r.record_admitted();
        r.record_batch(
            &[(Duration::from_millis(1), 0)],
            0,
            1,
            Some((Duration::from_millis(1), 0)),
        );
        let s = r.snapshot(0);
        assert_eq!(s.submitted, 0, "disabled registry counts nothing");
        assert_eq!(s.batch_sizes, Vec::<u64>::new());
        assert_eq!(s.queue_latency, LatencySummary::default());
        s.debug_assert_conserved();
        assert_eq!(r.registry().render(), "");
    }
}
