//! Serving telemetry: counters, a batch-size histogram, and latency
//! percentiles, snapshotted as [`ServerStats`].

use snappix::PipelineProfile;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How many of the most recent latency samples percentile summaries are
/// computed over. Bounded so a long-lived server's telemetry memory is
/// constant; the counters remain all-time.
const LATENCY_WINDOW: usize = 4096;

/// Order statistics over a latency stream.
///
/// Percentiles are nearest-rank over the most recent 4096 samples (a
/// sliding window, so they track the server's *current* behaviour);
/// `samples` and `total` cover the whole stream, which is what lets
/// the Prometheus exporter emit both `_count` and `_sum` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// All-time number of samples recorded.
    pub samples: u64,
    /// All-time running total of the stream — the summary's `_sum`.
    pub total: Duration,
    /// Median latency over the window.
    pub p50: Duration,
    /// 95th-percentile latency over the window.
    pub p95: Duration,
    /// 99th-percentile latency over the window.
    pub p99: Duration,
    /// Maximum latency over the window.
    pub max: Duration,
}

impl LatencySummary {
    /// Nearest-rank percentiles over a finite sample set (`samples` is
    /// the set's length; empty input yields the all-zero default).
    ///
    /// This is the one shared percentile implementation: the server's
    /// sliding telemetry windows and the streaming layer's per-stream
    /// reports both rank through it.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let nearest_rank = |p: f64| {
            let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            samples: samples.len() as u64,
            total: samples.iter().sum(),
            p50: nearest_rank(50.0),
            p95: nearest_rank(95.0),
            p99: nearest_rank(99.0),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// The summary's percentiles as `(quantile, value)` pairs, in
    /// ascending quantile order — the exportable form consumed by
    /// metrics encoders (e.g. the gateway's Prometheus `/metrics`
    /// endpoint, where each pair becomes one `{quantile="..."}` sample).
    pub fn quantiles(&self) -> [(f64, Duration); 3] {
        [(0.5, self.p50), (0.95, self.p95), (0.99, self.p99)]
    }
}

/// A point-in-time snapshot of a [`Server`](crate::Server)'s telemetry,
/// from [`Server::stats`](crate::Server::stats).
///
/// Request accounting is conserved: every admitted request ends up in
/// exactly one of `completed`, `expired` or `failed`, and
/// `submitted = completed + expired + failed + in-flight`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests admitted into the queue (all-time).
    pub submitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Submissions shed with `Overloaded` (never admitted; not part of
    /// `submitted`).
    pub rejected: u64,
    /// Admitted requests expired at their deadline instead of being run.
    pub expired: u64,
    /// Admitted requests that rode in a batch whose inference failed.
    pub failed: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Histogram of executed batch sizes: `batch_sizes[k]` counts the
    /// batches that ran exactly `k` clips (index 0 is never used).
    pub batch_sizes: Vec<u64>,
    /// Requests sitting in the admission queue right now.
    pub queue_depth: usize,
    /// Bytes of model weights resident in memory across all worker
    /// replicas, counting each shared storage buffer once. Replicas
    /// share one read-only weight storage, so this stays ~flat as
    /// workers scale — the observable form of the zero-copy artifact
    /// refactor. Weights are fixed at build time, so this is a
    /// constant, not a counter.
    pub resident_weight_bytes: u64,
    /// Time since the server started.
    pub uptime: Duration,
    /// Time requests spent queued before their batch was claimed.
    pub queue_latency: LatencySummary,
    /// Time batches spent in `Pipeline::infer`.
    pub compute_latency: LatencySummary,
    /// Where batch compute time goes by pipeline stage
    /// (`sense`/`forward`/`readout`), aggregated across every worker
    /// replica. Always populated — stage timing does not require a
    /// tracer.
    pub profile: PipelineProfile,
}

impl ServerStats {
    /// Completed requests per second of uptime.
    pub fn throughput(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Mean clips per executed batch — the direct measure of how much
    /// the dynamic batcher is coalescing.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.clips_batched() as f64 / self.batches as f64
    }

    /// Total clips that rode in executed batches (the batch-size
    /// histogram's weighted sum). Every such clip was answered — with a
    /// prediction or a batch failure — so this always equals
    /// `completed + failed`.
    pub fn clips_batched(&self) -> u64 {
        self.batch_sizes
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum()
    }

    /// Requests admitted but not yet resolved: queued, riding in a
    /// running batch, or claimed-but-unanswered at snapshot time.
    ///
    /// Saturating: a conservation violation can never make this wrap,
    /// so call [`check_conserved`](Self::check_conserved) when drift
    /// must be *detected* rather than hidden.
    pub fn in_flight(&self) -> u64 {
        self.submitted
            .saturating_sub(self.completed + self.expired + self.failed)
    }

    /// Verifies the snapshot's conserved-accounting invariants,
    /// returning the in-flight count on success:
    ///
    /// * every resolved request was first admitted
    ///   (`completed + expired + failed <= submitted`), and
    /// * every clip that rode an executed batch was resolved as exactly
    ///   one of completed/failed
    ///   (`clips_batched() == completed + failed`).
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant with both
    /// sides of the failed equation — the payload for
    /// [`debug_assert_conserved`](Self::debug_assert_conserved) and for
    /// operators alerting on a drifting metrics page.
    pub fn check_conserved(&self) -> Result<u64, String> {
        let resolved = self.completed + self.expired + self.failed;
        if resolved > self.submitted {
            return Err(format!(
                "accounting drift: completed {} + expired {} + failed {} = {} \
                 exceeds submitted {}",
                self.completed, self.expired, self.failed, resolved, self.submitted
            ));
        }
        let batched = self.clips_batched();
        if batched != self.completed + self.failed {
            return Err(format!(
                "accounting drift: batch-size histogram holds {} clips but \
                 completed {} + failed {} = {}",
                batched,
                self.completed,
                self.failed,
                self.completed + self.failed
            ));
        }
        Ok(self.submitted - resolved)
    }

    /// Debug-asserts [`check_conserved`](Self::check_conserved): in
    /// debug builds (and therefore in every test) a counter drift
    /// panics at the telemetry surface that would have published it; in
    /// release builds this is free and the page is served as-is.
    ///
    /// The gateway's `/stats` and `/metrics` handlers call this on
    /// every snapshot they export, so a conservation regression
    /// anywhere in the serving stack fails the integration suite
    /// instead of silently mis-reporting to operators.
    #[track_caller]
    pub fn debug_assert_conserved(&self) {
        debug_assert!(
            self.check_conserved().is_ok(),
            "{}",
            self.check_conserved().expect_err("checked")
        );
    }
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} of {} requests in {:.2?} ({:.1} clips/s; {} shed, {} expired, {} failed)",
            self.completed,
            self.submitted,
            self.uptime,
            self.throughput(),
            self.rejected,
            self.expired,
            self.failed,
        )?;
        writeln!(
            f,
            "batches: {} executed, mean size {:.2}, queue depth {}, resident weights {} B",
            self.batches,
            self.mean_batch_size(),
            self.queue_depth,
            self.resident_weight_bytes,
        )?;
        writeln!(
            f,
            "queue latency:   p50 {:.2?}  p95 {:.2?}  p99 {:.2?}  max {:.2?}",
            self.queue_latency.p50,
            self.queue_latency.p95,
            self.queue_latency.p99,
            self.queue_latency.max,
        )?;
        writeln!(
            f,
            "compute latency: p50 {:.2?}  p95 {:.2?}  p99 {:.2?}  max {:.2?}",
            self.compute_latency.p50,
            self.compute_latency.p95,
            self.compute_latency.p99,
            self.compute_latency.max,
        )?;
        write!(f, "stages: {}", self.profile)
    }
}

/// A bounded sliding window of latency samples.
#[derive(Debug, Clone, Default)]
struct Window {
    recent: VecDeque<Duration>,
    seen: u64,
    total: Duration,
}

impl Window {
    fn record(&mut self, sample: Duration) {
        if self.recent.len() == LATENCY_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back(sample);
        self.seen += 1;
        self.total += sample;
    }

    fn summarize(&self) -> LatencySummary {
        let recent: Vec<Duration> = self.recent.iter().copied().collect();
        LatencySummary {
            // The window ranks over its recent samples but reports the
            // all-time stream count and running total.
            samples: self.seen,
            total: self.total,
            ..LatencySummary::from_samples(&recent)
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    rejected: u64,
    expired: u64,
    failed: u64,
    batches: u64,
    batch_sizes: Vec<u64>,
    queue_latency: Window,
    compute_latency: Window,
    profile: PipelineProfile,
}

/// The shared, internally-locked recorder workers and the submission
/// path write into. Snapshotting never blocks the hot path for long:
/// every write is a counter bump or a ring-buffer push.
#[derive(Debug)]
pub(crate) struct Recorder {
    started: Instant,
    /// Fixed at build time: weights never change while serving.
    resident_weight_bytes: u64,
    counters: Mutex<Counters>,
}

impl Recorder {
    pub fn new(resident_weight_bytes: u64) -> Self {
        Recorder {
            started: Instant::now(),
            resident_weight_bytes,
            counters: Mutex::new(Counters::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Counters> {
        self.counters.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn record_admitted(&self) {
        self.lock().submitted += 1;
    }

    /// Undoes a [`record_admitted`](Self::record_admitted) whose push
    /// was then rejected. Admissions are counted *before* the request
    /// is published to the queue (so a racing worker can never complete
    /// an uncounted request); a failed push compensates here.
    pub fn record_unadmitted(&self) {
        let mut c = self.lock();
        c.submitted = c.submitted.saturating_sub(1);
    }

    pub fn record_rejected(&self) {
        self.lock().rejected += 1;
    }

    /// Folds one replica's per-stage profile delta (from
    /// [`Pipeline::take_profile`](snappix::Pipeline::take_profile))
    /// into the server-wide aggregate. Workers call this after every
    /// batch.
    pub fn record_profile(&self, delta: &PipelineProfile) {
        if !delta.is_empty() {
            self.lock().profile.merge(delta);
        }
    }

    /// Records one claimed batch: per-request queue latencies, the
    /// expiry count, and (when any requests remain) the executed batch
    /// size with its compute time.
    pub fn record_batch(
        &self,
        queue_latencies: &[Duration],
        expired: u64,
        executed: usize,
        compute: Option<Duration>,
    ) {
        let mut c = self.lock();
        for &l in queue_latencies {
            c.queue_latency.record(l);
        }
        c.expired += expired;
        if executed > 0 {
            c.batches += 1;
            if c.batch_sizes.len() <= executed {
                c.batch_sizes.resize(executed + 1, 0);
            }
            c.batch_sizes[executed] += 1;
            if let Some(compute) = compute {
                c.compute_latency.record(compute);
                c.completed += executed as u64;
            } else {
                c.failed += executed as u64;
            }
        }
    }

    pub fn snapshot(&self, queue_depth: usize) -> ServerStats {
        // Copy everything out under the lock, then do the O(n log n)
        // percentile sorts *after* releasing it — a telemetry poller
        // must not stall submissions and workers for the sort.
        let (mut stats, queue_window, compute_window) = {
            let c = self.lock();
            (
                ServerStats {
                    submitted: c.submitted,
                    completed: c.completed,
                    rejected: c.rejected,
                    expired: c.expired,
                    failed: c.failed,
                    batches: c.batches,
                    batch_sizes: c.batch_sizes.clone(),
                    queue_depth,
                    resident_weight_bytes: self.resident_weight_bytes,
                    uptime: self.started.elapsed(),
                    queue_latency: LatencySummary::default(),
                    compute_latency: LatencySummary::default(),
                    profile: c.profile,
                },
                c.queue_latency.clone(),
                c.compute_latency.clone(),
            )
        };
        stats.queue_latency = queue_window.summarize();
        stats.compute_latency = compute_window.summarize();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_is_conserved_across_outcomes() {
        let r = Recorder::new(1024);
        for _ in 0..10 {
            r.record_admitted();
        }
        // A rejected push compensates its optimistic admission count.
        r.record_admitted();
        r.record_unadmitted();
        r.record_rejected();
        // Batch of 4: one expired, three ran fine.
        r.record_batch(
            &[Duration::from_millis(1); 4],
            1,
            3,
            Some(Duration::from_millis(7)),
        );
        // Batch of 2 that failed inference.
        r.record_batch(&[Duration::from_millis(2); 2], 0, 2, None);
        // Batch that expired entirely: nothing executed.
        r.record_batch(&[Duration::from_millis(3)], 1, 0, None);
        let s = r.snapshot(4);
        assert_eq!(s.submitted, 10);
        assert_eq!(s.rejected, 1);
        assert_eq!((s.completed, s.expired, s.failed), (3, 2, 2));
        assert_eq!(
            s.completed + s.expired + s.failed + 3,
            s.submitted,
            "3 in flight"
        );
        assert_eq!(s.batches, 2, "empty batches are not executions");
        assert_eq!(s.batch_sizes[3], 1);
        assert_eq!(s.batch_sizes[2], 1);
        assert_eq!(s.queue_depth, 4);
        assert_eq!(s.resident_weight_bytes, 1024);
        assert_eq!(s.queue_latency.samples, 7);
        assert_eq!(s.compute_latency.samples, 1);
        // Running totals back the exporter's `_sum` lines:
        // 4 x 1ms + 2 x 2ms + 1 x 3ms queued, one 7ms forward pass.
        assert_eq!(s.queue_latency.total, Duration::from_millis(11));
        assert_eq!(s.compute_latency.total, Duration::from_millis(7));
        assert!((s.mean_batch_size() - 2.5).abs() < 1e-9);
        assert!(s.throughput() >= 0.0);
        let text = s.to_string();
        assert!(text.contains("batches: 2"));
        assert!(text.contains("resident weights 1024 B"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn stage_profiles_merge_across_replicas() {
        let r = Recorder::new(0);
        let mut a = PipelineProfile::default();
        a.sense.calls = 2;
        a.sense.total = Duration::from_millis(4);
        a.sense.max = Duration::from_millis(3);
        a.batches = 2;
        a.clips = 5;
        let mut b = PipelineProfile::default();
        b.sense.calls = 1;
        b.sense.total = Duration::from_millis(10);
        b.sense.max = Duration::from_millis(10);
        b.forward.calls = 1;
        b.forward.total = Duration::from_millis(6);
        b.forward.max = Duration::from_millis(6);
        b.batches = 1;
        b.clips = 3;
        r.record_profile(&a);
        r.record_profile(&b);
        r.record_profile(&PipelineProfile::default()); // no-op
        let s = r.snapshot(0);
        assert_eq!(s.profile.sense.calls, 3);
        assert_eq!(s.profile.sense.total, Duration::from_millis(14));
        assert_eq!(s.profile.sense.max, Duration::from_millis(10));
        assert_eq!(s.profile.forward.calls, 1);
        assert_eq!((s.profile.batches, s.profile.clips), (3, 8));
        assert!(s.to_string().contains("stages:"));
    }

    #[test]
    fn conservation_helpers_detect_drift() {
        let r = Recorder::new(0);
        for _ in 0..6 {
            r.record_admitted();
        }
        r.record_batch(
            &[Duration::from_millis(1); 4],
            1,
            3,
            Some(Duration::from_millis(2)),
        );
        let healthy = r.snapshot(2);
        assert_eq!(healthy.clips_batched(), 3);
        assert_eq!(healthy.in_flight(), 2);
        assert_eq!(healthy.check_conserved(), Ok(2));
        healthy.debug_assert_conserved();

        // Drift type 1: more resolutions than admissions.
        let mut drifted = healthy.clone();
        drifted.completed += 10;
        drifted.batch_sizes[3] = 0;
        drifted.batch_sizes.resize(14, 0);
        drifted.batch_sizes[13] = 1;
        assert_eq!(drifted.in_flight(), 0, "saturating, never wrapping");
        let err = drifted.check_conserved().expect_err("over-resolved");
        assert!(err.contains("exceeds submitted"), "{err}");

        // Drift type 2: histogram disagrees with the outcome counters.
        let mut skewed = healthy;
        skewed.batch_sizes[3] = 2;
        let err = skewed.check_conserved().expect_err("histogram drift");
        assert!(err.contains("histogram"), "{err}");
    }

    #[test]
    #[should_panic(expected = "accounting drift")]
    fn debug_assert_conserved_panics_on_drift_in_debug_builds() {
        let mut s = Recorder::new(0).snapshot(0);
        s.completed = 1; // never admitted
        if cfg!(debug_assertions) {
            s.debug_assert_conserved();
        } else {
            // Release builds compile the assert out; satisfy the
            // should_panic expectation explicitly.
            panic!("accounting drift checks are debug-only");
        }
    }

    #[test]
    fn quantiles_export_in_ascending_order() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let q = LatencySummary::from_samples(&samples).quantiles();
        assert_eq!(
            q,
            [
                (0.5, Duration::from_millis(50)),
                (0.95, Duration::from_millis(95)),
                (0.99, Duration::from_millis(99)),
            ]
        );
    }

    #[test]
    fn from_samples_is_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.samples, 100);
        assert_eq!(s.total, Duration::from_millis(5050));
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p95, Duration::from_millis(95));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        // Order-independent: ranking sorts internally.
        let reversed: Vec<Duration> = samples.iter().rev().copied().collect();
        assert_eq!(LatencySummary::from_samples(&reversed), s);
    }

    #[test]
    fn percentiles_are_nearest_rank_over_the_window() {
        let mut w = Window::default();
        for ms in 1..=100u64 {
            w.record(Duration::from_millis(ms));
        }
        let s = w.summarize();
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p95, Duration::from_millis(95));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));

        // The window slides: after LATENCY_WINDOW more samples at a new
        // level, the old ones no longer influence the percentiles.
        for _ in 0..LATENCY_WINDOW {
            w.record(Duration::from_millis(7));
        }
        let slid = w.summarize();
        assert_eq!(slid.p99, Duration::from_millis(7));
        assert_eq!(slid.samples, 100 + LATENCY_WINDOW as u64);
        // The running total keeps counting even as old samples slide
        // out of the percentile window.
        assert_eq!(
            slid.total,
            Duration::from_millis(5050 + 7 * LATENCY_WINDOW as u64)
        );

        let empty = Window::default().summarize();
        assert_eq!(empty, LatencySummary::default());
    }
}
