//! The client-side handle for an admitted request.

use crate::ServeError;
use snappix::Prediction;
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::Duration;

/// A claim on one in-flight request: redeem it with [`wait`](Self::wait)
/// (or poll with [`try_wait`](Self::try_wait)) to get the clip's
/// [`Prediction`].
///
/// Tickets are `Send`, so a client can submit from one thread and wait
/// from another, and dropping a ticket simply abandons the result — the
/// server notices nothing and the answer is discarded on arrival.
///
/// When the server was built with a [`Tracer`](snappix_trace::Tracer),
/// the ticket also carries the request's [`trace id`](Self::trace_id),
/// so callers can correlate this request with its spans in a trace
/// snapshot (the gateway echoes it in the `X-Snappix-Trace` response
/// header).
#[derive(Debug)]
pub struct Ticket {
    receiver: Receiver<Result<Prediction, ServeError>>,
    trace_id: u64,
}

impl Ticket {
    pub(crate) fn new(receiver: Receiver<Result<Prediction, ServeError>>, trace_id: u64) -> Self {
        Ticket { receiver, trace_id }
    }

    /// The request-scoped trace id stamped at admission, or `0` when
    /// the server traces nothing.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Blocks until the request is answered.
    ///
    /// # Errors
    ///
    /// Whatever fate the request met server-side
    /// ([`ServeError::DeadlineExpired`], [`ServeError::Inference`], ...),
    /// or [`ServeError::Disconnected`] when the worker died without
    /// answering.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.receiver
            .recv()
            .unwrap_or(Err(ServeError::Disconnected))
    }

    /// Blocks for at most `timeout`.
    ///
    /// Returns `Ok(None)` when the answer has not arrived yet (the
    /// ticket remains redeemable).
    ///
    /// # Errors
    ///
    /// Same as [`wait`](Self::wait).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Option<Prediction>, ServeError> {
        match self.receiver.recv_timeout(timeout) {
            Ok(Ok(prediction)) => Ok(Some(prediction)),
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Disconnected),
        }
    }

    /// Checks for an answer without blocking.
    ///
    /// Returns `Ok(None)` while the request is still in flight.
    ///
    /// # Errors
    ///
    /// Same as [`wait`](Self::wait).
    pub fn try_wait(&self) -> Result<Option<Prediction>, ServeError> {
        match self.receiver.try_recv() {
            Ok(Ok(prediction)) => Ok(Some(prediction)),
            Ok(Err(e)) => Err(e),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ServeError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_tensor::Tensor;
    use std::sync::mpsc::channel;

    fn prediction() -> Prediction {
        Prediction {
            label: 3,
            logits: Tensor::zeros(&[5]),
        }
    }

    #[test]
    fn wait_returns_the_answer() {
        let (tx, rx) = channel();
        let ticket = Ticket::new(rx, 0);
        tx.send(Ok(prediction())).unwrap();
        assert_eq!(ticket.wait().unwrap().label, 3);
    }

    #[test]
    fn polling_distinguishes_pending_from_dead() {
        let (tx, rx) = channel();
        let ticket = Ticket::new(rx, 0);
        assert_eq!(ticket.try_wait(), Ok(None), "still in flight");
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(1)),
            Ok(None),
            "still in flight after a bounded wait"
        );
        tx.send(Ok(prediction())).unwrap();
        assert_eq!(ticket.try_wait().unwrap().map(|p| p.label), Some(3));
        drop(tx);
        assert_eq!(ticket.try_wait(), Err(ServeError::Disconnected));
        assert_eq!(ticket.wait(), Err(ServeError::Disconnected));
    }

    #[test]
    fn server_side_errors_surface_through_wait() {
        let (tx, rx) = channel();
        let ticket = Ticket::new(rx, 0);
        tx.send(Err(ServeError::ShuttingDown)).unwrap();
        assert_eq!(ticket.wait(), Err(ServeError::ShuttingDown));
    }
}
