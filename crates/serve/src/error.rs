//! Serving-layer errors: admission, deadline, and batch-execution
//! failures, plus the bridge into the umbrella [`snappix::Error`].

use std::fmt;
use std::time::Duration;

/// Everything that can go wrong between submitting a clip to a
/// [`Server`](crate::Server) and receiving its
/// [`Prediction`](snappix::Prediction).
///
/// The enum is `#[non_exhaustive]`: the serving layer can grow failure
/// modes (e.g. per-client quotas) without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded admission queue was full: the server is shedding load
    /// instead of queueing without bound. Back off and retry, or treat
    /// as a 503.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline passed while it was still queued, so the
    /// server expired it instead of spending compute on an answer the
    /// client would no longer use.
    DeadlineExpired {
        /// How long the request sat in the queue before expiring.
        waited: Duration,
    },
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
    /// The clip was rejected at submission: its geometry does not match
    /// the model the server runs, and admitting it would poison a whole
    /// batch at execution time.
    BadClip {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// The batch this request rode in failed inference. The message is
    /// the display form of the underlying [`snappix::Error`], shared by
    /// every request of the failed batch.
    Inference {
        /// Display form of the pipeline error.
        message: String,
    },
    /// The worker processing this request died without answering
    /// (it panicked mid-batch). The request's fate is unknown.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(
                    f,
                    "server overloaded: admission queue at capacity {capacity}"
                )
            }
            ServeError::DeadlineExpired { waited } => {
                write!(f, "deadline expired after {waited:?} in queue")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadClip { context } => write!(f, "clip rejected: {context}"),
            ServeError::Inference { message } => write!(f, "batch inference failed: {message}"),
            ServeError::Disconnected => write!(f, "worker disconnected before answering"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for snappix::Error {
    fn from(e: ServeError) -> Self {
        snappix::Error::Serve(Box::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases = [
            (
                ServeError::Overloaded { capacity: 4 }.to_string(),
                "capacity 4",
            ),
            (
                ServeError::DeadlineExpired {
                    waited: Duration::from_millis(3),
                }
                .to_string(),
                "deadline expired",
            ),
            (ServeError::ShuttingDown.to_string(), "shutting down"),
            (
                ServeError::BadClip {
                    context: "rank 2".into(),
                }
                .to_string(),
                "rank 2",
            ),
            (
                ServeError::Inference {
                    message: "boom".into(),
                }
                .to_string(),
                "boom",
            ),
            (ServeError::Disconnected.to_string(), "disconnected"),
        ];
        for (display, needle) in cases {
            assert!(display.contains(needle), "{display} should name {needle}");
        }
    }

    #[test]
    fn converts_into_the_umbrella_error() {
        let unified: snappix::Error = ServeError::Overloaded { capacity: 2 }.into();
        assert!(matches!(unified, snappix::Error::Serve(_)));
        assert!(unified.to_string().contains("overloaded"));
        let source = std::error::Error::source(&unified).expect("chained");
        assert!(source.downcast_ref::<ServeError>().is_some());
    }
}
