//! `snappix-serve`: the multi-client serving layer over the SnapPix
//! [`Pipeline`](snappix::Pipeline).
//!
//! The umbrella crate's pipeline is a *single-caller* engine: one owner,
//! one `&mut` call at a time. A deployed node serves many concurrent
//! clients, and the throughput machinery the lower layers provide —
//! batched forward passes (PR 2), data-parallel kernels (PR 3) — only
//! pays off when somebody aggregates those clients into batches. This
//! crate is that somebody:
//!
//! * **Worker replicas** — a [`Server`] owns N worker threads, each with
//!   a private [`Pipeline`](snappix::Pipeline) replica stamped from one
//!   [`PipelineBuilder`](snappix::PipelineBuilder) recipe
//!   ([`build_replicas`](snappix::PipelineBuilder::build_replicas)): same
//!   weights everywhere, no shared mutable state, no locks on the hot
//!   path. Each replica's data-parallel budget is scoped with the
//!   workspace's `with_threads` machinery so N replicas never
//!   oversubscribe the machine.
//! * **Dynamic batching** — a central batcher coalesces concurrent
//!   requests into one `[batch, t, h, w]` forward pass per worker wake,
//!   under a [`BatchPolicy`] (`max_batch` clips, at most `max_delay` of
//!   added latency). Batching changes the schedule, never the numbers:
//!   with a deterministic backend (algorithmic encoder, noiseless
//!   readout) results are bit-for-bit identical to a serial per-clip
//!   loop; a noisy readout draws per-replica noise streams, so its
//!   realizations are schedule-dependent, as across physical sensors.
//! * **Backpressure** — the admission queue is bounded.
//!   [`Server::try_submit`] sheds load explicitly with
//!   [`ServeError::Overloaded`], [`Server::submit`] blocks the client
//!   instead, and per-request deadlines
//!   ([`Server::submit_within`]) expire queued work rather than serving
//!   it late.
//! * **Telemetry** — every counter and latency sample lands in a
//!   [`snappix_metrics::Registry`] (attach a shared one via
//!   [`ServerBuilder::with_metrics`]): request counters, mergeable
//!   log-linear queue/compute latency histograms covering *every*
//!   sample since start (no sliding window, bounded relative error,
//!   trace-id exemplars), a batch-size histogram, and per-stage
//!   summaries, all as `snappix_server_*` Prometheus families.
//!   [`Server::stats`] derives [`ServerStats`] — throughput,
//!   p50/p95/p99 latency, queue depth, a per-stage
//!   [`PipelineProfile`](snappix::PipelineProfile) — from the same
//!   cells, so the struct and the rendered `/metrics` page always
//!   agree.
//! * **Tracing** — attach a [`Tracer`](snappix_trace::Tracer) via
//!   [`ServerBuilder::with_tracer`] and every request is stamped with a
//!   trace id (on its [`Ticket`]), `queue_wait`/`batch`/`compute` spans
//!   are recorded around the pipeline's own stage spans, and
//!   `server.tracer().snapshot().to_chrome_json()` exports the lot for
//!   Perfetto / `chrome://tracing`. Defaults to disabled with near-zero
//!   cost and bit-for-bit identical results.
//!
//! # Quickstart
//!
//! ```no_run
//! use snappix_serve::prelude::*;
//!
//! # fn main() -> Result<(), snappix::Error> {
//! let mask = patterns::long_exposure(8, (8, 8))?;
//! let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
//! let server = Server::builder(Pipeline::builder(model))
//!     .with_workers(4)
//!     .with_queue_depth(128)
//!     .with_batch_policy(BatchPolicy::new(16, std::time::Duration::from_millis(2)))
//!     .build()?;
//!
//! // Clients submit from any number of threads; each gets a Ticket.
//! std::thread::scope(|scope| {
//!     for _ in 0..8 {
//!         scope.spawn(|| {
//!             let clip = Tensor::zeros(&[8, 16, 16]);
//!             match server.try_submit(&clip) {
//!                 Ok(ticket) => println!("class {:?}", ticket.wait().map(|p| p.label)),
//!                 Err(ServeError::Overloaded { .. }) => println!("shed: retry later"),
//!                 Err(e) => println!("rejected: {e}"),
//!             }
//!         });
//!     }
//! });
//! println!("{}", server.stats());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
mod queue;
mod server;
mod stats;
mod ticket;

pub use batch::BatchPolicy;
pub use error::ServeError;
pub use server::{Server, ServerBuilder};
pub use stats::{LatencySummary, ServerStats};
pub use ticket::Ticket;

/// One-stop imports for serving callers: everything from
/// [`snappix::prelude`] plus the serving layer's types.
pub mod prelude {
    pub use crate::{
        BatchPolicy, LatencySummary, ServeError, Server, ServerBuilder, ServerStats, Ticket,
    };
    pub use snappix::prelude::*;
    pub use snappix_metrics::{HistogramOpts, Registry};
    pub use snappix_trace::Tracer;
}
