//! Shift-variant convolution (Okawara et al., reproduced for the SVC2D
//! baseline).
//!
//! A standard convolution applies the same kernel at every pixel, which is
//! wrong for coded-exposure images where each pixel's exposure pattern
//! differs. A *shift-variant* convolution keeps one kernel bank per
//! position inside the exposure tile: the kernel used at output pixel
//! `(y, x)` is selected by `(y % th, x % tw)`. SnapPix's profiling found
//! this layer slows inference by ~4x, which motivates the ViT co-design —
//! our criterion bench `vit_inference` reproduces that comparison.

use crate::{kaiming_uniform, NnError, ParamId, ParamStore, Result, Session};
use rand::Rng;
use snappix_autograd::Var;
use snappix_tensor::Tensor;

/// Shift-variant 2-D convolution over `[batch, in_ch, h, w]`, stride 1,
/// `same` padding (odd kernels only).
#[derive(Debug, Clone)]
pub struct ShiftVariantConv2d {
    weight: ParamId,
    bias: ParamId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    tile: (usize, usize),
}

impl ShiftVariantConv2d {
    /// Registers a shift-variant convolution whose kernel bank repeats with
    /// the `(th, tw)` exposure tile.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] for zero extents or an even kernel (the
    /// `same` padding scheme requires odd kernels).
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        tile: (usize, usize),
        rng: &mut R,
    ) -> Result<Self> {
        if in_ch == 0 || out_ch == 0 || kernel == 0 || tile.0 == 0 || tile.1 == 0 {
            return Err(NnError::Config {
                context: format!("svc {name}: degenerate configuration"),
            });
        }
        if kernel.is_multiple_of(2) {
            return Err(NnError::Config {
                context: format!("svc {name}: kernel {kernel} must be odd for same padding"),
            });
        }
        let fan_in = in_ch * kernel * kernel;
        let weight = store.register(
            format!("{name}.weight"),
            kaiming_uniform(
                rng,
                &[tile.0 * tile.1, out_ch, in_ch, kernel, kernel],
                fan_in,
            ),
        );
        let bias = store.register(format!("{name}.bias"), Tensor::zeros(&[out_ch]));
        Ok(ShiftVariantConv2d {
            weight,
            bias,
            in_ch,
            out_ch,
            kernel,
            tile,
        })
    }

    /// The exposure tile this layer's kernel bank repeats with.
    pub fn tile(&self) -> (usize, usize) {
        self.tile
    }

    /// Applies the shift-variant convolution.
    ///
    /// # Errors
    ///
    /// Fails for inputs that are not `[batch, in_ch, h, w]`.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Result<Var> {
        let xs = sess.graph.value(x).shape().to_vec();
        if xs.len() != 4 || xs[1] != self.in_ch {
            return Err(NnError::Config {
                context: format!("svc expects [b, {}, h, w], got {xs:?}", self.in_ch),
            });
        }
        let wv = sess.param(self.weight);
        let bv = sess.param(self.bias);
        let tile = self.tile;
        let (out_ch, kernel) = (self.out_ch, self.kernel);
        let value = svc_forward(
            sess.graph.value(x),
            sess.graph.value(wv),
            sess.graph.value(bv),
            tile,
            out_ch,
            kernel,
        );
        Ok(sess
            .graph
            .custom_op(value, vec![x, wv, bv], move |g, parents| {
                svc_backward(g, parents[0], parents[1], tile, kernel)
            })?)
    }
}

fn svc_forward(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    (th, tw): (usize, usize),
    out_ch: usize,
    kernel: usize,
) -> Tensor {
    let s = x.shape();
    let (batch, cin, h, wid) = (s[0], s[1], s[2], s[3]);
    let pad = kernel / 2;
    let mut out = Tensor::zeros(&[batch, out_ch, h, wid]);
    let (xs, ws, bs) = (x.as_slice(), w.as_slice(), b.as_slice());
    let os = out.as_mut_slice();
    for bi in 0..batch {
        for f in 0..out_ch {
            for oy in 0..h {
                for ox in 0..wid {
                    let bank = (oy % th) * tw + (ox % tw);
                    let mut acc = bs[f];
                    for c in 0..cin {
                        for ky in 0..kernel {
                            let iy = (oy + ky) as isize - pad as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kernel {
                                let ix = (ox + kx) as isize - pad as isize;
                                if ix < 0 || ix as usize >= wid {
                                    continue;
                                }
                                acc += xs[((bi * cin + c) * h + iy as usize) * wid + ix as usize]
                                    * ws[(((bank * out_ch + f) * cin + c) * kernel + ky) * kernel
                                        + kx];
                            }
                        }
                    }
                    os[((bi * out_ch + f) * h + oy) * wid + ox] = acc;
                }
            }
        }
    }
    out
}

fn svc_backward(
    g: &Tensor,
    x: &Tensor,
    w: &Tensor,
    (th, tw): (usize, usize),
    kernel: usize,
) -> Vec<Tensor> {
    let s = x.shape();
    let (batch, cin, h, wid) = (s[0], s[1], s[2], s[3]);
    let out_ch = g.shape()[1];
    let pad = kernel / 2;
    let mut dx = Tensor::zeros(x.shape());
    let mut dw = Tensor::zeros(w.shape());
    let mut db = Tensor::zeros(&[out_ch]);
    let (gs, xs, ws) = (g.as_slice(), x.as_slice(), w.as_slice());
    {
        let dxs = dx.as_mut_slice();
        let dws = dw.as_mut_slice();
        let dbs = db.as_mut_slice();
        for bi in 0..batch {
            for f in 0..out_ch {
                for oy in 0..h {
                    for ox in 0..wid {
                        let go = gs[((bi * out_ch + f) * h + oy) * wid + ox];
                        if go == 0.0 {
                            continue;
                        }
                        dbs[f] += go;
                        let bank = (oy % th) * tw + (ox % tw);
                        for c in 0..cin {
                            for ky in 0..kernel {
                                let iy = (oy + ky) as isize - pad as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..kernel {
                                    let ix = (ox + kx) as isize - pad as isize;
                                    if ix < 0 || ix as usize >= wid {
                                        continue;
                                    }
                                    let xi = ((bi * cin + c) * h + iy as usize) * wid + ix as usize;
                                    let wi = (((bank * out_ch + f) * cin + c) * kernel + ky)
                                        * kernel
                                        + kx;
                                    dxs[xi] += go * ws[wi];
                                    dws[wi] += go * xs[xi];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    vec![dx, dw, db]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use snappix_autograd::check_gradients;

    #[test]
    fn construction_validates() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        assert!(ShiftVariantConv2d::new(&mut store, "s", 1, 1, 2, (2, 2), &mut rng).is_err());
        assert!(ShiftVariantConv2d::new(&mut store, "s", 1, 1, 3, (0, 2), &mut rng).is_err());
        let svc = ShiftVariantConv2d::new(&mut store, "s", 1, 2, 3, (2, 2), &mut rng).unwrap();
        assert_eq!(svc.tile(), (2, 2));
    }

    #[test]
    fn same_padding_preserves_extent() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let svc = ShiftVariantConv2d::new(&mut store, "s", 1, 3, 3, (2, 2), &mut rng).unwrap();
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::zeros(&[2, 1, 8, 8]));
        let y = svc.forward(&mut sess, x).unwrap();
        assert_eq!(sess.graph.value(y).shape(), &[2, 3, 8, 8]);
    }

    #[test]
    fn different_tile_positions_use_different_kernels() {
        // With a 1x1 kernel and a 1x2 tile, even and odd columns apply
        // different weights.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let svc = ShiftVariantConv2d::new(&mut store, "s", 1, 1, 1, (1, 2), &mut rng).unwrap();
        let ids = store.ids();
        *store.value_mut(ids[0]) = Tensor::from_vec(vec![2.0, 3.0], &[2, 1, 1, 1, 1]).unwrap();
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::ones(&[1, 1, 1, 4]));
        let y = svc.forward(&mut sess, x).unwrap();
        assert_eq!(sess.graph.value(y).as_slice(), &[2.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    fn gradients_numeric() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::rand_uniform(&mut rng, &[1, 1, 4, 4], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[4, 2, 1, 3, 3], -0.5, 0.5);
        let b = Tensor::rand_uniform(&mut rng, &[2], -0.5, 0.5);
        check_gradients(&[x, w, b], |g, vars| {
            let value = svc_forward(
                g.value(vars[0]),
                g.value(vars[1]),
                g.value(vars[2]),
                (2, 2),
                2,
                3,
            );
            let y = g.custom_op(value, vec![vars[0], vars[1], vars[2]], |up, parents| {
                svc_backward(up, parents[0], parents[1], (2, 2), 3)
            })?;
            let q = g.mul(y, y)?;
            g.sum(q)
        })
        .unwrap();
    }

    #[test]
    fn rejects_wrong_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let svc = ShiftVariantConv2d::new(&mut store, "s", 2, 1, 3, (2, 2), &mut rng).unwrap();
        let mut sess = Session::inference(&store);
        let bad = sess.input(Tensor::zeros(&[1, 1, 4, 4]));
        assert!(svc.forward(&mut sess, bad).is_err());
    }
}
