//! Learning-rate schedules.

/// Learning-rate schedule evaluated per step.
///
/// The paper tunes learning rates per model and uses warmup + decay typical
/// of ViT training recipes; [`LrSchedule::WarmupCosine`] mirrors that.
///
/// # Examples
///
/// ```
/// use snappix_nn::LrSchedule;
///
/// let sched = LrSchedule::WarmupCosine {
///     base: 1e-3,
///     warmup_steps: 10,
///     total_steps: 100,
/// };
/// assert!(sched.at(0) < sched.at(10));         // warming up
/// assert!(sched.at(99) < sched.at(10));        // decayed
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// A constant rate.
    Constant {
        /// The rate.
        base: f32,
    },
    /// Linear warmup followed by cosine decay to zero.
    WarmupCosine {
        /// Peak rate reached at the end of warmup.
        base: f32,
        /// Steps of linear warmup.
        warmup_steps: usize,
        /// Total steps (decay finishes here).
        total_steps: usize,
    },
    /// Multiplies the rate by `gamma` every `every` steps.
    StepDecay {
        /// Initial rate.
        base: f32,
        /// Multiplier applied at each boundary.
        gamma: f32,
        /// Boundary interval in steps.
        every: usize,
    },
}

impl LrSchedule {
    /// Learning rate at training step `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant { base } => base,
            LrSchedule::WarmupCosine {
                base,
                warmup_steps,
                total_steps,
            } => {
                if warmup_steps > 0 && step < warmup_steps {
                    base * (step + 1) as f32 / warmup_steps as f32
                } else {
                    let span = total_steps.saturating_sub(warmup_steps).max(1) as f32;
                    let progress =
                        ((step.saturating_sub(warmup_steps)) as f32 / span).clamp(0.0, 1.0);
                    base * 0.5 * (1.0 + (std::f32::consts::PI * progress).cos())
                }
            }
            LrSchedule::StepDecay { base, gamma, every } => {
                base * gamma.powi((step / every.max(1)) as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { base: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(10_000), 0.1);
    }

    #[test]
    fn warmup_cosine_ramps_then_decays() {
        let s = LrSchedule::WarmupCosine {
            base: 1.0,
            warmup_steps: 10,
            total_steps: 110,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        // Midway through decay: cos(pi/2) -> 0.5 * base.
        assert!((s.at(60) - 0.5).abs() < 0.02);
        assert!(s.at(109) < 0.01);
        // Past the end it stays at ~0, not negative.
        assert!(s.at(1000) >= 0.0);
    }

    #[test]
    fn warmup_cosine_without_warmup() {
        let s = LrSchedule::WarmupCosine {
            base: 1.0,
            warmup_steps: 0,
            total_steps: 100,
        };
        assert!((s.at(0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn step_decay_boundaries() {
        let s = LrSchedule::StepDecay {
            base: 1.0,
            gamma: 0.1,
            every: 10,
        };
        assert_eq!(s.at(9), 1.0);
        assert!((s.at(10) - 0.1).abs() < 1e-6);
        assert!((s.at(25) - 0.01).abs() < 1e-6);
    }
}
