//! Weight persistence in a small self-describing binary format.
//!
//! Layout: magic `b"SNPX"`, format version `u32`, parameter count `u32`,
//! then per parameter: name length `u32` + UTF-8 name, rank `u32` +
//! little-endian `u64` extents, and the `f32` data. No external
//! serialization crate is needed.
//!
//! This legacy format has no checksum and no payload-length field, so the
//! loader reads the whole file up front and bounds-checks every record
//! against the real file size before allocating or interpreting data — a
//! truncated or corrupt file fails with a typed [`NnError::Format`]
//! instead of loading garbage weights. For a sealed, checksummed,
//! zero-copy format see the [`artifact`](crate::artifact) module; this
//! one stays as the writable interchange format that
//! [`convert_params_to_artifact`](crate::convert_params_to_artifact)
//! upgrades from.

use crate::{NnError, ParamStore, Result};
use snappix_tensor::Tensor;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"SNPX";
const VERSION: u32 = 1;

/// Saves every parameter of `store` to `path`.
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failures.
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(MAGIC)?;
    file.write_all(&VERSION.to_le_bytes())?;
    file.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        let name_bytes = name.as_bytes();
        file.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        file.write_all(name_bytes)?;
        file.write_all(&(value.rank() as u32).to_le_bytes())?;
        for &d in value.shape() {
            file.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in value.as_slice() {
            file.write_all(&x.to_le_bytes())?;
        }
    }
    file.flush()?;
    Ok(())
}

/// Loads parameters from `path` into `store`, matching by name.
///
/// Every parameter in the file must exist in the store with an identical
/// shape; parameters in the store that are absent from the file keep their
/// current values (this is how a pre-trained encoder is loaded underneath a
/// fresh task head).
///
/// # Errors
///
/// Returns [`NnError::Io`] when the file cannot be read and
/// [`NnError::Format`] for malformed files — including files truncated
/// mid-record, whose declared payload no longer fits in the bytes
/// actually present — unknown names, or shape mismatches.
pub fn load_params(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<()> {
    let bytes = std::fs::read(path)?;
    let entries = read_legacy(&bytes)?;
    apply_entries(store, entries)
}

/// Parses a legacy `SNPX` weight file into `(name, tensor)` entries.
///
/// Every length that the file declares (name length, rank, extents) is
/// checked against the bytes that remain *before* any allocation or
/// data read, so truncation and corrupt counts surface as
/// [`NnError::Format`] rather than garbage tensors or huge allocations.
pub(crate) fn read_legacy(bytes: &[u8]) -> Result<Vec<(String, Tensor)>> {
    let mut c = Cursor::new(bytes);
    if c.take(4)? != MAGIC {
        return Err(NnError::Format {
            context: "bad magic (not a SnapPix weight file)".to_string(),
        });
    }
    let version = c.u32()?;
    if version != VERSION {
        return Err(NnError::Format {
            context: format!("unsupported version {version}"),
        });
    }
    let count = c.u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name_len = c.u32()? as usize;
        let name = String::from_utf8(c.take(name_len)?.to_vec()).map_err(|_| NnError::Format {
            context: "parameter name is not UTF-8".to_string(),
        })?;
        let rank = c.u32()? as usize;
        if c.remaining() < rank.saturating_mul(8) {
            return Err(NnError::Format {
                context: format!("truncated file: rank {rank} shape for {name} cut short"),
            });
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(c.u64()? as usize);
        }
        let n = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| NnError::Format {
                context: format!("element count overflow in shape {shape:?} for {name}"),
            })?;
        // Payload-length check before allocating: the remaining bytes
        // must hold all n floats this record declares.
        let data_bytes = n.checked_mul(4).ok_or_else(|| NnError::Format {
            context: format!("payload size overflow for {name}"),
        })?;
        if c.remaining() < data_bytes {
            return Err(NnError::Format {
                context: format!(
                    "truncated file: {name} declares {data_bytes} data bytes but only {} remain",
                    c.remaining()
                ),
            });
        }
        let data = c
            .take(data_bytes)?
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        entries.push((name, Tensor::from_vec(data, &shape)?));
    }
    // The declared parameter count must account for the whole file: bytes
    // past the last parameter mean the header lied (or the file was
    // concatenated/corrupted), and silently ignoring them would mask it.
    if c.remaining() != 0 {
        return Err(NnError::Format {
            context: format!("trailing bytes after the last of {count} parameters"),
        });
    }
    Ok(entries)
}

/// Writes `(name, tensor)` entries into `store`, matching by name.
///
/// The shared semantics of [`load_params`] and
/// [`ArtifactReader::load_into`](crate::ArtifactReader::load_into):
/// every entry must name a store parameter of identical shape; store
/// parameters absent from `entries` keep their current values.
pub(crate) fn apply_entries(store: &mut ParamStore, entries: Vec<(String, Tensor)>) -> Result<()> {
    let by_name: std::collections::HashMap<String, crate::ParamId> = store
        .iter()
        .map(|(id, name, _)| (name.to_string(), id))
        .collect();
    for (name, tensor) in entries {
        let id = *by_name.get(&name).ok_or_else(|| NnError::Format {
            context: format!("file contains unknown parameter {name}"),
        })?;
        if store.value(id).shape() != tensor.shape() {
            return Err(NnError::Format {
                context: format!(
                    "shape mismatch for {name}: file {:?} vs store {:?}",
                    tensor.shape(),
                    store.value(id).shape()
                ),
            });
        }
        *store.value_mut(id) = tensor;
    }
    Ok(())
}

/// A bounds-checked reader over an in-memory byte slice. Running past
/// the end is always a typed [`NnError::Format`] ("truncated"), never a
/// panic — both weight-file parsers are built on it.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(NnError::Format {
                context: format!(
                    "truncated file: needed {n} bytes at offset {}, {} remain",
                    self.pos,
                    self.remaining()
                ),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "snappix_nn_test_{}_{name}.snpx",
            std::process::id()
        ));
        p
    }

    #[test]
    fn round_trip_preserves_values() {
        let mut store = ParamStore::new();
        store.register("a.weight", Tensor::arange(6).reshape(&[2, 3]).unwrap());
        store.register("a.bias", Tensor::full(&[3], -1.5));
        let path = temp_path("round_trip");
        save_params(&store, &path).unwrap();

        let mut restored = ParamStore::new();
        let a = restored.register("a.weight", Tensor::zeros(&[2, 3]));
        let b = restored.register("a.bias", Tensor::zeros(&[3]));
        load_params(&mut restored, &path).unwrap();
        assert_eq!(
            restored.value(a).as_slice(),
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert_eq!(restored.value(b).as_slice(), &[-1.5; 3]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn partial_load_keeps_missing_params() {
        let mut small = ParamStore::new();
        small.register("enc.w", Tensor::full(&[2], 9.0));
        let path = temp_path("partial");
        save_params(&small, &path).unwrap();

        let mut big = ParamStore::new();
        let enc = big.register("enc.w", Tensor::zeros(&[2]));
        let head = big.register("head.w", Tensor::full(&[2], 5.0));
        load_params(&mut big, &path).unwrap();
        assert_eq!(big.value(enc).as_slice(), &[9.0, 9.0]);
        assert_eq!(big.value(head).as_slice(), &[5.0, 5.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_unknown_parameter() {
        let mut store = ParamStore::new();
        store.register("mystery", Tensor::zeros(&[1]));
        let path = temp_path("unknown");
        save_params(&store, &path).unwrap();
        let mut other = ParamStore::new();
        other.register("different", Tensor::zeros(&[1]));
        assert!(matches!(
            load_params(&mut other, &path),
            Err(NnError::Format { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(&[4]));
        let path = temp_path("shape");
        save_params(&store, &path).unwrap();
        let mut other = ParamStore::new();
        other.register("w", Tensor::zeros(&[2, 2]));
        assert!(matches!(
            load_params(&mut other, &path),
            Err(NnError::Format { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_rejects_trailing_bytes_and_truncation() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::arange(4).reshape(&[2, 2]).unwrap());
        store.register("b", Tensor::full(&[2], 0.25));
        let path = temp_path("strict");
        save_params(&store, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // The unmodified file round-trips.
        let fresh = || {
            let mut s = ParamStore::new();
            s.register("w", Tensor::zeros(&[2, 2]));
            s.register("b", Tensor::zeros(&[2]));
            s
        };
        let mut ok = fresh();
        load_params(&mut ok, &path).unwrap();
        assert_eq!(ok.value(w).as_slice(), &[0.0, 1.0, 2.0, 3.0]);

        // Trailing garbage after the last parameter is a format error,
        // not silently accepted (a single stray byte must be enough).
        for junk in [&b"\0"[..], &b"SNPXtrailing"[..]] {
            let mut bytes = pristine.clone();
            bytes.extend_from_slice(junk);
            std::fs::write(&path, &bytes).unwrap();
            let err = load_params(&mut fresh(), &path).unwrap_err();
            match err {
                NnError::Format { context } => {
                    assert!(context.contains("trailing"), "{context}")
                }
                other => panic!("expected Format, got {other:?}"),
            }
        }

        // A truncated file fails the payload-length check at every
        // prefix length (header, name, shape, or data cut short) — a
        // typed format error, never garbage weights.
        for cut in [pristine.len() - 1, pristine.len() / 2, 6, 2] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let err = load_params(&mut fresh(), &path).unwrap_err();
            match err {
                NnError::Format { context } => assert!(
                    context.contains("truncated") || context.contains("unsupported"),
                    "prefix of {cut} bytes: unexpected context {context}"
                ),
                other => panic!("prefix of {cut} bytes: expected Format, got {other:?}"),
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_count_cannot_cause_huge_allocation() {
        // A header that declares a giant tensor over a tiny payload must
        // be rejected before any allocation happens.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one parameter
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name "w"
        bytes.push(b'w');
        bytes.extend_from_slice(&1u32.to_le_bytes()); // rank 1
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd extent
        let path = temp_path("huge");
        std::fs::write(&path, &bytes).unwrap();
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(&[1]));
        assert!(matches!(
            load_params(&mut store, &path),
            Err(NnError::Format { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOPE0000").unwrap();
        let mut store = ParamStore::new();
        assert!(matches!(
            load_params(&mut store, &path),
            Err(NnError::Format { .. })
        ));
        std::fs::remove_file(path).ok();
    }
}
