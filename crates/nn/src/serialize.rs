//! Weight persistence in a small self-describing binary format.
//!
//! Layout: magic `b"SNPX"`, format version `u32`, parameter count `u32`,
//! then per parameter: name length `u32` + UTF-8 name, rank `u32` +
//! little-endian `u64` extents, and the `f32` data. No external
//! serialization crate is needed.

use crate::{NnError, ParamStore, Result};
use snappix_tensor::Tensor;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SNPX";
const VERSION: u32 = 1;

/// Saves every parameter of `store` to `path`.
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failures.
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(MAGIC)?;
    file.write_all(&VERSION.to_le_bytes())?;
    file.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        let name_bytes = name.as_bytes();
        file.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        file.write_all(name_bytes)?;
        file.write_all(&(value.rank() as u32).to_le_bytes())?;
        for &d in value.shape() {
            file.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in value.as_slice() {
            file.write_all(&x.to_le_bytes())?;
        }
    }
    file.flush()?;
    Ok(())
}

/// Loads parameters from `path` into `store`, matching by name.
///
/// Every parameter in the file must exist in the store with an identical
/// shape; parameters in the store that are absent from the file keep their
/// current values (this is how a pre-trained encoder is loaded underneath a
/// fresh task head).
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failures and [`NnError::Format`]
/// for malformed files, unknown names, or shape mismatches.
pub fn load_params(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<()> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    file.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NnError::Format {
            context: "bad magic (not a SnapPix weight file)".to_string(),
        });
    }
    let version = read_u32(&mut file)?;
    if version != VERSION {
        return Err(NnError::Format {
            context: format!("unsupported version {version}"),
        });
    }
    let count = read_u32(&mut file)? as usize;
    let by_name: std::collections::HashMap<String, crate::ParamId> = store
        .iter()
        .map(|(id, name, _)| (name.to_string(), id))
        .collect();
    for _ in 0..count {
        let name_len = read_u32(&mut file)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        file.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes).map_err(|_| NnError::Format {
            context: "parameter name is not UTF-8".to_string(),
        })?;
        let rank = read_u32(&mut file)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let mut buf = [0u8; 8];
            file.read_exact(&mut buf)?;
            shape.push(u64::from_le_bytes(buf) as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            file.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        let id = *by_name.get(&name).ok_or_else(|| NnError::Format {
            context: format!("file contains unknown parameter {name}"),
        })?;
        if store.value(id).shape() != shape.as_slice() {
            return Err(NnError::Format {
                context: format!(
                    "shape mismatch for {name}: file {shape:?} vs store {:?}",
                    store.value(id).shape()
                ),
            });
        }
        *store.value_mut(id) = Tensor::from_vec(data, &shape)?;
    }
    // The declared parameter count must account for the whole file: bytes
    // past the last parameter mean the header lied (or the file was
    // concatenated/corrupted), and silently ignoring them would mask it.
    let mut probe = [0u8; 1];
    if file.read(&mut probe)? != 0 {
        return Err(NnError::Format {
            context: format!("trailing bytes after the last of {count} parameters"),
        });
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "snappix_nn_test_{}_{name}.snpx",
            std::process::id()
        ));
        p
    }

    #[test]
    fn round_trip_preserves_values() {
        let mut store = ParamStore::new();
        store.register("a.weight", Tensor::arange(6).reshape(&[2, 3]).unwrap());
        store.register("a.bias", Tensor::full(&[3], -1.5));
        let path = temp_path("round_trip");
        save_params(&store, &path).unwrap();

        let mut restored = ParamStore::new();
        let a = restored.register("a.weight", Tensor::zeros(&[2, 3]));
        let b = restored.register("a.bias", Tensor::zeros(&[3]));
        load_params(&mut restored, &path).unwrap();
        assert_eq!(
            restored.value(a).as_slice(),
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert_eq!(restored.value(b).as_slice(), &[-1.5; 3]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn partial_load_keeps_missing_params() {
        let mut small = ParamStore::new();
        small.register("enc.w", Tensor::full(&[2], 9.0));
        let path = temp_path("partial");
        save_params(&small, &path).unwrap();

        let mut big = ParamStore::new();
        let enc = big.register("enc.w", Tensor::zeros(&[2]));
        let head = big.register("head.w", Tensor::full(&[2], 5.0));
        load_params(&mut big, &path).unwrap();
        assert_eq!(big.value(enc).as_slice(), &[9.0, 9.0]);
        assert_eq!(big.value(head).as_slice(), &[5.0, 5.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_unknown_parameter() {
        let mut store = ParamStore::new();
        store.register("mystery", Tensor::zeros(&[1]));
        let path = temp_path("unknown");
        save_params(&store, &path).unwrap();
        let mut other = ParamStore::new();
        other.register("different", Tensor::zeros(&[1]));
        assert!(matches!(
            load_params(&mut other, &path),
            Err(NnError::Format { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(&[4]));
        let path = temp_path("shape");
        save_params(&store, &path).unwrap();
        let mut other = ParamStore::new();
        other.register("w", Tensor::zeros(&[2, 2]));
        assert!(matches!(
            load_params(&mut other, &path),
            Err(NnError::Format { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_rejects_trailing_bytes_and_truncation() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::arange(4).reshape(&[2, 2]).unwrap());
        store.register("b", Tensor::full(&[2], 0.25));
        let path = temp_path("strict");
        save_params(&store, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // The unmodified file round-trips.
        let fresh = || {
            let mut s = ParamStore::new();
            s.register("w", Tensor::zeros(&[2, 2]));
            s.register("b", Tensor::zeros(&[2]));
            s
        };
        let mut ok = fresh();
        load_params(&mut ok, &path).unwrap();
        assert_eq!(ok.value(w).as_slice(), &[0.0, 1.0, 2.0, 3.0]);

        // Trailing garbage after the last parameter is a format error,
        // not silently accepted (a single stray byte must be enough).
        for junk in [&b"\0"[..], &b"SNPXtrailing"[..]] {
            let mut bytes = pristine.clone();
            bytes.extend_from_slice(junk);
            std::fs::write(&path, &bytes).unwrap();
            let err = load_params(&mut fresh(), &path).unwrap_err();
            match err {
                NnError::Format { context } => {
                    assert!(context.contains("trailing"), "{context}")
                }
                other => panic!("expected Format, got {other:?}"),
            }
        }

        // A truncated file fails mid-read with an I/O error at every
        // prefix length (header, name, shape, or data cut short).
        for cut in [pristine.len() - 1, pristine.len() / 2, 6, 2] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(
                matches!(load_params(&mut fresh(), &path), Err(NnError::Io(_))),
                "prefix of {cut} bytes must fail as truncated"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOPE0000").unwrap();
        let mut store = ParamStore::new();
        assert!(matches!(
            load_params(&mut store, &path),
            Err(NnError::Format { .. })
        ));
        std::fs::remove_file(path).ok();
    }
}
