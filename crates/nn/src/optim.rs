//! First-order optimizers.

use crate::{Gradients, NnError, ParamStore, Result};
use snappix_tensor::Tensor;

/// A gradient-descent style optimizer over a [`ParamStore`].
///
/// Parameters without a gradient in the supplied [`Gradients`] (e.g. a
/// frozen encoder during fine-tuning, or layers unused by the current loss)
/// are silently skipped.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Parameter`] when a gradient's shape disagrees
    /// with its parameter.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) -> Result<()>;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (used by [`crate::LrSchedule`]).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) -> Result<()> {
        self.velocity.resize(store.len(), None);
        for id in store.ids() {
            let Some(grad) = grads.get(id) else { continue };
            if grad.shape() != store.value(id).shape() {
                return Err(NnError::Parameter {
                    context: format!(
                        "gradient shape {:?} != parameter {:?} for {}",
                        grad.shape(),
                        store.value(id).shape(),
                        store.name(id)
                    ),
                });
            }
            let mut update = grad.clone();
            if self.weight_decay > 0.0 {
                update = update.add(&store.value(id).scale(self.weight_decay))?;
            }
            if self.momentum > 0.0 {
                let v = match &self.velocity[id.0] {
                    Some(prev) => prev.scale(self.momentum).add(&update)?,
                    None => update.clone(),
                };
                self.velocity[id.0] = Some(v.clone());
                update = v;
            }
            let new_value = store.value(id).sub(&update.scale(self.lr))?;
            *store.value_mut(id) = new_value;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam with decoupled weight decay (AdamW when `weight_decay > 0`).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: u64,
    moments: Vec<Option<(Tensor, Tensor)>>,
}

impl Adam {
    /// Adam with the standard `(0.9, 0.999)` betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            moments: Vec::new(),
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) -> Result<()> {
        self.moments.resize(store.len(), None);
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for id in store.ids() {
            let Some(grad) = grads.get(id) else { continue };
            if grad.shape() != store.value(id).shape() {
                return Err(NnError::Parameter {
                    context: format!(
                        "gradient shape {:?} != parameter {:?} for {}",
                        grad.shape(),
                        store.value(id).shape(),
                        store.name(id)
                    ),
                });
            }
            let (m_prev, v_prev) = match &self.moments[id.0] {
                Some((m, v)) => (m.clone(), v.clone()),
                None => (Tensor::zeros(grad.shape()), Tensor::zeros(grad.shape())),
            };
            let m = m_prev
                .scale(self.beta1)
                .add(&grad.scale(1.0 - self.beta1))?;
            let g2 = grad.mul(grad)?;
            let v = v_prev.scale(self.beta2).add(&g2.scale(1.0 - self.beta2))?;
            self.moments[id.0] = Some((m.clone(), v.clone()));
            let m_hat = m.scale(1.0 / bc1);
            let v_hat = v.scale(1.0 / bc2);
            let denom = v_hat.sqrt().add_scalar(self.eps);
            let mut update = m_hat.div(&denom)?.scale(self.lr);
            if self.weight_decay > 0.0 {
                update = update.add(&store.value(id).scale(self.lr * self.weight_decay))?;
            }
            let new_value = store.value(id).sub(&update)?;
            *store.value_mut(id) = new_value;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    /// Minimizes `(w - 3)^2` with the given optimizer and returns the final
    /// parameter value.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::scalar(0.0));
        for _ in 0..steps {
            let mut sess = Session::new(&store);
            let w = sess.param(id);
            let c = sess.input(Tensor::scalar(3.0));
            let diff = sess.graph.sub(w, c).unwrap();
            let loss = sess.graph.mul(diff, diff).unwrap();
            let grads = sess.backward(loss).unwrap();
            opt.step(&mut store, &grads).unwrap();
        }
        store.value(id).item().unwrap()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = minimize(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        let w = minimize(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let w = minimize(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_unused_directions() {
        // With pure decay (zero gradient signal towards growth) the
        // parameter should shrink towards the origin relative to no decay.
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::scalar(1.0));
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        for _ in 0..10 {
            let mut sess = Session::new(&store);
            let w = sess.param(id);
            let loss = sess.graph.scale(w, 0.0).unwrap();
            let loss = sess.graph.sum(loss).unwrap();
            let grads = sess.backward(loss).unwrap();
            opt.step(&mut store, &grads).unwrap();
        }
        let w = store.value(id).item().unwrap();
        assert!(w < 1.0 && w > 0.0, "w = {w}");
    }

    #[test]
    fn skips_parameters_without_gradients() {
        let mut store = ParamStore::new();
        let used = store.register("used", Tensor::scalar(1.0));
        let frozen = store.register("frozen", Tensor::scalar(7.0));
        let mut sess = Session::new(&store);
        let w = sess.param(used);
        let loss = sess.graph.mul(w, w).unwrap();
        let grads = sess.backward(loss).unwrap();
        let mut opt = Sgd::new(0.1);
        opt.step(&mut store, &grads).unwrap();
        assert!(store.value(used).item().unwrap() < 1.0);
        assert_eq!(store.value(frozen).item().unwrap(), 7.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
    }
}
