//! The `.spx` model artifact: a sealed, checksummed weight file whose
//! payload is loaded into memory **once** and handed out as zero-copy
//! shared tensors.
//!
//! The legacy [`save_params`](crate::save_params) format streams
//! heterogeneous records and must be deep-copied into every consumer;
//! `.spx` instead separates *description* from *data*. A fixed 64-byte
//! header and a tensor-info table describe every tensor (name, dtype,
//! shape, payload offset); the payload is one contiguous, 64-byte-aligned
//! block of little-endian element data; a trailing FNV-1a 64 checksum
//! seals the file. [`ArtifactReader::open`] reads and validates the file
//! once, converts the payload into a single shared buffer, and every
//! [`ArtifactReader::tensor`] / [`ArtifactReader::load_into`] call hands
//! out read-only windows into that buffer — n serve replicas loaded from
//! one artifact share one copy of the weights.
//!
//! The byte-for-byte layout is specified in `docs/FORMAT.md`; the
//! golden-header test in `crates/nn/tests/artifact.rs` pins it against
//! accidental drift.

use crate::serialize::{apply_entries, read_legacy, Cursor};
use crate::{NnError, ParamStore, Result};
use snappix_tensor::{DType, SharedBuffer, Tensor};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// First eight bytes of every `.spx` file.
pub const SPX_MAGIC: &[u8; 8] = b"SNPX.SPX";
/// Current format version. Bumped only for incompatible layout changes;
/// dtype additions reuse the tag byte and do not bump it.
pub const SPX_VERSION: u32 = 1;
/// Alignment (bytes) of the payload start and of every tensor's offset
/// within the payload.
pub const SPX_ALIGN: usize = 64;
/// Fixed size of the header in bytes.
pub const SPX_HEADER_BYTES: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes` — the checksum sealing every `.spx` file.
/// Simple, dependency-free, and byte-order independent; this is an
/// integrity check against truncation and bit rot, not a cryptographic
/// signature.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn align_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

fn format_err(context: impl Into<String>) -> NnError {
    NnError::Format {
        context: context.into(),
    }
}

/// One row of the tensor-info table.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TensorInfo {
    name: String,
    dtype: DType,
    shape: Vec<usize>,
    /// Byte offset of this tensor's data relative to the payload start;
    /// always a multiple of [`SPX_ALIGN`].
    offset: usize,
    /// Exact size of this tensor's data in bytes.
    data_bytes: usize,
}

/// Writes every parameter of `store` as a sealed `.spx` artifact.
///
/// Tensors are laid out in registration order, each at the next
/// 64-byte-aligned payload offset. The store's parameter names must be
/// unique — readers index by name.
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failures and
/// [`NnError::Format`] when the store has duplicate parameter names.
pub fn write_artifact(store: &ParamStore, path: impl AsRef<Path>) -> Result<()> {
    let mut names = std::collections::HashSet::new();
    for (_, name, _) in store.iter() {
        if !names.insert(name) {
            return Err(format_err(format!(
                "cannot write artifact: duplicate parameter name {name}"
            )));
        }
    }

    // Lay out the table and payload offsets first. payload_bytes ends at
    // the last tensor's data — no trailing alignment padding, since
    // nothing comes after it.
    let mut table = Vec::new();
    let mut offset = 0usize;
    let mut payload_bytes = 0usize;
    for (_, name, value) in store.iter() {
        let data_bytes = value.len() * value.dtype().size_of();
        table.extend_from_slice(&(name.len() as u32).to_le_bytes());
        table.extend_from_slice(name.as_bytes());
        table.push(value.dtype().tag());
        table.push(value.rank() as u8);
        table.extend_from_slice(&0u16.to_le_bytes());
        table.extend_from_slice(&(offset as u64).to_le_bytes());
        table.extend_from_slice(&(data_bytes as u64).to_le_bytes());
        for &d in value.shape() {
            table.extend_from_slice(&(d as u64).to_le_bytes());
        }
        payload_bytes = offset + data_bytes;
        offset = align_up(payload_bytes, SPX_ALIGN);
    }

    let mut bytes = Vec::with_capacity(
        SPX_HEADER_BYTES + table.len() + payload_bytes + SPX_ALIGN + size_of::<u64>(),
    );
    bytes.extend_from_slice(SPX_MAGIC);
    bytes.extend_from_slice(&SPX_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(store.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&(table.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&(payload_bytes as u64).to_le_bytes());
    bytes.resize(SPX_HEADER_BYTES, 0); // reserved header bytes, zero
    bytes.extend_from_slice(&table);
    // Zero padding up to the 64-byte-aligned payload start.
    bytes.resize(align_up(bytes.len(), SPX_ALIGN), 0);

    let payload_start = bytes.len();
    for (_, _, value) in store.iter() {
        bytes.resize(
            align_up(bytes.len() - payload_start, SPX_ALIGN) + payload_start,
            0,
        );
        for &x in value.as_slice() {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
    }
    debug_assert_eq!(bytes.len() - payload_start, payload_bytes);

    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());

    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(&bytes)?;
    file.flush()?;
    Ok(())
}

/// Converts a legacy [`save_params`](crate::save_params) file into a
/// sealed `.spx` artifact.
///
/// The legacy file is self-describing (names, shapes, data), so no
/// model is needed — this is the upgrade path for weights saved before
/// the artifact format existed.
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failures and
/// [`NnError::Format`] when the source file is malformed.
pub fn convert_params_to_artifact(src: impl AsRef<Path>, dst: impl AsRef<Path>) -> Result<()> {
    let bytes = std::fs::read(src)?;
    let mut store = ParamStore::new();
    for (name, tensor) in read_legacy(&bytes)? {
        store.register(name, tensor);
    }
    write_artifact(&store, dst)
}

/// An opened, fully validated `.spx` artifact.
///
/// Construction reads the file once, verifies the checksum and every
/// table invariant, and converts the payload into one shared buffer.
/// Every tensor handed out afterwards is a zero-copy read-only window
/// into that buffer: cloning it, or cloning a [`ParamStore`] filled by
/// [`ArtifactReader::load_into`], bumps a reference count instead of
/// copying weights.
#[derive(Debug, Clone)]
pub struct ArtifactReader {
    infos: Vec<TensorInfo>,
    payload: SharedBuffer,
}

impl ArtifactReader {
    /// Opens and validates the artifact at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] when the file cannot be read and
    /// [`NnError::Format`] for every structural violation: bad magic,
    /// unknown version, nonzero reserved bytes, a table that does not
    /// parse exactly within its declared size, non-UTF-8 or duplicate
    /// names, unknown dtype tags, misaligned or out-of-bounds or
    /// overlapping tensor offsets, size mismatches, trailing bytes, or
    /// a checksum mismatch.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::parse(&bytes)
    }

    fn parse(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < SPX_HEADER_BYTES + size_of::<u64>() {
            return Err(format_err(format!(
                "truncated artifact: {} bytes is smaller than header + checksum",
                bytes.len()
            )));
        }
        // Checksum first: it covers everything before it, so any other
        // corruption this parser detects is also a checksum mismatch —
        // but checking up front gives corrupt files one uniform error.
        let (body, tail) = bytes.split_at(bytes.len() - size_of::<u64>());
        let declared = u64::from_le_bytes(tail.try_into().expect("8-byte split"));
        let actual = fnv1a64(body);
        if declared != actual {
            return Err(format_err(format!(
                "checksum mismatch: file says {declared:#018x}, computed {actual:#018x}"
            )));
        }

        let mut c = Cursor::new(body);
        if c.take(SPX_MAGIC.len())? != SPX_MAGIC {
            return Err(format_err("bad magic (not a .spx artifact)"));
        }
        let version = c.u32()?;
        if version != SPX_VERSION {
            return Err(format_err(format!(
                "unsupported artifact version {version} (this build reads {SPX_VERSION})"
            )));
        }
        let count = c.u32()? as usize;
        let table_bytes = c.u64()? as usize;
        let payload_bytes = c.u64()? as usize;
        if c.take(SPX_HEADER_BYTES - 32)?.iter().any(|&b| b != 0) {
            return Err(format_err("reserved header bytes are not zero"));
        }

        let table = c.take(table_bytes).map_err(|_| {
            format_err(format!(
                "table_bytes {table_bytes} exceeds the file's {} remaining bytes",
                body.len() - SPX_HEADER_BYTES
            ))
        })?;
        let mut infos = Vec::with_capacity(count.min(1024));
        let mut names = std::collections::HashSet::new();
        let mut t = Cursor::new(table);
        for i in 0..count {
            let name_len = t.u32()? as usize;
            let name = String::from_utf8(t.take(name_len)?.to_vec())
                .map_err(|_| format_err(format!("tensor {i}: name is not UTF-8")))?;
            if !names.insert(name.clone()) {
                return Err(format_err(format!("duplicate tensor name {name}")));
            }
            let tag = t.take(1)?[0];
            let dtype = DType::from_tag(tag)
                .ok_or_else(|| format_err(format!("{name}: unknown dtype tag {tag}")))?;
            let rank = t.take(1)?[0] as usize;
            let reserved = t.take(2)?;
            if reserved != [0, 0] {
                return Err(format_err(format!("{name}: reserved table bytes not zero")));
            }
            let offset = t.u64()? as usize;
            let data_bytes = t.u64()? as usize;
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(t.u64()? as usize);
            }
            let elems = shape
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .ok_or_else(|| format_err(format!("{name}: element count overflow")))?;
            let expected = elems
                .checked_mul(dtype.size_of())
                .ok_or_else(|| format_err(format!("{name}: data size overflow")))?;
            if data_bytes != expected {
                return Err(format_err(format!(
                    "{name}: data_bytes {data_bytes} does not match shape {shape:?} ({expected})"
                )));
            }
            if !offset.is_multiple_of(SPX_ALIGN) {
                return Err(format_err(format!(
                    "{name}: payload offset {offset} is not {SPX_ALIGN}-byte aligned"
                )));
            }
            let end = offset
                .checked_add(data_bytes)
                .ok_or_else(|| format_err(format!("{name}: payload extent overflow")))?;
            if end > payload_bytes {
                return Err(format_err(format!(
                    "{name}: payload window {offset}..{end} exceeds payload of {payload_bytes} bytes"
                )));
            }
            infos.push(TensorInfo {
                name,
                dtype,
                shape,
                offset,
                data_bytes,
            });
        }
        if t.remaining() != 0 {
            return Err(format_err(format!(
                "table declares {count} tensors but {} bytes of table remain",
                t.remaining()
            )));
        }
        // Tensor data regions must not overlap.
        let mut spans: Vec<(usize, usize, &str)> = infos
            .iter()
            .map(|i| (i.offset, i.offset + i.data_bytes, i.name.as_str()))
            .collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(format_err(format!(
                    "tensors {} and {} overlap in the payload",
                    pair[0].2, pair[1].2
                )));
            }
        }

        let payload_start = align_up(SPX_HEADER_BYTES + table_bytes, SPX_ALIGN);
        let expected_len = payload_start
            .checked_add(payload_bytes)
            .ok_or_else(|| format_err("file size overflow"))?;
        match body.len().cmp(&expected_len) {
            std::cmp::Ordering::Less => {
                return Err(format_err(format!(
                    "truncated artifact: header promises {expected_len} bytes before the \
                     checksum, file has {}",
                    body.len()
                )))
            }
            std::cmp::Ordering::Greater => {
                return Err(format_err(format!(
                    "trailing bytes: {} past the declared payload",
                    body.len() - expected_len
                )))
            }
            std::cmp::Ordering::Equal => {}
        }
        if !payload_bytes.is_multiple_of(4) {
            return Err(format_err(format!(
                "payload of {payload_bytes} bytes is not a whole number of f32 elements"
            )));
        }

        // The single copy from disk bytes into the shared element
        // buffer; everything handed out after this is zero-copy.
        let payload: Vec<f32> = body[payload_start..]
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        Ok(ArtifactReader {
            infos,
            payload: Arc::new(payload),
        })
    }

    /// Number of tensors in the artifact.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Returns `true` when the artifact holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Tensor names in table order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.infos.iter().map(|i| i.name.as_str())
    }

    /// Shape of the named tensor, when present.
    pub fn shape(&self, name: &str) -> Option<&[usize]> {
        self.info(name).map(|i| i.shape.as_slice())
    }

    /// The named tensor as a zero-copy window into the shared payload
    /// buffer, or `None` when the artifact has no tensor of that name.
    pub fn tensor(&self, name: &str) -> Option<Tensor> {
        let info = self.info(name)?;
        let offset_elems = info.offset / info.dtype.size_of();
        Some(
            Tensor::from_shared(Arc::clone(&self.payload), offset_elems, &info.shape)
                .expect("validated at open: window within payload"),
        )
    }

    /// Loads every tensor into `store`, matching by name — the same
    /// semantics as [`load_params`](crate::load_params) (all artifact
    /// tensors must exist in the store with identical shapes; store
    /// parameters absent from the artifact keep their values), except
    /// the assigned tensors share this reader's payload buffer instead
    /// of owning copies.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Format`] for unknown names or shape
    /// mismatches.
    pub fn load_into(&self, store: &mut ParamStore) -> Result<()> {
        let entries = self
            .infos
            .iter()
            .map(|i| {
                (
                    i.name.clone(),
                    self.tensor(&i.name).expect("info exists for its own name"),
                )
            })
            .collect();
        apply_entries(store, entries)
    }

    /// The shared payload buffer. Two readers (or tensors) sharing
    /// weights satisfy [`Arc::ptr_eq`] on their buffers.
    pub fn payload_buffer(&self) -> &SharedBuffer {
        &self.payload
    }

    /// Bytes of weight data resident in memory for this artifact — the
    /// size of the single shared payload buffer, however many replicas
    /// reference it.
    pub fn payload_bytes(&self) -> usize {
        self.payload.len() * size_of::<f32>()
    }

    fn info(&self, name: &str) -> Option<&TensorInfo> {
        self.infos.iter().find(|i| i.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn align_up_rounds_to_boundary() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
    }

    #[test]
    fn empty_store_round_trips() {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "snappix_nn_artifact_empty_{}.spx",
            std::process::id()
        ));
        write_artifact(&ParamStore::new(), &p).unwrap();
        let reader = ArtifactReader::open(&p).unwrap();
        assert!(reader.is_empty());
        assert_eq!(reader.payload_bytes(), 0);
        std::fs::remove_file(p).ok();
    }
}
