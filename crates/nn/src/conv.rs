//! 2-D and 3-D convolutions (direct loops, exact gradients).
//!
//! These exist to support the paper's baselines: C3D needs 3-D
//! convolutions over `[batch, channel, time, h, w]` video volumes, and the
//! SVC2D baseline composes the shift-variant layer in [`crate::svc`] with
//! ordinary 2-D convolutions.

use crate::{kaiming_uniform, NnError, ParamId, ParamStore, Result, Session};
use rand::Rng;
use snappix_autograd::Var;
use snappix_tensor::{parallel, Tensor};

/// Multiply-adds each scoped worker must receive before it is worth
/// spawning, fed to [`parallel::workers_for`]. Convolution madds carry
/// index math and bounds checks, so the per-madd cost is several times a
/// matmul's and the floor sits lower — a slab of this size still runs on
/// the order of 100 µs.
const PAR_FLOPS_PER_WORKER: usize = 1 << 15;

/// Effective worker count for a convolution pass of `work` multiply-adds.
fn conv_workers(work: usize) -> usize {
    parallel::workers_for(work, PAR_FLOPS_PER_WORKER)
}

/// 2-D convolution over `[batch, in_ch, h, w]` inputs.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: ParamId,
    bias: ParamId,
    in_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
}

impl Conv2d {
    /// Registers a square-kernel convolution under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] for zero-sized kernel/stride/channels.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if in_ch == 0 || out_ch == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::Config {
                context: format!(
                    "conv2d {name}: in {in_ch}, out {out_ch}, kernel {kernel}, stride {stride}"
                ),
            });
        }
        let fan_in = in_ch * kernel * kernel;
        let weight = store.register(
            format!("{name}.weight"),
            kaiming_uniform(rng, &[out_ch, in_ch, kernel, kernel], fan_in),
        );
        let bias = store.register(format!("{name}.bias"), Tensor::zeros(&[out_ch]));
        Ok(Conv2d {
            weight,
            bias,
            in_ch,
            kernel,
            stride,
            padding,
        })
    }

    /// Output spatial extent for an input extent `n`.
    pub fn out_extent(&self, n: usize) -> usize {
        (n + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Applies the convolution.
    ///
    /// # Errors
    ///
    /// Fails for inputs that are not `[batch, in_ch, h, w]` or too small
    /// for the kernel.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Result<Var> {
        let xs = sess.graph.value(x).shape().to_vec();
        if xs.len() != 4 || xs[1] != self.in_ch {
            return Err(NnError::Config {
                context: format!("conv2d expects [b, {}, h, w], got {xs:?}", self.in_ch),
            });
        }
        let (h, w) = (xs[2], xs[3]);
        if h + 2 * self.padding < self.kernel || w + 2 * self.padding < self.kernel {
            return Err(NnError::Config {
                context: format!("input {h}x{w} smaller than kernel {}", self.kernel),
            });
        }
        let wv = sess.param(self.weight);
        let bv = sess.param(self.bias);
        let value = conv2d_forward(
            sess.graph.value(x),
            sess.graph.value(wv),
            sess.graph.value(bv),
            self.stride,
            self.padding,
        );
        let (stride, padding) = (self.stride, self.padding);
        Ok(sess
            .graph
            .custom_op(value, vec![x, wv, bv], move |g, parents| {
                conv2d_backward(g, parents[0], parents[1], stride, padding)
            })?)
    }
}

/// Batched 2-D convolution forward pass, parallel over the
/// `batch x cout` output planes. Each plane is written by exactly one
/// worker in the historical loop order, so results are bit-for-bit
/// identical at every thread count (the parity tests assert this).
fn conv2d_forward(x: &Tensor, w: &Tensor, b: &Tensor, stride: usize, pad: usize) -> Tensor {
    let (batch, cin, h, wid) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (cout, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (wid + 2 * pad - kw) / stride + 1;
    let mut out = Tensor::zeros(&[batch, cout, oh, ow]);
    let (xs, ws, bs) = (x.as_slice(), w.as_slice(), b.as_slice());
    let os = out.as_mut_slice();
    let plane = |pi: usize, dst: &mut [f32]| {
        let (bi, f) = (pi / cout, pi % cout);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bs[f];
                for c in 0..cin {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix as usize >= wid {
                                continue;
                            }
                            acc += xs[((bi * cin + c) * h + iy as usize) * wid + ix as usize]
                                * ws[((f * cin + c) * kh + ky) * kw + kx];
                        }
                    }
                }
                dst[oy * ow + ox] = acc;
            }
        }
    };
    let workers = conv_workers(batch * cout * oh * ow * cin * kh * kw);
    // With one worker, par_chunks_mut runs the planes in order on the
    // calling thread — the serial reference path.
    parallel::with_threads(workers, || parallel::par_chunks_mut(os, oh * ow, plane));
    out
}

/// Batched 2-D convolution backward pass.
///
/// The historical single loop fused the three gradients; accumulating
/// `dx` (shared across `cout`) and `dw` (shared across `batch`) from one
/// loop nest cannot be split across workers without locks, so the pass is
/// restructured as three independent sweeps: `dx` parallel over `batch`,
/// `dw` parallel over `cout`, and the tiny `db` reduction serial. Per
/// gradient element the accumulation order matches the fused loop exactly
/// (bit-for-bit at every thread count), because the fused loop already
/// ordered contributions `(f, oy, ox)`-major for `dx` and
/// `(bi, oy, ox)`-major for `dw`.
///
/// The `go == 0.0` skips are kept deliberately, unlike the forward
/// matmul's IEEE-incorrect zero-skip that this PR removed: upstream
/// gradients are routinely *structurally* zero (ReLU masks, clipped
/// losses, one-hot targets), the skip is a large win there, and a
/// gradient that fails to propagate `0 x NaN` does not mask a blowup —
/// the forward pass producing the NaN already reports it.
fn conv2d_backward(g: &Tensor, x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> Vec<Tensor> {
    let (batch, cin, h, wid) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (cout, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    let (oh, ow) = (g.shape()[2], g.shape()[3]);
    let mut dx = Tensor::zeros(x.shape());
    let mut dw = Tensor::zeros(w.shape());
    let mut db = Tensor::zeros(&[cout]);
    let (gs, xs, ws) = (g.as_slice(), x.as_slice(), w.as_slice());
    let workers = conv_workers(batch * cout * oh * ow * cin * kh * kw);

    // dx: each worker owns one batch element's input gradient.
    let dx_batch = |bi: usize, dxb: &mut [f32]| {
        for f in 0..cout {
            for oy in 0..oh {
                for ox in 0..ow {
                    let go = gs[((bi * cout + f) * oh + oy) * ow + ox];
                    if go == 0.0 {
                        continue;
                    }
                    for c in 0..cin {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix as usize >= wid {
                                    continue;
                                }
                                dxb[(c * h + iy as usize) * wid + ix as usize] +=
                                    go * ws[((f * cin + c) * kh + ky) * kw + kx];
                            }
                        }
                    }
                }
            }
        }
    };
    // dw: each worker owns one output filter's weight gradient.
    let dw_filter = |f: usize, dwf: &mut [f32]| {
        for bi in 0..batch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let go = gs[((bi * cout + f) * oh + oy) * ow + ox];
                    if go == 0.0 {
                        continue;
                    }
                    for c in 0..cin {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix as usize >= wid {
                                    continue;
                                }
                                dwf[(c * kh + ky) * kw + kx] +=
                                    go * xs[((bi * cin + c) * h + iy as usize) * wid + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    };
    {
        let dxs = dx.as_mut_slice();
        let dws = dw.as_mut_slice();
        parallel::with_threads(workers, || {
            parallel::par_chunks_mut(dxs, cin * h * wid, dx_batch);
            parallel::par_chunks_mut(dws, cin * kh * kw, dw_filter);
        });
        let dbs = db.as_mut_slice();
        for (f, dbf) in dbs.iter_mut().enumerate() {
            for bi in 0..batch {
                let plane = &gs[(bi * cout + f) * oh * ow..(bi * cout + f + 1) * oh * ow];
                for &go in plane {
                    if go != 0.0 {
                        *dbf += go;
                    }
                }
            }
        }
    }
    vec![dx, dw, db]
}

/// 3-D convolution over `[batch, in_ch, t, h, w]` video volumes, as used by
/// the C3D baseline (Tran et al., reproduced at small scale).
#[derive(Debug, Clone)]
pub struct Conv3d {
    weight: ParamId,
    bias: ParamId,
    in_ch: usize,
    kernel: (usize, usize, usize),
    stride: (usize, usize, usize),
    padding: (usize, usize, usize),
}

impl Conv3d {
    /// Registers a 3-D convolution under `name` with `(t, h, w)` kernel,
    /// stride and padding.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] for zero-sized kernel/stride/channels.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: (usize, usize, usize),
        stride: (usize, usize, usize),
        padding: (usize, usize, usize),
        rng: &mut R,
    ) -> Result<Self> {
        if in_ch == 0
            || out_ch == 0
            || kernel.0 == 0
            || kernel.1 == 0
            || kernel.2 == 0
            || stride.0 == 0
            || stride.1 == 0
            || stride.2 == 0
        {
            return Err(NnError::Config {
                context: format!("conv3d {name}: degenerate kernel/stride/channels"),
            });
        }
        let fan_in = in_ch * kernel.0 * kernel.1 * kernel.2;
        let weight = store.register(
            format!("{name}.weight"),
            kaiming_uniform(rng, &[out_ch, in_ch, kernel.0, kernel.1, kernel.2], fan_in),
        );
        let bias = store.register(format!("{name}.bias"), Tensor::zeros(&[out_ch]));
        Ok(Conv3d {
            weight,
            bias,
            in_ch,
            kernel,
            stride,
            padding,
        })
    }

    /// Applies the convolution.
    ///
    /// # Errors
    ///
    /// Fails for inputs that are not `[batch, in_ch, t, h, w]` or smaller
    /// than the kernel after padding.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Result<Var> {
        let xs = sess.graph.value(x).shape().to_vec();
        if xs.len() != 5 || xs[1] != self.in_ch {
            return Err(NnError::Config {
                context: format!("conv3d expects [b, {}, t, h, w], got {xs:?}", self.in_ch),
            });
        }
        let dims = [xs[2], xs[3], xs[4]];
        let k = [self.kernel.0, self.kernel.1, self.kernel.2];
        let p = [self.padding.0, self.padding.1, self.padding.2];
        for i in 0..3 {
            if dims[i] + 2 * p[i] < k[i] {
                return Err(NnError::Config {
                    context: format!("input {dims:?} smaller than kernel {k:?}"),
                });
            }
        }
        let wv = sess.param(self.weight);
        let bv = sess.param(self.bias);
        let value = conv3d_forward(
            sess.graph.value(x),
            sess.graph.value(wv),
            sess.graph.value(bv),
            self.stride,
            self.padding,
        );
        let (stride, padding) = (self.stride, self.padding);
        Ok(sess
            .graph
            .custom_op(value, vec![x, wv, bv], move |g, parents| {
                conv3d_backward(g, parents[0], parents[1], stride, padding)
            })?)
    }
}

fn conv3d_forward(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
) -> Tensor {
    let s = x.shape();
    let (batch, cin, t, h, wid) = (s[0], s[1], s[2], s[3], s[4]);
    let ws_shape = w.shape();
    let (cout, kt, kh, kw) = (ws_shape[0], ws_shape[2], ws_shape[3], ws_shape[4]);
    let ot = (t + 2 * pad.0 - kt) / stride.0 + 1;
    let oh = (h + 2 * pad.1 - kh) / stride.1 + 1;
    let ow = (wid + 2 * pad.2 - kw) / stride.2 + 1;
    let mut out = Tensor::zeros(&[batch, cout, ot, oh, ow]);
    let (xs, ws, bs) = (x.as_slice(), w.as_slice(), b.as_slice());
    let os = out.as_mut_slice();
    // Parallel over the batch x cout output volumes; within a volume the
    // historical loop order is preserved (bit-for-bit at any thread
    // count).
    let volume = |pi: usize, dst: &mut [f32]| {
        let (bi, f) = (pi / cout, pi % cout);
        for oz in 0..ot {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bs[f];
                    for c in 0..cin {
                        for kz in 0..kt {
                            let iz = (oz * stride.0 + kz) as isize - pad.0 as isize;
                            if iz < 0 || iz as usize >= t {
                                continue;
                            }
                            for ky in 0..kh {
                                let iy = (oy * stride.1 + ky) as isize - pad.1 as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * stride.2 + kx) as isize - pad.2 as isize;
                                    if ix < 0 || ix as usize >= wid {
                                        continue;
                                    }
                                    let xi = (((bi * cin + c) * t + iz as usize) * h + iy as usize)
                                        * wid
                                        + ix as usize;
                                    let wi = (((f * cin + c) * kt + kz) * kh + ky) * kw + kx;
                                    acc += xs[xi] * ws[wi];
                                }
                            }
                        }
                    }
                    dst[(oz * oh + oy) * ow + ox] = acc;
                }
            }
        }
    };
    let workers = conv_workers(batch * cout * ot * oh * ow * cin * kt * kh * kw);
    parallel::with_threads(workers, || {
        parallel::par_chunks_mut(os, ot * oh * ow, volume)
    });
    out
}

fn conv3d_backward(
    g: &Tensor,
    x: &Tensor,
    w: &Tensor,
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
) -> Vec<Tensor> {
    let s = x.shape();
    let (batch, cin, t, h, wid) = (s[0], s[1], s[2], s[3], s[4]);
    let ws_shape = w.shape();
    let (cout, kt, kh, kw) = (ws_shape[0], ws_shape[2], ws_shape[3], ws_shape[4]);
    let (ot, oh, ow) = (g.shape()[2], g.shape()[3], g.shape()[4]);
    let mut dx = Tensor::zeros(x.shape());
    let mut dw = Tensor::zeros(w.shape());
    let mut db = Tensor::zeros(&[cout]);
    let (gs, xs, ws) = (g.as_slice(), x.as_slice(), w.as_slice());
    let workers = conv_workers(batch * cout * ot * oh * ow * cin * kt * kh * kw);

    // Same restructuring as `conv2d_backward`: three independent sweeps
    // so `dx` (parallel over batch) and `dw` (parallel over cout) write
    // lock-free; per-element accumulation order matches the historical
    // fused loop bit-for-bit, and the `go == 0.0` skips are the same
    // deliberate structural-sparsity optimization documented there.
    let dx_batch = |bi: usize, dxb: &mut [f32]| {
        for f in 0..cout {
            for oz in 0..ot {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = gs[(((bi * cout + f) * ot + oz) * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        for c in 0..cin {
                            for kz in 0..kt {
                                let iz = (oz * stride.0 + kz) as isize - pad.0 as isize;
                                if iz < 0 || iz as usize >= t {
                                    continue;
                                }
                                for ky in 0..kh {
                                    let iy = (oy * stride.1 + ky) as isize - pad.1 as isize;
                                    if iy < 0 || iy as usize >= h {
                                        continue;
                                    }
                                    for kx in 0..kw {
                                        let ix = (ox * stride.2 + kx) as isize - pad.2 as isize;
                                        if ix < 0 || ix as usize >= wid {
                                            continue;
                                        }
                                        dxb[((c * t + iz as usize) * h + iy as usize) * wid
                                            + ix as usize] += go
                                            * ws[(((f * cin + c) * kt + kz) * kh + ky) * kw + kx];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    };
    let dw_filter = |f: usize, dwf: &mut [f32]| {
        for bi in 0..batch {
            for oz in 0..ot {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = gs[(((bi * cout + f) * ot + oz) * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        for c in 0..cin {
                            for kz in 0..kt {
                                let iz = (oz * stride.0 + kz) as isize - pad.0 as isize;
                                if iz < 0 || iz as usize >= t {
                                    continue;
                                }
                                for ky in 0..kh {
                                    let iy = (oy * stride.1 + ky) as isize - pad.1 as isize;
                                    if iy < 0 || iy as usize >= h {
                                        continue;
                                    }
                                    for kx in 0..kw {
                                        let ix = (ox * stride.2 + kx) as isize - pad.2 as isize;
                                        if ix < 0 || ix as usize >= wid {
                                            continue;
                                        }
                                        dwf[((c * kt + kz) * kh + ky) * kw + kx] += go
                                            * xs[(((bi * cin + c) * t + iz as usize) * h
                                                + iy as usize)
                                                * wid
                                                + ix as usize];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    };
    {
        let dxs = dx.as_mut_slice();
        let dws = dw.as_mut_slice();
        parallel::with_threads(workers, || {
            parallel::par_chunks_mut(dxs, cin * t * h * wid, dx_batch);
            parallel::par_chunks_mut(dws, cin * kt * kh * kw, dw_filter);
        });
        let dbs = db.as_mut_slice();
        let vol = ot * oh * ow;
        for (f, dbf) in dbs.iter_mut().enumerate() {
            for bi in 0..batch {
                let plane = &gs[(bi * cout + f) * vol..(bi * cout + f + 1) * vol];
                for &go in plane {
                    if go != 0.0 {
                        *dbf += go;
                    }
                }
            }
        }
    }
    vec![dx, dw, db]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use snappix_autograd::check_gradients;

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1 and zero bias reproduces the input.
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let conv = Conv2d::new(&mut store, "c", 1, 1, 1, 1, 0, &mut rng).unwrap();
        let ids = store.ids();
        *store.value_mut(ids[0]) = Tensor::ones(&[1, 1, 1, 1]);
        let x = Tensor::rand_uniform(&mut rng, &[1, 1, 3, 3], -1.0, 1.0);
        let mut sess = Session::inference(&store);
        let xv = sess.input(x.clone());
        let y = conv.forward(&mut sess, xv).unwrap();
        assert!(sess.graph.value(y).approx_eq(&x, 1e-6));
    }

    #[test]
    fn conv2d_shapes_with_stride_and_padding() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let conv = Conv2d::new(&mut store, "c", 2, 3, 3, 2, 1, &mut rng).unwrap();
        assert_eq!(conv.out_extent(8), 4);
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::zeros(&[2, 2, 8, 8]));
        let y = conv.forward(&mut sess, x).unwrap();
        assert_eq!(sess.graph.value(y).shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn conv2d_validation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        assert!(Conv2d::new(&mut store, "c", 0, 1, 3, 1, 0, &mut rng).is_err());
        assert!(Conv2d::new(&mut store, "c", 1, 1, 0, 1, 0, &mut rng).is_err());
        let conv = Conv2d::new(&mut store, "c", 1, 1, 3, 1, 0, &mut rng).unwrap();
        let mut sess = Session::inference(&store);
        let bad_ch = sess.input(Tensor::zeros(&[1, 2, 8, 8]));
        assert!(conv.forward(&mut sess, bad_ch).is_err());
        let too_small = sess.input(Tensor::zeros(&[1, 1, 2, 2]));
        assert!(conv.forward(&mut sess, too_small).is_err());
    }

    #[test]
    fn conv2d_gradients_numeric() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::rand_uniform(&mut rng, &[1, 2, 4, 4], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[2, 2, 3, 3], -0.5, 0.5);
        let b = Tensor::rand_uniform(&mut rng, &[2], -0.5, 0.5);
        check_gradients(&[x, w, b], |g, vars| {
            let value = conv2d_forward(g.value(vars[0]), g.value(vars[1]), g.value(vars[2]), 1, 1);
            let y = g.custom_op(value, vec![vars[0], vars[1], vars[2]], |up, parents| {
                conv2d_backward(up, parents[0], parents[1], 1, 1)
            })?;
            let q = g.mul(y, y)?;
            g.sum(q)
        })
        .unwrap();
    }

    #[test]
    fn conv3d_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let conv = Conv3d::new(
            &mut store,
            "c3",
            1,
            4,
            (3, 3, 3),
            (1, 1, 1),
            (1, 1, 1),
            &mut rng,
        )
        .unwrap();
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::zeros(&[1, 1, 8, 8, 8]));
        let y = conv.forward(&mut sess, x).unwrap();
        assert_eq!(sess.graph.value(y).shape(), &[1, 4, 8, 8, 8]);
    }

    #[test]
    fn conv3d_gradients_numeric() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::rand_uniform(&mut rng, &[1, 1, 3, 4, 4], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[2, 1, 2, 2, 2], -0.5, 0.5);
        let b = Tensor::rand_uniform(&mut rng, &[2], -0.5, 0.5);
        check_gradients(&[x, w, b], |g, vars| {
            let value = conv3d_forward(
                g.value(vars[0]),
                g.value(vars[1]),
                g.value(vars[2]),
                (1, 1, 1),
                (0, 0, 0),
            );
            let y = g.custom_op(value, vec![vars[0], vars[1], vars[2]], |up, parents| {
                conv3d_backward(up, parents[0], parents[1], (1, 1, 1), (0, 0, 0))
            })?;
            let q = g.mul(y, y)?;
            g.sum(q)
        })
        .unwrap();
    }

    /// Forward and backward must be bit-for-bit identical across thread
    /// counts 1, 2 and > batch*cout, on odd shapes with stride and
    /// padding (micro-split remainders on every axis).
    #[test]
    fn conv2d_parallel_matches_serial_bit_for_bit() {
        use snappix_tensor::parallel::with_threads;
        let mut rng = StdRng::seed_from_u64(7);
        // Sized for >= 2 workers' worth of PAR_FLOPS_PER_WORKER so the
        // parallel path actually engages (4*6 planes of 10x11 outputs,
        // 27-element kernels).
        let x = Tensor::rand_uniform(&mut rng, &[4, 3, 19, 21], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[6, 3, 3, 3], -0.5, 0.5);
        let b = Tensor::rand_uniform(&mut rng, &[6], -0.5, 0.5);
        let y_ref = with_threads(1, || conv2d_forward(&x, &w, &b, 2, 1));
        let g = Tensor::rand_uniform(&mut rng, y_ref.shape(), -1.0, 1.0);
        let grads_ref = with_threads(1, || conv2d_backward(&g, &x, &w, 2, 1));
        for threads in [2usize, 4, 4 * 6 + 2] {
            let y = with_threads(threads, || conv2d_forward(&x, &w, &b, 2, 1));
            assert_eq!(y.as_slice(), y_ref.as_slice(), "{threads} threads");
            let grads = with_threads(threads, || conv2d_backward(&g, &x, &w, 2, 1));
            for (got, want) in grads.iter().zip(&grads_ref) {
                assert_eq!(got.as_slice(), want.as_slice(), "{threads} threads");
            }
        }
    }

    #[test]
    fn conv3d_parallel_matches_serial_bit_for_bit() {
        use snappix_tensor::parallel::with_threads;
        let mut rng = StdRng::seed_from_u64(8);
        // >= 4 workers' worth of PAR_FLOPS_PER_WORKER (3*4 volumes of
        // 7x5x9 outputs, 36-element kernels).
        let x = Tensor::rand_uniform(&mut rng, &[3, 2, 6, 9, 11], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[4, 2, 2, 3, 3], -0.5, 0.5);
        let b = Tensor::rand_uniform(&mut rng, &[4], -0.5, 0.5);
        let (stride, pad) = ((1, 2, 1), (1, 1, 0));
        let y_ref = with_threads(1, || conv3d_forward(&x, &w, &b, stride, pad));
        let g = Tensor::rand_uniform(&mut rng, y_ref.shape(), -1.0, 1.0);
        let grads_ref = with_threads(1, || conv3d_backward(&g, &x, &w, stride, pad));
        for threads in [2usize, 3 * 4 + 5] {
            let y = with_threads(threads, || conv3d_forward(&x, &w, &b, stride, pad));
            assert_eq!(y.as_slice(), y_ref.as_slice(), "{threads} threads");
            let grads = with_threads(threads, || conv3d_backward(&g, &x, &w, stride, pad));
            for (got, want) in grads.iter().zip(&grads_ref) {
                assert_eq!(got.as_slice(), want.as_slice(), "{threads} threads");
            }
        }
    }

    #[test]
    fn conv3d_validation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        assert!(Conv3d::new(
            &mut store,
            "c",
            1,
            1,
            (0, 3, 3),
            (1, 1, 1),
            (0, 0, 0),
            &mut rng
        )
        .is_err());
        let conv = Conv3d::new(
            &mut store,
            "c",
            2,
            1,
            (3, 3, 3),
            (1, 1, 1),
            (0, 0, 0),
            &mut rng,
        )
        .unwrap();
        let mut sess = Session::inference(&store);
        let bad = sess.input(Tensor::zeros(&[1, 1, 8, 8, 8]));
        assert!(conv.forward(&mut sess, bad).is_err());
        let small = sess.input(Tensor::zeros(&[1, 2, 2, 8, 8]));
        assert!(conv.forward(&mut sess, small).is_err());
    }
}
