//! Pre-norm transformer encoder block.

use crate::{LayerNorm, Mlp, MultiHeadAttention, ParamStore, Result, Session};
use rand::Rng;
use snappix_autograd::Var;

/// A pre-norm transformer block:
/// `x + MHA(LN(x))` followed by `x + MLP(LN(x))`.
///
/// Stacked `depth` times, these blocks form the encoder of both SnapPix
/// variants and the decoder used for reconstruction pre-training
/// (paper Sec. IV).
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    mlp: Mlp,
}

impl TransformerBlock {
    /// Registers one block's weights under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::Config`] when `dim` is not divisible by
    /// `heads`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        mlp_hidden: usize,
        rng: &mut R,
    ) -> Result<Self> {
        Ok(TransformerBlock {
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            attn: MultiHeadAttention::new(store, &format!("{name}.attn"), dim, heads, rng)?,
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            mlp: Mlp::new(store, &format!("{name}.mlp"), dim, mlp_hidden, rng),
        })
    }

    /// Applies the block to `[batch, seq, dim]` tokens.
    ///
    /// # Errors
    ///
    /// Fails for inputs whose trailing dimension differs from the
    /// construction-time `dim`.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Result<Var> {
        let normed = self.ln1.forward(sess, x)?;
        let attended = self.attn.forward(sess, normed)?;
        let x = sess.graph.add(x, attended)?;
        let normed = self.ln2.forward(sess, x)?;
        let fed = self.mlp.forward(sess, normed)?;
        Ok(sess.graph.add(x, fed)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use snappix_tensor::Tensor;

    #[test]
    fn preserves_shape_and_is_finite() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "blk", 16, 4, 32, &mut rng).unwrap();
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::rand_uniform(&mut rng, &[2, 6, 16], -1.0, 1.0));
        let y = block.forward(&mut sess, x).unwrap();
        assert_eq!(sess.graph.value(y).shape(), &[2, 6, 16]);
        assert!(sess.graph.value(y).as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn residual_path_keeps_input_influence() {
        // Zeroing all weights except LayerNorm leaves the residual path, so
        // output ~ input + const; check output moves with input.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "blk", 8, 2, 16, &mut rng).unwrap();
        let run = |inp: &Tensor| {
            let mut sess = Session::inference(&store);
            let x = sess.input(inp.clone());
            let y = block.forward(&mut sess, x).unwrap();
            sess.graph.value(y).clone()
        };
        let a = run(&Tensor::zeros(&[1, 2, 8]));
        let b = run(&Tensor::full(&[1, 2, 8], 5.0));
        assert!(!a.approx_eq(&b, 1.0), "input change must reach the output");
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "blk", 8, 2, 16, &mut rng).unwrap();
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::rand_uniform(&mut rng, &[1, 4, 8], -1.0, 1.0));
        let y = block.forward(&mut sess, x).unwrap();
        let sq = sess.graph.mul(y, y).unwrap();
        let loss = sess.graph.mean(sq).unwrap();
        let grads = sess.backward(loss).unwrap();
        for id in store.ids() {
            assert!(
                grads.get(id).is_some(),
                "missing grad for {}",
                store.name(id)
            );
        }
    }
}
