//! Pooling operations.

use crate::{NnError, Result, Session};
use snappix_autograd::Var;
use snappix_tensor::Tensor;

/// Non-overlapping 3-D max pooling over `[batch, ch, t, h, w]` with a
/// `(kt, kh, kw)` window (stride equals the window, trailing remainder is
/// dropped, matching the C3D baseline's pooling schedule).
///
/// # Errors
///
/// Fails for non-rank-5 inputs, zero-sized windows, or windows larger than
/// the input volume.
///
/// # Examples
///
/// ```
/// use snappix_nn::{max_pool3d, ParamStore, Session};
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let store = ParamStore::new();
/// let mut sess = Session::inference(&store);
/// let x = sess.input(Tensor::zeros(&[1, 2, 4, 8, 8]));
/// let y = max_pool3d(&mut sess, x, (2, 2, 2))?;
/// assert_eq!(sess.graph.value(y).shape(), &[1, 2, 2, 4, 4]);
/// # Ok(())
/// # }
/// ```
pub fn max_pool3d(sess: &mut Session<'_>, x: Var, window: (usize, usize, usize)) -> Result<Var> {
    let shape = sess.graph.value(x).shape().to_vec();
    if shape.len() != 5 {
        return Err(NnError::Config {
            context: format!("max_pool3d expects rank-5 input, got {shape:?}"),
        });
    }
    let (kt, kh, kw) = window;
    if kt == 0 || kh == 0 || kw == 0 {
        return Err(NnError::Config {
            context: "max_pool3d window must be positive".to_string(),
        });
    }
    let (t, h, w) = (shape[2], shape[3], shape[4]);
    if kt > t || kh > h || kw > w {
        return Err(NnError::Config {
            context: format!("window {window:?} larger than volume {t}x{h}x{w}"),
        });
    }
    let value = pool_forward(sess.graph.value(x), window);
    Ok(sess.graph.custom_op(value, vec![x], move |g, parents| {
        vec![pool_backward(g, parents[0], window)]
    })?)
}

fn pool_forward(x: &Tensor, (kt, kh, kw): (usize, usize, usize)) -> Tensor {
    let s = x.shape();
    let (batch, ch, t, h, w) = (s[0], s[1], s[2], s[3], s[4]);
    let (ot, oh, ow) = (t / kt, h / kh, w / kw);
    let mut out = Tensor::zeros(&[batch, ch, ot, oh, ow]);
    let xs = x.as_slice();
    let os = out.as_mut_slice();
    for b in 0..batch {
        for c in 0..ch {
            for oz in 0..ot {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for dz in 0..kt {
                            for dy in 0..kh {
                                for dx in 0..kw {
                                    let v =
                                        xs[(((b * ch + c) * t + oz * kt + dz) * h + oy * kh + dy)
                                            * w
                                            + ox * kw
                                            + dx];
                                    best = best.max(v);
                                }
                            }
                        }
                        os[(((b * ch + c) * ot + oz) * oh + oy) * ow + ox] = best;
                    }
                }
            }
        }
    }
    out
}

fn pool_backward(g: &Tensor, x: &Tensor, (kt, kh, kw): (usize, usize, usize)) -> Tensor {
    let s = x.shape();
    let (batch, ch, t, h, w) = (s[0], s[1], s[2], s[3], s[4]);
    let (ot, oh, ow) = (t / kt, h / kh, w / kw);
    let mut dx = Tensor::zeros(x.shape());
    let xs = x.as_slice();
    let gs = g.as_slice();
    let dxs = dx.as_mut_slice();
    for b in 0..batch {
        for c in 0..ch {
            for oz in 0..ot {
                for oy in 0..oh {
                    for ox in 0..ow {
                        // Recompute the argmax (first max wins, matching forward).
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dz in 0..kt {
                            for dy in 0..kh {
                                for dx_ in 0..kw {
                                    let idx =
                                        (((b * ch + c) * t + oz * kt + dz) * h + oy * kh + dy) * w
                                            + ox * kw
                                            + dx_;
                                    if xs[idx] > best {
                                        best = xs[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                        }
                        dxs[best_idx] += gs[(((b * ch + c) * ot + oz) * oh + oy) * ow + ox];
                    }
                }
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamStore;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pooling_takes_window_max() {
        let store = ParamStore::new();
        let mut sess = Session::inference(&store);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 1, 4, 4]).unwrap();
        let xv = sess.input(x);
        let y = max_pool3d(&mut sess, xv, (1, 2, 2)).unwrap();
        assert_eq!(sess.graph.value(y).as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn gradient_routes_to_argmax_only() {
        let store = ParamStore::new();
        let mut sess = Session::new(&store);
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 1, 2, 2]).unwrap();
        let xv = sess.graph.leaf(x, true);
        let y = max_pool3d(&mut sess, xv, (1, 2, 2)).unwrap();
        let loss = sess.graph.sum(y).unwrap();
        sess.graph.backward(loss).unwrap();
        assert_eq!(
            sess.graph.grad(xv).unwrap().as_slice(),
            &[0.0, 1.0, 0.0, 0.0]
        );
    }

    #[test]
    fn remainder_is_dropped() {
        let store = ParamStore::new();
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::zeros(&[1, 1, 5, 5, 5]));
        let y = max_pool3d(&mut sess, x, (2, 2, 2)).unwrap();
        assert_eq!(sess.graph.value(y).shape(), &[1, 1, 2, 2, 2]);
    }

    #[test]
    fn validation_errors() {
        let store = ParamStore::new();
        let mut sess = Session::inference(&store);
        let bad_rank = sess.input(Tensor::zeros(&[2, 2, 2]));
        assert!(max_pool3d(&mut sess, bad_rank, (1, 1, 1)).is_err());
        let x = sess.input(Tensor::zeros(&[1, 1, 2, 2, 2]));
        assert!(max_pool3d(&mut sess, x, (0, 1, 1)).is_err());
        assert!(max_pool3d(&mut sess, x, (4, 1, 1)).is_err());
    }

    #[test]
    fn numeric_gradient() {
        use snappix_autograd::check_gradients;
        let mut rng = StdRng::seed_from_u64(0);
        // Distinct values avoid argmax ties that break finite differences.
        let x = Tensor::rand_uniform(&mut rng, &[1, 1, 2, 4, 4], -1.0, 1.0);
        check_gradients(&[x], |g, vars| {
            let value = pool_forward(g.value(vars[0]), (2, 2, 2));
            let y = g.custom_op(value, vec![vars[0]], |up, parents| {
                vec![pool_backward(up, parents[0], (2, 2, 2))]
            })?;
            let q = g.mul(y, y)?;
            g.sum(q)
        })
        .unwrap();
    }
}
