use snappix_autograd::AutogradError;
use snappix_tensor::TensorError;
use std::fmt;

/// Error type for neural-network construction, training and persistence.
#[derive(Debug)]
pub enum NnError {
    /// An autograd operation failed.
    Autograd(AutogradError),
    /// A raw tensor operation failed.
    Tensor(TensorError),
    /// A parameter id was used with the wrong store, or a gradient was
    /// missing for a parameter being optimized.
    Parameter {
        /// Human-readable description of the problem.
        context: String,
    },
    /// Layer configuration is invalid (e.g. embedding dim not divisible by
    /// the number of heads).
    Config {
        /// Human-readable description of the problem.
        context: String,
    },
    /// Weight (de)serialization failed.
    Io(std::io::Error),
    /// A weight file was malformed or did not match the store layout.
    Format {
        /// Human-readable description of the problem.
        context: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Autograd(e) => write!(f, "autograd error: {e}"),
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Parameter { context } => write!(f, "parameter error: {context}"),
            NnError::Config { context } => write!(f, "invalid configuration: {context}"),
            NnError::Io(e) => write!(f, "i/o error: {e}"),
            NnError::Format { context } => write!(f, "weight format error: {context}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Autograd(e) => Some(e),
            NnError::Tensor(e) => Some(e),
            NnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AutogradError> for NnError {
    fn from(e: AutogradError) -> Self {
        NnError::Autograd(e)
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: NnError = TensorError::InvalidArgument {
            context: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("tensor error"));
        let e: NnError = AutogradError::NotScalar { shape: vec![2] }.into();
        assert!(e.to_string().contains("autograd"));
        assert!(std::error::Error::source(&e).is_some());
        let e = NnError::Config {
            context: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
    }
}
