//! Multi-head self-attention.

use crate::{Linear, NnError, ParamStore, Result, Session};
use rand::Rng;
use snappix_autograd::Var;

/// Multi-head self-attention over `[batch, seq, dim]` token sequences.
///
/// This is the cross-tile information-sharing half of the CE-optimized ViT
/// (paper Sec. IV): patch-wise embeddings and MLPs handle within-tile pixel
/// variation, while attention lets tiles exchange scene context.
///
/// # Examples
///
/// ```
/// use snappix_nn::{MultiHeadAttention, ParamStore, Session};
/// use snappix_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut store = ParamStore::new();
/// let mha = MultiHeadAttention::new(&mut store, "attn", 16, 4, &mut rng)?;
/// let mut sess = Session::inference(&store);
/// let x = sess.input(Tensor::zeros(&[2, 5, 16]));
/// let y = mha.forward(&mut sess, x)?;
/// assert_eq!(sess.graph.value(y).shape(), &[2, 5, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    proj: Linear,
    dim: usize,
    heads: usize,
}

impl MultiHeadAttention {
    /// Registers attention weights under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] when `dim` is not divisible by `heads`
    /// or either is zero.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if heads == 0 || dim == 0 || !dim.is_multiple_of(heads) {
            return Err(NnError::Config {
                context: format!("dim {dim} not divisible by heads {heads}"),
            });
        }
        Ok(MultiHeadAttention {
            q: Linear::new(store, &format!("{name}.q"), dim, dim, rng),
            k: Linear::new(store, &format!("{name}.k"), dim, dim, rng),
            v: Linear::new(store, &format!("{name}.v"), dim, dim, rng),
            proj: Linear::new(store, &format!("{name}.proj"), dim, dim, rng),
            dim,
            heads,
        })
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Applies scaled dot-product self-attention.
    ///
    /// # Errors
    ///
    /// Fails when the input is not `[batch, seq, dim]` with the
    /// construction-time `dim`.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Result<Var> {
        let shape = sess.graph.value(x).shape().to_vec();
        if shape.len() != 3 || shape[2] != self.dim {
            return Err(NnError::Config {
                context: format!(
                    "attention expects [batch, seq, {}], got {shape:?}",
                    self.dim
                ),
            });
        }
        let (batch, seq) = (shape[0], shape[1]);
        let dh = self.dim / self.heads;

        let q = self.q.forward(sess, x)?;
        let k = self.k.forward(sess, x)?;
        let v = self.v.forward(sess, x)?;

        // [b, s, d] -> [b*heads, s, dh]
        let split = |sess: &mut Session<'_>, t: Var| -> Result<Var> {
            let t = sess.graph.reshape(t, &[batch, seq, self.heads, dh])?;
            let t = sess.graph.permute(t, &[0, 2, 1, 3])?;
            Ok(sess.graph.reshape(t, &[batch * self.heads, seq, dh])?)
        };
        let qh = split(sess, q)?;
        let kh = split(sess, k)?;
        let vh = split(sess, v)?;

        let kt = sess.graph.transpose(kh)?;
        let scores = sess.graph.matmul(qh, kt)?;
        let scores = sess.graph.scale(scores, 1.0 / (dh as f32).sqrt())?;
        let attn = sess.graph.softmax(scores)?;
        let ctx = sess.graph.matmul(attn, vh)?;

        // [b*heads, s, dh] -> [b, s, d]
        let ctx = sess.graph.reshape(ctx, &[batch, self.heads, seq, dh])?;
        let ctx = sess.graph.permute(ctx, &[0, 2, 1, 3])?;
        let ctx = sess.graph.reshape(ctx, &[batch, seq, self.dim])?;
        self.proj.forward(sess, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use snappix_tensor::Tensor;

    #[test]
    fn construction_validates_heads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        assert!(MultiHeadAttention::new(&mut store, "a", 16, 3, &mut rng).is_err());
        assert!(MultiHeadAttention::new(&mut store, "a", 16, 0, &mut rng).is_err());
        let mha = MultiHeadAttention::new(&mut store, "a", 16, 4, &mut rng).unwrap();
        assert_eq!(mha.heads(), 4);
    }

    #[test]
    fn forward_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 12, 3, &mut rng).unwrap();
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::rand_uniform(&mut rng, &[2, 7, 12], -1.0, 1.0));
        let y = mha.forward(&mut sess, x).unwrap();
        assert_eq!(sess.graph.value(y).shape(), &[2, 7, 12]);
        assert!(sess.graph.value(y).as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 12, 3, &mut rng).unwrap();
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::zeros(&[2, 7, 8]));
        assert!(mha.forward(&mut sess, x).is_err());
        let x2 = sess.input(Tensor::zeros(&[2, 12]));
        assert!(mha.forward(&mut sess, x2).is_err());
    }

    #[test]
    fn attention_is_permutation_equivariant_without_positions() {
        // Self-attention with no positional encoding commutes with token
        // permutation; verify on a 2-token swap.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng).unwrap();
        let tok = Tensor::rand_uniform(&mut rng, &[1, 2, 8], -1.0, 1.0);
        let swapped = {
            let t0 = tok.slice_axis(1, 0, 1).unwrap();
            let t1 = tok.slice_axis(1, 1, 2).unwrap();
            Tensor::concat(&[&t1, &t0], 1).unwrap()
        };
        let run = |input: Tensor| {
            let mut sess = Session::inference(&store);
            let x = sess.input(input);
            let y = mha.forward(&mut sess, x).unwrap();
            sess.graph.value(y).clone()
        };
        let a = run(tok);
        let b = run(swapped);
        let b_unswapped = {
            let t0 = b.slice_axis(1, 0, 1).unwrap();
            let t1 = b.slice_axis(1, 1, 2).unwrap();
            Tensor::concat(&[&t1, &t0], 1).unwrap()
        };
        assert!(a.approx_eq(&b_unswapped, 1e-4));
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng).unwrap();
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::rand_uniform(&mut rng, &[1, 3, 8], -1.0, 1.0));
        let y = mha.forward(&mut sess, x).unwrap();
        let loss = sess.graph.mean(y).unwrap();
        let grads = sess.backward(loss).unwrap();
        for id in store.ids() {
            assert!(
                grads.get(id).is_some(),
                "missing grad for {}",
                store.name(id)
            );
        }
    }
}
