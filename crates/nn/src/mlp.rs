//! Transformer feed-forward block.

use crate::{Linear, ParamStore, Result, Session};
use rand::Rng;
use snappix_autograd::Var;

/// Two-layer perceptron with GELU, the feed-forward half of a transformer
/// block.
///
/// In the CE-optimized ViT (paper Sec. IV) these MLPs are what learns to
/// undo the *within-tile* pixel non-uniformity introduced by the
/// tile-repetitive coded-exposure pattern, because every patch sees the
/// same exposure layout.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// Registers a `dim -> hidden -> dim` MLP under `name`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        Mlp {
            fc1: Linear::new(store, &format!("{name}.fc1"), dim, hidden, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), hidden, dim, rng),
        }
    }

    /// Applies `fc2(gelu(fc1(x)))`.
    ///
    /// # Errors
    ///
    /// Fails when the trailing input dimension does not match the
    /// construction-time `dim`.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Result<Var> {
        let h = self.fc1.forward(sess, x)?;
        let h = sess.graph.gelu(h)?;
        self.fc2.forward(sess, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use snappix_tensor::Tensor;

    #[test]
    fn preserves_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "mlp", 8, 32, &mut rng);
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::zeros(&[2, 5, 8]));
        let y = mlp.forward(&mut sess, x).unwrap();
        assert_eq!(sess.graph.value(y).shape(), &[2, 5, 8]);
    }

    #[test]
    fn registers_four_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let _mlp = Mlp::new(&mut store, "mlp", 4, 8, &mut rng);
        assert_eq!(store.len(), 4); // two weights + two biases
        assert!(store.iter().any(|(_, n, _)| n == "mlp.fc1.weight"));
    }
}
