//! Weight initializers.

use rand::Rng;
use snappix_tensor::Tensor;

/// Xavier/Glorot uniform initialization: samples from
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
///
/// Used for the linear projections of the ViT models so activations keep a
/// stable scale through depth.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(rng, shape, -limit, limit)
}

/// Kaiming/He uniform initialization: samples from
/// `U(-sqrt(6/fan_in), +sqrt(6/fan_in))`.
///
/// Used for the convolutional baselines (C3D, SVC2D) whose ReLU
/// nonlinearities halve the activation variance.
pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    Tensor::rand_uniform(rng, shape, -limit, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = xavier_uniform(&mut rng, &[100, 50], 100, 50);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= limit));
        // Not degenerate.
        assert!(t.variance() > 0.0);
    }

    #[test]
    fn kaiming_within_limit() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = kaiming_uniform(&mut rng, &[64, 32], 32);
        let limit = (6.0f32 / 32.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn kaiming_zero_fan_in_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = kaiming_uniform(&mut rng, &[4], 0);
        assert!(t.as_slice().iter().all(|&x| x.is_finite()));
    }
}
