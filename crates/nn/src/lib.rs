//! Neural-network building blocks for the SnapPix reproduction.
//!
//! Provides the layers the paper's vision models are assembled from
//! (Sec. IV): linear projections, layer normalization, multi-head
//! attention, transformer blocks, 2-D/3-D convolutions (for the C3D and
//! SVC2D baselines) and the shift-variant convolution of Okawara et al.,
//! plus optimizers, learning-rate schedules and weight persistence.
//!
//! The crate follows a define-by-run discipline: layers own their weights
//! inside a [`ParamStore`]; each training step opens a [`Session`] that
//! leafs parameters into a fresh autograd [`Graph`](snappix_autograd::Graph),
//! builds the loss, backpropagates, and hands per-parameter gradients to an
//! [`Optimizer`].
//!
//! # Examples
//!
//! ```
//! use snappix_nn::{Linear, ParamStore, Session, Sgd, Optimizer};
//! use snappix_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, "fc", 4, 2, &mut rng);
//! let mut opt = Sgd::new(0.1);
//!
//! let mut sess = Session::new(&store);
//! let x = sess.input(Tensor::ones(&[3, 4]));
//! let y = layer.forward(&mut sess, x)?;
//! let loss = sess.graph.mean(y)?;
//! let grads = sess.backward(loss)?;
//! opt.step(&mut store, &grads)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod attention;
mod conv;
mod error;
mod init;
mod linear;
mod mlp;
mod norm;
mod optim;
mod param;
mod pool;
mod schedule;
mod serialize;
mod svc;
mod transformer;

pub use artifact::{
    convert_params_to_artifact, fnv1a64, write_artifact, ArtifactReader, SPX_ALIGN,
    SPX_HEADER_BYTES, SPX_MAGIC, SPX_VERSION,
};
pub use attention::MultiHeadAttention;
pub use conv::{Conv2d, Conv3d};
pub use error::NnError;
pub use init::{kaiming_uniform, xavier_uniform};
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNorm;
pub use optim::{Adam, Optimizer, Sgd};
pub use param::{resident_weight_bytes, Gradients, ParamId, ParamStore, Session, SessionPool};
pub use pool::max_pool3d;
pub use schedule::LrSchedule;
pub use serialize::{load_params, save_params};
pub use svc::ShiftVariantConv2d;
pub use transformer::TransformerBlock;

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, NnError>;
