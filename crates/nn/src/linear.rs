//! Fully connected layer.

use crate::{xavier_uniform, ParamId, ParamStore, Result, Session};
use rand::Rng;
use snappix_autograd::Var;
use snappix_tensor::Tensor;

/// A dense affine layer: `y = x W + b`.
///
/// Accepts inputs of shape `[batch, in]` or `[batch, seq, in]` (the weight
/// is shared across the sequence axis, as in transformer token mixing).
///
/// # Examples
///
/// ```
/// use snappix_nn::{Linear, ParamStore, Session};
/// use snappix_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut store = ParamStore::new();
/// let fc = Linear::new(&mut store, "head", 8, 3, &mut rng);
/// let mut sess = Session::inference(&store);
/// let x = sess.input(Tensor::zeros(&[4, 8]));
/// let y = fc.forward(&mut sess, x)?;
/// assert_eq!(sess.graph.value(y).shape(), &[4, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Registers a new layer's weights under `name` in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let weight = store.register(
            format!("{name}.weight"),
            xavier_uniform(rng, &[in_features, out_features], in_features, out_features),
        );
        let bias = store.register(format!("{name}.bias"), Tensor::zeros(&[out_features]));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer inside `sess`.
    ///
    /// # Errors
    ///
    /// Fails when the trailing input dimension differs from
    /// [`Linear::in_features`].
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Result<Var> {
        let w = sess.param(self.weight);
        let b = sess.param(self.bias);
        let y = sess.graph.matmul(x, w)?;
        Ok(sess.graph.add(y, b)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimizer, Sgd};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let fc = Linear::new(&mut store, "fc", 4, 2, &mut rng);
        assert_eq!(fc.in_features(), 4);
        assert_eq!(fc.out_features(), 2);
        let mut sess = Session::inference(&store);
        let x2 = sess.input(Tensor::zeros(&[3, 4]));
        let y2 = fc.forward(&mut sess, x2).unwrap();
        assert_eq!(sess.graph.value(y2).shape(), &[3, 2]);
        let x3 = sess.input(Tensor::zeros(&[2, 5, 4]));
        let y3 = fc.forward(&mut sess, x3).unwrap();
        assert_eq!(sess.graph.value(y3).shape(), &[2, 5, 2]);
    }

    #[test]
    fn forward_rejects_bad_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let fc = Linear::new(&mut store, "fc", 4, 2, &mut rng);
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::zeros(&[3, 5]));
        assert!(fc.forward(&mut sess, x).is_err());
    }

    #[test]
    fn can_fit_a_linear_map() {
        // Teach y = 2x - 1 to a 1 -> 1 layer.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let fc = Linear::new(&mut store, "fc", 1, 1, &mut rng);
        let mut opt = Sgd::new(0.1);
        let xs = Tensor::from_vec(vec![-1.0, 0.0, 1.0, 2.0], &[4, 1]).unwrap();
        let ys = Tensor::from_vec(vec![-3.0, -1.0, 1.0, 3.0], &[4, 1]).unwrap();
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let mut sess = Session::new(&store);
            let x = sess.input(xs.clone());
            let pred = fc.forward(&mut sess, x).unwrap();
            let loss = sess.graph.mse_loss(pred, &ys).unwrap();
            last = sess.graph.value(loss).item().unwrap();
            let grads = sess.backward(loss).unwrap();
            opt.step(&mut store, &grads).unwrap();
        }
        assert!(last < 1e-3, "final loss {last}");
    }
}
