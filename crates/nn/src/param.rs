//! Parameter storage and per-step training sessions.

use crate::{NnError, Result};
use snappix_autograd::{Graph, Var};
use snappix_tensor::Tensor;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Owns the learnable tensors of one or more models.
///
/// Layers register parameters at construction time and keep only the
/// returned [`ParamId`]s; a [`Session`] binds those ids into an autograd
/// graph for each training step, and an [`Optimizer`](crate::Optimizer)
/// mutates the stored values between steps.
///
/// # Examples
///
/// ```
/// use snappix_nn::ParamStore;
/// use snappix_tensor::Tensor;
///
/// let mut store = ParamStore::new();
/// let id = store.register("w", Tensor::zeros(&[2, 2]));
/// assert_eq!(store.value(id).shape(), &[2, 2]);
/// assert_eq!(store.name(id), "w");
/// ```
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named parameter, returning its id.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Current value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different store.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to a parameter value (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different store.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Name of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different store.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// All parameter ids in registration order.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.values.len()).map(ParamId).collect()
    }

    /// Moves every owned parameter into shared read-only storage so
    /// that clones of this store reference the same buffers instead of
    /// deep-copying every weight.
    ///
    /// Each owned tensor is *moved* behind its own `Arc` (no element is
    /// copied); tensors already backed by shared storage — e.g. loaded
    /// from a model artifact — keep their existing buffers. Training
    /// after this call still works: the first mutation of a parameter
    /// detaches a private copy (copy-on-write).
    pub fn make_shared(&mut self) {
        self.values = std::mem::take(&mut self.values)
            .into_iter()
            .map(Tensor::into_shared)
            .collect();
    }
}

/// Bytes of weight memory actually resident across `stores`, counting
/// each shared backing buffer once no matter how many stores (replicas)
/// or tensors reference it.
///
/// This is the number the serve layer's `ServerStats` reports: n
/// replicas deep-copying a store cost n × the store's bytes, while n
/// replicas over one artifact cost one payload buffer total.
pub fn resident_weight_bytes<'a>(stores: impl IntoIterator<Item = &'a ParamStore>) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut bytes = 0usize;
    for store in stores {
        for (_, _, value) in store.iter() {
            match value.shared_buffer() {
                // A shared buffer may back many tensors (and many
                // stores); its allocation is resident exactly once.
                Some(buf) => {
                    if seen.insert(std::sync::Arc::as_ptr(buf) as usize) {
                        bytes += buf.len() * value.dtype().size_of();
                    }
                }
                None => bytes += value.len() * value.dtype().size_of(),
            }
        }
    }
    bytes
}

/// Per-parameter gradients produced by [`Session::backward`].
#[derive(Debug, Clone, Default)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient for `id`, if that parameter participated in the loss.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(|g| g.as_ref())
    }

    /// Global L2 norm across all gradients (useful for clipping and
    /// debugging training stability).
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(|g| g.as_slice().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so the global norm is at most `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in self.grads.iter_mut().flatten() {
                *g = g.scale(s);
            }
        }
    }
}

/// One training (or inference) step: a fresh autograd graph plus the
/// parameter bindings made while building it.
///
/// The public `graph` field is deliberate — model code freely mixes layer
/// calls with raw graph ops (residual adds, reshapes, losses).
pub struct Session<'s> {
    /// The underlying autograd tape for this step.
    pub graph: Graph,
    store: &'s ParamStore,
    bindings: Vec<Option<Var>>,
    /// When `false`, parameters are leafed without gradient tracking
    /// (inference mode) and dropout layers should be skipped by callers.
    pub train: bool,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("graph", &self.graph)
            .field("train", &self.train)
            .finish()
    }
}

impl<'s> Session<'s> {
    /// Opens a training session against `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Session {
            graph: Graph::new(),
            store,
            bindings: vec![None; store.len()],
            train: true,
        }
    }

    /// Opens an inference session: parameters do not require gradients.
    pub fn inference(store: &'s ParamStore) -> Self {
        let mut s = Self::new(store);
        s.train = false;
        s
    }

    /// Binds parameter `id` into the graph (cached per session).
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different store.
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(v) = self.bindings[id.0] {
            return v;
        }
        let v = self.graph.leaf(self.store.value(id).clone(), self.train);
        self.bindings[id.0] = Some(v);
        v
    }

    /// Adds a non-learnable input tensor to the graph.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.graph.leaf(t, false)
    }

    /// Backpropagates from scalar `loss` and collects per-parameter
    /// gradients.
    ///
    /// # Errors
    ///
    /// Fails when `loss` is not a scalar of this session's graph.
    pub fn backward(&mut self, loss: Var) -> Result<Gradients> {
        self.graph.backward(loss).map_err(NnError::from)?;
        let grads = self
            .bindings
            .iter()
            .map(|b| b.and_then(|v| self.graph.grad(v).cloned()))
            .collect();
        Ok(Gradients { grads })
    }
}

/// Recycles the allocations behind [`Session`]s so long-lived callers
/// (inference engines, training loops, throughput harnesses) do not pay
/// for a fresh graph and binding table on every step.
///
/// A pool-opened session behaves exactly like one from [`Session::new`] /
/// [`Session::inference`]; the only difference is where its buffers come
/// from. Hand the session back with [`SessionPool::reclaim`] when the
/// step's values have been read out, and the next open reuses the
/// capacity:
///
/// ```
/// use snappix_nn::{ParamStore, SessionPool};
/// use snappix_tensor::Tensor;
///
/// let mut store = ParamStore::new();
/// let id = store.register("w", Tensor::scalar(2.0));
/// let mut pool = SessionPool::new();
/// for _ in 0..3 {
///     let mut sess = pool.inference(&store);
///     let w = sess.param(id);
///     assert_eq!(sess.graph.value(w).as_slice(), &[2.0]);
///     pool.reclaim(sess);
/// }
/// ```
#[derive(Debug, Default)]
pub struct SessionPool {
    graph: Graph,
    bindings: Vec<Option<Var>>,
}

impl SessionPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a training session against `store`, reusing pooled buffers.
    pub fn training<'s>(&mut self, store: &'s ParamStore) -> Session<'s> {
        self.open(store, true)
    }

    /// Opens an inference session against `store`, reusing pooled
    /// buffers.
    pub fn inference<'s>(&mut self, store: &'s ParamStore) -> Session<'s> {
        self.open(store, false)
    }

    fn open<'s>(&mut self, store: &'s ParamStore, train: bool) -> Session<'s> {
        let mut graph = std::mem::take(&mut self.graph);
        graph.reset();
        let mut bindings = std::mem::take(&mut self.bindings);
        bindings.clear();
        bindings.resize(store.len(), None);
        Session {
            graph,
            store,
            bindings,
            train,
        }
    }

    /// Returns a session's buffers to the pool.
    ///
    /// The graph is reset (and bindings cleared) immediately, so the
    /// step's activation tensors and backward closures are dropped now
    /// rather than pinned until the next open — only the buffer
    /// *capacity*, the thing the pool exists to reuse, is kept.
    ///
    /// Dropping a pool-opened session instead of reclaiming it is safe —
    /// the pool simply allocates fresh buffers on the next open.
    pub fn reclaim(&mut self, sess: Session<'_>) {
        self.graph = sess.graph;
        self.graph.reset();
        self.bindings = sess.bindings;
        self.bindings.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::zeros(&[2]));
        let b = store.register("b", Tensor::ones(&[3]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 5);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.value(b).as_slice(), &[1.0; 3]);
        assert_eq!(store.ids().len(), 2);
        assert_eq!(store.iter().count(), 2);
    }

    #[test]
    fn session_binds_params_once() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::scalar(2.0));
        let mut sess = Session::new(&store);
        let v1 = sess.param(id);
        let v2 = sess.param(id);
        assert_eq!(v1, v2);
        assert_eq!(sess.graph.len(), 1);
    }

    #[test]
    fn backward_collects_param_grads() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let mut sess = Session::new(&store);
        let w = sess.param(id);
        let sq = sess.graph.mul(w, w).unwrap();
        let loss = sess.graph.sum(sq).unwrap();
        let grads = sess.backward(loss).unwrap();
        assert_eq!(grads.get(id).unwrap().as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn inference_session_produces_no_grads() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::scalar(3.0));
        let mut sess = Session::inference(&store);
        let w = sess.param(id);
        let loss = sess.graph.mul(w, w).unwrap();
        let grads = sess.backward(loss).unwrap();
        assert!(grads.get(id).is_none());
        assert!(!sess.train);
    }

    #[test]
    fn pooled_sessions_match_fresh_sessions() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let mut pool = SessionPool::new();
        for _ in 0..3 {
            let mut pooled = pool.training(&store);
            let mut fresh = Session::new(&store);
            let (wp, wf) = (pooled.param(id), fresh.param(id));
            let (sp, sf) = (
                pooled.graph.mul(wp, wp).unwrap(),
                fresh.graph.mul(wf, wf).unwrap(),
            );
            let (lp, lf) = (pooled.graph.sum(sp).unwrap(), fresh.graph.sum(sf).unwrap());
            let gp = pooled.backward(lp).unwrap();
            let gf = fresh.backward(lf).unwrap();
            assert_eq!(
                gp.get(id).unwrap().as_slice(),
                gf.get(id).unwrap().as_slice()
            );
            pool.reclaim(pooled);
        }
    }

    #[test]
    fn pool_reuse_resets_graph_and_bindings() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::scalar(5.0));
        let mut pool = SessionPool::new();
        let mut first = pool.inference(&store);
        first.param(id);
        first.input(Tensor::scalar(1.0));
        assert_eq!(first.graph.len(), 2);
        pool.reclaim(first);
        let second = pool.inference(&store);
        assert!(second.graph.is_empty(), "reclaimed graph must be reset");
        assert!(!second.train);
    }

    #[test]
    fn make_shared_lets_clones_share_buffers() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::arange(8));
        let b = store.register("b", Tensor::full(&[4], 2.0));
        assert_eq!(resident_weight_bytes([&store]), (8 + 4) * 4);
        store.make_shared();
        let replica = store.clone();
        for id in [a, b] {
            assert!(std::sync::Arc::ptr_eq(
                store.value(id).shared_buffer().unwrap(),
                replica.value(id).shared_buffer().unwrap()
            ));
        }
        // Two replicas over shared storage are no bigger than one.
        assert_eq!(resident_weight_bytes([&store, &replica]), (8 + 4) * 4);
        // Training still works: mutation detaches a private copy.
        let mut trainee = store.clone();
        trainee.value_mut(a).as_mut_slice()[0] = -1.0;
        assert_eq!(store.value(a).as_slice()[0], 0.0);
        assert_eq!(trainee.value(a).as_slice()[0], -1.0);
    }

    #[test]
    fn resident_bytes_counts_deep_copies_per_replica() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(&[16]));
        let copy = store.clone(); // owned storage: a real deep copy
        assert_eq!(resident_weight_bytes([&store, &copy]), 2 * 16 * 4);
        assert_eq!(resident_weight_bytes(std::iter::empty::<&ParamStore>()), 0);
    }

    #[test]
    fn gradient_clipping_bounds_norm() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap());
        let mut sess = Session::new(&store);
        let w = sess.param(id);
        let sq = sess.graph.mul(w, w).unwrap();
        let loss = sess.graph.sum(sq).unwrap();
        let mut grads = sess.backward(loss).unwrap();
        // grad = [6, 8], norm 10.
        assert!((grads.global_norm() - 10.0).abs() < 1e-5);
        grads.clip_global_norm(5.0);
        assert!((grads.global_norm() - 5.0).abs() < 1e-4);
        assert_eq!(grads.get(id).unwrap().as_slice(), &[3.0, 4.0]);
        // Clipping below the threshold is a no-op.
        grads.clip_global_norm(100.0);
        assert!((grads.global_norm() - 5.0).abs() < 1e-4);
    }
}
