//! Layer normalization.

use crate::{ParamId, ParamStore, Result, Session};
use snappix_autograd::Var;
use snappix_tensor::Tensor;

/// Layer normalization over the trailing feature axis, with learnable scale
/// (`gamma`, initialized to 1) and shift (`beta`, initialized to 0).
///
/// # Examples
///
/// ```
/// use snappix_nn::{LayerNorm, ParamStore, Session};
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = ParamStore::new();
/// let ln = LayerNorm::new(&mut store, "ln", 8);
/// let mut sess = Session::inference(&store);
/// let x = sess.input(Tensor::rand_uniform(
///     &mut rand::rngs::StdRng::seed_from_u64(0), &[2, 8], -5.0, 5.0));
/// let y = ln.forward(&mut sess, x)?;
/// assert_eq!(sess.graph.value(y).shape(), &[2, 8]);
/// # use rand::SeedableRng;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Registers normalization parameters for a feature width of `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.register(format!("{name}.gamma"), Tensor::ones(&[dim]));
        let beta = store.register(format!("{name}.beta"), Tensor::zeros(&[dim]));
        LayerNorm {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// Feature width this layer normalizes over.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies layer normalization inside `sess`.
    ///
    /// # Errors
    ///
    /// Fails when the trailing input dimension differs from
    /// [`LayerNorm::dim`].
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Result<Var> {
        let gamma = sess.param(self.gamma);
        let beta = sess.param(self.beta);
        Ok(sess.graph.layer_norm(x, gamma, beta, self.eps)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn output_rows_are_normalized() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 16);
        assert_eq!(ln.dim(), 16);
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::rand_uniform(&mut rng, &[4, 16], -10.0, 10.0));
        let y = ln.forward(&mut sess, x).unwrap();
        let yv = sess.graph.value(y);
        for r in 0..4 {
            let row = yv.slice_axis(0, r, r + 1).unwrap();
            assert!(row.mean().abs() < 1e-4, "row {r} mean {}", row.mean());
            assert!((row.variance() - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        // Set gamma = 2, beta = 1 manually.
        let ids = store.ids();
        *store.value_mut(ids[0]) = Tensor::full(&[4], 2.0);
        *store.value_mut(ids[1]) = Tensor::ones(&[4]);
        let mut sess = Session::inference(&store);
        let x = sess.input(Tensor::rand_uniform(&mut rng, &[1, 4], -1.0, 1.0));
        let y = ln.forward(&mut sess, x).unwrap();
        let yv = sess.graph.value(y);
        // mean = beta, std = 2 * gamma-free std (1) => variance ~4.
        assert!((yv.mean() - 1.0).abs() < 1e-4);
        assert!((yv.variance() - 4.0).abs() < 0.1);
    }
}
