//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use snappix_nn::{
    load_params, save_params, Adam, LayerNorm, Linear, Optimizer, ParamStore, Session, Sgd,
};
use snappix_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Weight persistence round-trips arbitrary stores exactly.
    #[test]
    fn save_load_round_trip(seed in 0u64..10_000, n_params in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut shapes = Vec::new();
        for i in 0..n_params {
            let rows = (seed as usize + i) % 4 + 1;
            let cols = (seed as usize * 7 + i) % 5 + 1;
            shapes.push(vec![rows, cols]);
            store.register(
                format!("p{i}"),
                Tensor::rand_uniform(&mut rng, &[rows, cols], -10.0, 10.0),
            );
        }
        let mut path = std::env::temp_dir();
        path.push(format!("snappix_prop_{}_{seed}.snpx", std::process::id()));
        save_params(&store, &path).expect("save");

        let mut restored = ParamStore::new();
        for (i, shape) in shapes.iter().enumerate() {
            restored.register(format!("p{i}"), Tensor::zeros(shape));
        }
        load_params(&mut restored, &path).expect("load");
        std::fs::remove_file(&path).ok();
        for (a, b) in store.iter().zip(restored.iter()) {
            prop_assert_eq!(a.2, b.2);
        }
    }

    /// One optimizer step on a convex quadratic never increases the loss
    /// (for a conservative learning rate).
    #[test]
    fn sgd_step_descends_quadratic(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = Tensor::rand_uniform(&mut rng, &[4], -2.0, 2.0);
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::rand_uniform(&mut rng, &[4], -2.0, 2.0));
        let loss_at = |store: &ParamStore| -> f32 {
            let diff = store.value(id).sub(&target).expect("same shape");
            diff.mul(&diff).expect("same shape").sum()
        };
        let before = loss_at(&store);
        let mut sess = Session::new(&store);
        let w = sess.param(id);
        let t = sess.input(target.clone());
        let d = sess.graph.sub(w, t).expect("same shape");
        let sq = sess.graph.mul(d, d).expect("same shape");
        let loss = sess.graph.sum(sq).expect("scalar");
        let grads = sess.backward(loss).expect("backward");
        drop(sess);
        let mut opt = Sgd::new(0.05);
        opt.step(&mut store, &grads).expect("step");
        prop_assert!(loss_at(&store) <= before + 1e-6,
            "loss increased: {} -> {}", before, loss_at(&store));
    }

    /// Adam drives a random quadratic near its optimum from any start.
    #[test]
    fn adam_converges_from_any_start(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = Tensor::rand_uniform(&mut rng, &[3], -3.0, 3.0);
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::rand_uniform(&mut rng, &[3], -3.0, 3.0));
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            let mut sess = Session::new(&store);
            let w = sess.param(id);
            let t = sess.input(target.clone());
            let d = sess.graph.sub(w, t).expect("same shape");
            let sq = sess.graph.mul(d, d).expect("same shape");
            let loss = sess.graph.sum(sq).expect("scalar");
            let grads = sess.backward(loss).expect("backward");
            drop(sess);
            opt.step(&mut store, &grads).expect("step");
        }
        prop_assert!(store.value(id).approx_eq(&target, 0.05),
            "did not converge: {:?} vs {:?}", store.value(id), target);
    }

    /// Linear layers are, in fact, linear: f(ax) = a f(x) - (a-1) bias.
    #[test]
    fn linear_layer_is_affine(seed in 0u64..10_000, a in 0.5f32..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let fc = Linear::new(&mut store, "fc", 3, 2, &mut rng);
        let x = Tensor::rand_uniform(&mut rng, &[2, 3], -1.0, 1.0);

        let run = |input: Tensor| {
            let mut sess = Session::inference(&store);
            let v = sess.input(input);
            let y = fc.forward(&mut sess, v).expect("forward");
            sess.graph.value(y).clone()
        };
        let f_x = run(x.clone());
        let f_ax = run(x.scale(a));
        let zero = run(Tensor::zeros(&[2, 3])); // = bias rows
        // f(ax) = a f(x) + (1 - a) * bias
        let expected = f_x.scale(a).add(&zero.scale(1.0 - a)).expect("same shape");
        prop_assert!(f_ax.approx_eq(&expected, 1e-3));
    }

    /// LayerNorm output is invariant to affine shifts of its input.
    #[test]
    fn layer_norm_is_shift_invariant(seed in 0u64..10_000, shift in -5.0f32..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 8);
        let x = Tensor::rand_uniform(&mut rng, &[3, 8], -1.0, 1.0);
        let run = |input: Tensor| {
            let mut sess = Session::inference(&store);
            let v = sess.input(input);
            let y = ln.forward(&mut sess, v).expect("forward");
            sess.graph.value(y).clone()
        };
        let base = run(x.clone());
        let shifted = run(x.add_scalar(shift));
        prop_assert!(base.approx_eq(&shifted, 1e-3));
    }
}
