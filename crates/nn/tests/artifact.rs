//! Integration tests for the `.spx` model artifact: round-trips,
//! zero-copy sharing, the legacy converter, a golden header hexdump
//! pinning the byte layout, and a corrupt-file rejection suite — every
//! malformed input must fail with a typed [`NnError`], never a panic.

use snappix_nn::{
    convert_params_to_artifact, fnv1a64, load_params, save_params, write_artifact, ArtifactReader,
    NnError, ParamStore, SPX_HEADER_BYTES,
};
use snappix_tensor::Tensor;
use std::sync::Arc;

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "snappix_artifact_{}_{name}.spx",
        std::process::id()
    ));
    p
}

/// A small store with varied shapes; values are deterministic.
fn sample_store() -> ParamStore {
    let mut store = ParamStore::new();
    store.register("codec.mask", Tensor::arange(64).reshape(&[8, 8]).unwrap());
    store.register(
        "head.weight",
        Tensor::linspace(-1.0, 1.0, 80).reshape(&[5, 16]).unwrap(),
    );
    store.register("head.bias", Tensor::full(&[5], 0.125));
    store
}

fn fresh_target() -> ParamStore {
    let mut store = ParamStore::new();
    store.register("codec.mask", Tensor::zeros(&[8, 8]));
    store.register("head.weight", Tensor::zeros(&[5, 16]));
    store.register("head.bias", Tensor::zeros(&[5]));
    store
}

/// Recomputes the trailing checksum after a deliberate mutation, so the
/// parser exercises the *specific* validation under test rather than
/// reporting every corruption as a checksum mismatch.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    let n = bytes.len() - 8;
    let sum = fnv1a64(&bytes[..n]);
    bytes[n..].copy_from_slice(&sum.to_le_bytes());
    bytes
}

fn open_bytes(name: &str, bytes: &[u8]) -> Result<ArtifactReader, NnError> {
    let path = temp_path(name);
    std::fs::write(&path, bytes).unwrap();
    let out = ArtifactReader::open(&path);
    std::fs::remove_file(path).ok();
    out
}

fn expect_format(name: &str, bytes: &[u8], needle: &str) {
    match open_bytes(name, bytes) {
        Err(NnError::Format { context }) => assert!(
            context.contains(needle),
            "{name}: expected context containing {needle:?}, got {context:?}"
        ),
        Err(other) => panic!("{name}: expected Format, got {other:?}"),
        Ok(_) => panic!("{name}: corrupt artifact was accepted"),
    }
}

fn pristine_bytes() -> Vec<u8> {
    let path = temp_path("pristine");
    write_artifact(&sample_store(), &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(path).ok();
    bytes
}

#[test]
fn round_trip_hands_back_identical_values() {
    let store = sample_store();
    let path = temp_path("round_trip");
    write_artifact(&store, &path).unwrap();
    let reader = ArtifactReader::open(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(reader.len(), 3);
    assert!(!reader.is_empty());
    assert_eq!(
        reader.names().collect::<Vec<_>>(),
        ["codec.mask", "head.weight", "head.bias"]
    );
    assert_eq!(reader.shape("head.weight"), Some(&[5usize, 16][..]));
    assert_eq!(reader.shape("nope"), None);
    assert!(reader.tensor("nope").is_none());
    for (_, name, value) in store.iter() {
        let loaded = reader.tensor(name).unwrap();
        assert_eq!(&loaded, value, "tensor {name} must round-trip bit-for-bit");
        assert!(loaded.is_shared());
    }
}

#[test]
fn load_into_matches_load_params_semantics() {
    let store = sample_store();
    let spx = temp_path("load_into");
    let snpx = temp_path("load_into_legacy");
    write_artifact(&store, &spx).unwrap();
    save_params(&store, &snpx).unwrap();
    let reader = ArtifactReader::open(&spx).unwrap();

    let mut via_artifact = fresh_target();
    let mut via_legacy = fresh_target();
    reader.load_into(&mut via_artifact).unwrap();
    load_params(&mut via_legacy, &snpx).unwrap();
    for ((_, name, a), (_, _, b)) in via_artifact.iter().zip(via_legacy.iter()) {
        assert_eq!(a, b, "parameter {name} must match the legacy loader");
    }

    // Store params absent from the artifact keep their values…
    let mut bigger = fresh_target();
    let extra = bigger.register("extra.head", Tensor::full(&[3], 7.0));
    reader.load_into(&mut bigger).unwrap();
    assert_eq!(bigger.value(extra).as_slice(), &[7.0; 3]);

    // …but artifact tensors unknown to the store are an error, as is a
    // shape mismatch.
    let mut unknown = ParamStore::new();
    unknown.register("codec.mask", Tensor::zeros(&[8, 8]));
    assert!(matches!(
        reader.load_into(&mut unknown),
        Err(NnError::Format { .. })
    ));
    let mut misshapen = fresh_target();
    *misshapen.value_mut(misshapen.ids()[0]) = Tensor::zeros(&[4, 16]);
    assert!(matches!(
        reader.load_into(&mut misshapen),
        Err(NnError::Format { .. })
    ));

    std::fs::remove_file(spx).ok();
    std::fs::remove_file(snpx).ok();
}

#[test]
fn loaded_tensors_share_one_payload_buffer() {
    let path = temp_path("zero_copy");
    write_artifact(&sample_store(), &path).unwrap();
    let reader = ArtifactReader::open(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Every handed-out tensor is a window into the reader's buffer.
    let a = reader.tensor("codec.mask").unwrap();
    let b = reader.tensor("head.weight").unwrap();
    assert!(Arc::ptr_eq(
        a.shared_buffer().unwrap(),
        reader.payload_buffer()
    ));
    assert!(Arc::ptr_eq(
        a.shared_buffer().unwrap(),
        b.shared_buffer().unwrap()
    ));

    // Two stores loaded from the same reader share it too — this is the
    // n-replica case.
    let mut r1 = fresh_target();
    let mut r2 = fresh_target();
    reader.load_into(&mut r1).unwrap();
    reader.load_into(&mut r2).unwrap();
    for (id1, id2) in r1.ids().into_iter().zip(r2.ids()) {
        assert!(Arc::ptr_eq(
            r1.value(id1).shared_buffer().unwrap(),
            r2.value(id2).shared_buffer().unwrap()
        ));
    }
    // Shared resident bytes: two replicas cost one payload.
    let one = snappix_nn::resident_weight_bytes([&r1]);
    let two = snappix_nn::resident_weight_bytes([&r1, &r2]);
    assert_eq!(one, reader.payload_bytes());
    assert_eq!(two, one, "a second replica must add no resident bytes");

    // Mutating a shared parameter detaches a private copy and leaves
    // the payload untouched.
    let id = r1.ids()[0];
    let before = reader.tensor("codec.mask").unwrap();
    r1.value_mut(id).as_mut_slice()[0] = -999.0;
    assert_eq!(before, reader.tensor("codec.mask").unwrap());
    assert_eq!(r2.value(r2.ids()[0]).as_slice()[0], 0.0);
}

#[test]
fn converter_upgrades_legacy_files() {
    let store = sample_store();
    let legacy = temp_path("convert_src");
    let spx = temp_path("convert_dst");
    save_params(&store, &legacy).unwrap();
    convert_params_to_artifact(&legacy, &spx).unwrap();
    let reader = ArtifactReader::open(&spx).unwrap();
    for (_, name, value) in store.iter() {
        assert_eq!(&reader.tensor(name).unwrap(), value);
    }
    // Converting a malformed legacy file is a typed error.
    std::fs::write(&legacy, b"NOPE").unwrap();
    assert!(matches!(
        convert_params_to_artifact(&legacy, &spx),
        Err(NnError::Format { .. })
    ));
    std::fs::remove_file(legacy).ok();
    std::fs::remove_file(spx).ok();
}

#[test]
fn duplicate_store_names_are_rejected_at_write_time() {
    let mut store = ParamStore::new();
    store.register("w", Tensor::zeros(&[2]));
    store.register("w", Tensor::zeros(&[2]));
    let path = temp_path("dup_write");
    assert!(matches!(
        write_artifact(&store, &path),
        Err(NnError::Format { .. })
    ));
    std::fs::remove_file(path).ok();
}

// ---------------------------------------------------------------------
// Corrupt-artifact rejection suite. Header layout (see docs/FORMAT.md):
// magic 0..8, version 8..12, count 12..16, table_bytes 16..24,
// payload_bytes 24..32, reserved 32..64, table from 64. For
// `sample_store()` the first table row is "codec.mask" (rank 2):
// name_len at 64, name at 68, dtype at 78, rank at 79, reserved 80..82,
// offset 82..90, data_bytes 90..98, extents 98..114.
// ---------------------------------------------------------------------

const ROW0_NAME: usize = 68;
const ROW0_DTYPE: usize = 78;
const ROW0_RESERVED: usize = 80;
const ROW0_OFFSET: usize = 82;
const ROW0_DATA_BYTES: usize = 90;

#[test]
fn rejects_bad_magic() {
    let mut bytes = pristine_bytes();
    bytes[0] ^= 0xff;
    expect_format("bad_magic", &reseal(bytes), "bad magic");
}

#[test]
fn rejects_unknown_version() {
    let mut bytes = pristine_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    expect_format("version", &reseal(bytes), "unsupported artifact version");
}

#[test]
fn rejects_nonzero_reserved_header_bytes() {
    let mut bytes = pristine_bytes();
    bytes[40] = 1;
    expect_format("reserved_header", &reseal(bytes), "reserved header");
}

#[test]
fn rejects_non_utf8_name() {
    let mut bytes = pristine_bytes();
    bytes[ROW0_NAME] = 0xff;
    expect_format("utf8_name", &reseal(bytes), "not UTF-8");
}

#[test]
fn rejects_unknown_dtype_tag() {
    let mut bytes = pristine_bytes();
    bytes[ROW0_DTYPE] = 0x7f;
    expect_format("dtype", &reseal(bytes), "unknown dtype tag");
}

#[test]
fn rejects_nonzero_reserved_table_bytes() {
    let mut bytes = pristine_bytes();
    bytes[ROW0_RESERVED] = 1;
    expect_format("reserved_table", &reseal(bytes), "reserved table bytes");
}

#[test]
fn rejects_misaligned_payload_offset() {
    let mut bytes = pristine_bytes();
    bytes[ROW0_OFFSET..ROW0_OFFSET + 8].copy_from_slice(&1u64.to_le_bytes());
    expect_format("misaligned", &reseal(bytes), "not 64-byte aligned");
}

#[test]
fn rejects_out_of_bounds_offset() {
    let mut bytes = pristine_bytes();
    // Aligned, but the 256-byte window starting there runs past the
    // payload.
    bytes[ROW0_OFFSET..ROW0_OFFSET + 8].copy_from_slice(&(1u64 << 20).to_le_bytes());
    expect_format("oob", &reseal(bytes), "exceeds payload");
}

#[test]
fn rejects_overlapping_tensors() {
    let mut bytes = pristine_bytes();
    // Point "codec.mask" (offset 0 already) and "head.weight" at the
    // same payload region. Row 1 starts at 114; its offset field sits
    // after name_len(4) + "head.weight"(11) + dtype(1) + rank(1) +
    // reserved(2) = 19 bytes.
    let row1_offset = 114 + 19;
    bytes[row1_offset..row1_offset + 8].copy_from_slice(&0u64.to_le_bytes());
    expect_format("overlap", &reseal(bytes), "overlap");
}

#[test]
fn rejects_data_bytes_shape_mismatch() {
    let mut bytes = pristine_bytes();
    bytes[ROW0_DATA_BYTES..ROW0_DATA_BYTES + 8].copy_from_slice(&12u64.to_le_bytes());
    expect_format("size_mismatch", &reseal(bytes), "does not match shape");
}

#[test]
fn rejects_duplicate_names() {
    // Two equal-length names so row 1's can be overwritten with row 0's
    // without shifting any table offsets.
    let mut store = ParamStore::new();
    store.register("aaaa", Tensor::zeros(&[2]));
    store.register("bbbb", Tensor::zeros(&[2]));
    let path = temp_path("dup_src");
    write_artifact(&store, &path).unwrap();
    let mut raw = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    // Row 0 name at 68..72, row 1 name at 64 + 32 + 4 = 100..104 (each
    // row: 4 + 4 + 1 + 1 + 2 + 8 + 8 + 8 = 36 bytes; row 1 name_len at
    // 100, name at 104).
    raw.copy_within(68..72, 104);
    expect_format("dup_names", &reseal(raw), "duplicate tensor name");
}

#[test]
fn rejects_table_not_parsing_exactly() {
    let mut bytes = pristine_bytes();
    // Declare zero tensors while the table bytes stay: leftover table.
    bytes[12..16].copy_from_slice(&0u32.to_le_bytes());
    expect_format("table_leftover", &reseal(bytes), "bytes of table remain");

    // Declare a table larger than the file.
    let mut bytes = pristine_bytes();
    bytes[16..24].copy_from_slice(&(1u64 << 32).to_le_bytes());
    expect_format("table_huge", &reseal(bytes), "table_bytes");
}

#[test]
fn rejects_trailing_bytes() {
    let mut bytes = pristine_bytes();
    let checksum_at = bytes.len() - 8;
    bytes.insert(checksum_at, 0xAA); // one byte between payload and seal
    expect_format("trailing", &reseal(bytes), "trailing bytes");
}

#[test]
fn rejects_checksum_mismatch() {
    let mut bytes = pristine_bytes();
    let n = bytes.len();
    bytes[n - 20] ^= 0x01; // flip one payload bit, leave the seal stale
    expect_format("checksum", &bytes, "checksum mismatch");
}

#[test]
fn rejects_truncation_at_every_cut() {
    let bytes = pristine_bytes();
    for cut in [
        bytes.len() - 1,
        bytes.len() - 9,
        bytes.len() / 2,
        SPX_HEADER_BYTES + 3,
        SPX_HEADER_BYTES,
        10,
        0,
    ] {
        match open_bytes("truncate", &bytes[..cut]) {
            Err(NnError::Format { .. }) => {}
            Err(other) => panic!("cut at {cut}: expected Format, got {other:?}"),
            Ok(_) => panic!("cut at {cut}: truncated artifact was accepted"),
        }
    }
    // A truncation that is re-sealed (checksum valid over the shorter
    // body) must still fail the declared-length check.
    let mut shorter = bytes[..bytes.len() - 8 - 16].to_vec();
    shorter.extend_from_slice(&[0u8; 8]);
    expect_format("truncate_resealed", &reseal(shorter), "truncated artifact");
}

// ---------------------------------------------------------------------
// Golden header: pins the byte-for-byte layout of the header + table
// against accidental format drift. Regenerate deliberately with
// `SNAPPIX_UPDATE_GOLDEN=1 cargo test -p snappix-nn --test artifact`.
// ---------------------------------------------------------------------

fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(&format!("{:08x}:", i * 16));
        for b in chunk {
            out.push_str(&format!(" {b:02x}"));
        }
        out.push('\n');
    }
    out
}

#[test]
fn golden_header_pins_byte_layout() {
    let bytes = pristine_bytes();
    let table_bytes = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let dump = hexdump(&bytes[..SPX_HEADER_BYTES + table_bytes]);
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/header.hex");
    if std::env::var_os("SNAPPIX_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden, &dump).unwrap();
    }
    let expected = std::fs::read_to_string(golden).expect("golden header checked in");
    assert_eq!(
        dump, expected,
        "artifact header/table bytes drifted from tests/golden/header.hex; if the \
         format change is deliberate, bump SPX_VERSION, update docs/FORMAT.md, and \
         regenerate with SNAPPIX_UPDATE_GOLDEN=1"
    );
}
