//! Temporal smoothing of per-window predictions.
//!
//! A single window's classification flickers: adjacent windows share
//! most of their frames yet can argmax to different labels near a class
//! boundary or under sensor noise. The smoother turns the raw per-window
//! [`Prediction`] stream into a stable label stream, either by an
//! exponential moving average over the logits or by majority vote over
//! the last `k` raw labels. Smoothing never alters the raw predictions —
//! those stay bit-for-bit equal to offline inference; it only decides
//! which label the stream *reports* (and hands to event detection).

use snappix::Prediction;
use std::collections::VecDeque;

/// How a stream session smooths raw per-window labels over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Smoothing {
    /// No smoothing: the reported label is each window's raw argmax.
    Off,
    /// Exponential moving average over the *logits*:
    /// `s ← alpha * logits + (1 - alpha) * s`, reported label =
    /// `argmax(s)`. Smaller `alpha` smooths harder; `alpha = 1` degenerates
    /// to [`Off`](Self::Off). `alpha` is clamped to `(0, 1]`.
    Ema {
        /// Weight of the newest window's logits.
        alpha: f32,
    },
    /// Majority vote over the raw labels of the last `k` windows (ties
    /// break toward the label seen most recently). `k` is clamped to at
    /// least 1; `k = 1` degenerates to [`Off`](Self::Off).
    Majority {
        /// Vote window length in windows.
        k: usize,
    },
}

impl Default for Smoothing {
    /// EMA with `alpha = 0.5` — a gentle default that still reacts
    /// within a couple of windows.
    fn default() -> Self {
        Smoothing::Ema { alpha: 0.5 }
    }
}

/// The per-stream smoothing state behind a [`Smoothing`] config.
///
/// Public so schedulers other than [`StreamSession`](crate::StreamSession)
/// (the fleet simulator's event-driven nodes, custom runners) can reuse
/// the exact smoothing semantics: build one with [`Smoother::new`] and
/// feed predictions in window order through [`Smoother::observe`].
#[derive(Debug, Clone)]
pub enum Smoother {
    /// Stateless pass-through for [`Smoothing::Off`].
    Off,
    /// Running EMA over logits for [`Smoothing::Ema`].
    Ema {
        /// Clamped weight of the newest window's logits.
        alpha: f32,
        /// The EMA'd logit vector (empty until the first observation).
        state: Vec<f32>,
    },
    /// Sliding vote window for [`Smoothing::Majority`].
    Majority {
        /// Clamped vote window length.
        k: usize,
        /// Raw labels of the last (up to) `k` windows, oldest first.
        recent: VecDeque<usize>,
    },
}

impl Smoother {
    /// Fresh smoothing state for `config`, with the same clamping the
    /// session applies (`alpha` into `(0, 1]`, NaN degenerating to raw
    /// labels; `k` to at least 1).
    pub fn new(config: Smoothing) -> Self {
        match config {
            Smoothing::Off => Smoother::Off,
            Smoothing::Ema { alpha } => Smoother::Ema {
                // `clamp` propagates NaN, which would poison the whole
                // state vector; a NaN alpha degenerates to raw labels.
                alpha: if alpha.is_nan() {
                    1.0
                } else {
                    alpha.clamp(f32::EPSILON, 1.0)
                },
                state: Vec::new(),
            },
            Smoothing::Majority { k } => Smoother::Majority {
                k: k.max(1),
                recent: VecDeque::new(),
            },
        }
    }

    /// Folds one raw prediction in, returning the smoothed label.
    ///
    /// Must be called in window order — the session guarantees this by
    /// processing results through its FIFO of in-flight tickets. Dropped
    /// windows are simply never observed: smoothing operates on the
    /// windows that were actually inferred.
    pub fn observe(&mut self, prediction: &Prediction) -> usize {
        match self {
            Smoother::Off => prediction.label,
            Smoother::Ema { alpha, state } => {
                let logits = prediction.logits.as_slice();
                if state.len() != logits.len() {
                    state.clear();
                    state.extend_from_slice(logits);
                } else {
                    for (s, &l) in state.iter_mut().zip(logits) {
                        *s = *alpha * l + (1.0 - *alpha) * *s;
                    }
                }
                argmax(state)
            }
            Smoother::Majority { k, recent } => {
                if recent.len() == *k {
                    recent.pop_front();
                }
                recent.push_back(prediction.label);
                // Mode of the vote window; ties break toward the label
                // whose latest occurrence is most recent.
                let mut best = prediction.label;
                let mut best_count = 0usize;
                let mut best_last = 0usize;
                for (i, &label) in recent.iter().enumerate() {
                    let count = recent.iter().filter(|&&l| l == label).count();
                    if count > best_count || (count == best_count && i > best_last) {
                        best = label;
                        best_count = count;
                        best_last = i;
                    }
                }
                best
            }
        }
    }
}

fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_tensor::Tensor;

    fn prediction(logits: &[f32]) -> Prediction {
        Prediction {
            label: argmax(logits),
            logits: Tensor::from_vec(logits.to_vec(), &[logits.len()]).unwrap(),
        }
    }

    #[test]
    fn off_reports_raw_labels() {
        let mut s = Smoother::new(Smoothing::Off);
        assert_eq!(s.observe(&prediction(&[0.0, 1.0])), 1);
        assert_eq!(s.observe(&prediction(&[2.0, 1.0])), 0);
    }

    #[test]
    fn ema_rides_out_a_single_flicker() {
        let mut s = Smoother::new(Smoothing::Ema { alpha: 0.3 });
        assert_eq!(s.observe(&prediction(&[5.0, 0.0])), 0, "seeded by first");
        // One outlier window for class 1 is not enough to flip the EMA...
        assert_eq!(s.observe(&prediction(&[0.0, 6.0])), 0);
        // ...but sustained evidence is.
        assert_eq!(s.observe(&prediction(&[0.0, 6.0])), 1);
    }

    #[test]
    fn ema_alpha_one_degenerates_to_raw() {
        let mut s = Smoother::new(Smoothing::Ema { alpha: 1.0 });
        assert_eq!(s.observe(&prediction(&[5.0, 0.0])), 0);
        assert_eq!(s.observe(&prediction(&[0.0, 0.1])), 1, "no memory");
    }

    #[test]
    fn ema_reseeds_when_class_count_changes() {
        // A defensive path: if the logits width ever changes mid-stream
        // (it cannot through one server, but the smoother is public
        // machinery), the state reseeds instead of zipping mismatched
        // lengths.
        let mut s = Smoother::new(Smoothing::Ema { alpha: 0.1 });
        assert_eq!(s.observe(&prediction(&[1.0, 0.0])), 0);
        assert_eq!(s.observe(&prediction(&[0.0, 0.0, 9.0])), 2);
    }

    #[test]
    fn majority_votes_over_the_window() {
        let mut s = Smoother::new(Smoothing::Majority { k: 3 });
        assert_eq!(s.observe(&prediction(&[1.0, 0.0])), 0); // [0]
        assert_eq!(s.observe(&prediction(&[0.0, 1.0])), 1, "tie -> newest"); // [0, 1]
        assert_eq!(s.observe(&prediction(&[1.0, 0.0])), 0); // [0, 1, 0]
        assert_eq!(s.observe(&prediction(&[0.0, 1.0])), 1, "tie -> newest"); // [1, 0, 1]
        assert_eq!(s.observe(&prediction(&[0.0, 1.0])), 1); // [0, 1, 1]
    }

    #[test]
    fn majority_k_one_degenerates_to_raw() {
        let mut s = Smoother::new(Smoothing::Majority { k: 1 });
        assert_eq!(s.observe(&prediction(&[0.0, 1.0])), 1);
        assert_eq!(s.observe(&prediction(&[1.0, 0.0])), 0);
        // And the clamps hold.
        assert!(matches!(
            Smoother::new(Smoothing::Majority { k: 0 }),
            Smoother::Majority { k: 1, .. }
        ));
        assert!(matches!(
            Smoother::new(Smoothing::Ema { alpha: 7.0 }),
            Smoother::Ema { alpha, .. } if alpha == 1.0
        ));
        assert!(matches!(
            Smoother::new(Smoothing::Ema { alpha: f32::NAN }),
            Smoother::Ema { alpha, .. } if alpha == 1.0
        ));
        assert_eq!(Smoothing::default(), Smoothing::Ema { alpha: 0.5 });
    }
}
