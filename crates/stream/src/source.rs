//! Frame sources: where a stream's frames come from.
//!
//! A deployed coded-exposure node sees an endless sequence of frames,
//! not neatly pre-cut clips. [`FrameSource`] is the pull interface the
//! streaming layer drains — one grayscale `[h, w]` frame at a time — with
//! two implementations backed by the `snappix-video` crate:
//! [`ReplaySource`] replays a rendered [`Video`] (optionally looped),
//! and [`SyntheticSource`] concatenates procedurally-rendered scenes
//! whose action class changes from segment to segment, giving
//! label-change detection a ground truth to be checked against.

use crate::StreamError;
use snappix_tensor::Tensor;
use snappix_video::{Dataset, DatasetConfig, Video};

/// A pull-based producer of grayscale `[h, w]` frames.
///
/// Sources are driven by one stream each, so they take `&mut self` and
/// need only be `Send` (the runner moves each source onto its stream's
/// thread). Returning `Ok(None)` ends the stream gracefully; the session
/// then flushes its in-flight windows and reports.
pub trait FrameSource {
    /// The `[h, w]` geometry of every frame this source yields.
    fn frame_shape(&self) -> [usize; 2];

    /// Produces the next frame, `Ok(None)` once the stream is over.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Source`] when the source cannot produce a
    /// frame (a real deployment's decoder hiccup, a failed capture, ...).
    fn next_frame(&mut self) -> Result<Option<Tensor>, StreamError>;
}

/// Replays the frames of one [`Video`] in order, optionally looping the
/// clip several times — the deterministic source used by tests and
/// benchmarks (streamed results can be compared frame-for-frame against
/// offline inference on the same video).
#[derive(Debug, Clone)]
pub struct ReplaySource {
    video: Video,
    next: usize,
    passes_left: usize,
}

impl ReplaySource {
    /// Replays `video` once, frame 0 through the last.
    pub fn new(video: Video) -> Self {
        ReplaySource {
            video,
            next: 0,
            passes_left: 1,
        }
    }

    /// Replays `video` end to end `passes` times (0 passes is an empty
    /// stream).
    pub fn looped(video: Video, passes: usize) -> Self {
        ReplaySource {
            video,
            next: 0,
            passes_left: passes,
        }
    }

    /// The video being replayed.
    pub fn video(&self) -> &Video {
        &self.video
    }

    /// Frames this source has yet to yield over all remaining passes.
    pub fn total_frames(&self) -> usize {
        // `next` frames of the current pass are already consumed, and it
        // resets to 0 whenever a pass completes, so this never underflows.
        self.passes_left * self.video.num_frames() - self.next
    }
}

impl FrameSource for ReplaySource {
    fn frame_shape(&self) -> [usize; 2] {
        [self.video.height(), self.video.width()]
    }

    fn next_frame(&mut self) -> Result<Option<Tensor>, StreamError> {
        if self.passes_left == 0 || self.video.num_frames() == 0 {
            return Ok(None);
        }
        let frame = self
            .video
            .frame(self.next)
            .map_err(|e| StreamError::Source {
                context: format!("replay index {}: {e}", self.next),
            })?;
        self.next += 1;
        if self.next == self.video.num_frames() {
            self.next = 0;
            self.passes_left -= 1;
        }
        Ok(Some(frame))
    }
}

/// An endless-camera stand-in: renders dataset samples on demand and
/// streams their frames back to back, so the true action class changes
/// at every segment boundary.
///
/// Sample `i` of the underlying [`Dataset`] is a pure function of the
/// config's seed, so a synthetic stream is fully reproducible; the
/// per-segment ground-truth labels are exposed through
/// [`segment_label`](Self::segment_label) for checking emitted events.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    dataset: Dataset,
    segments: usize,
    segment: usize,
    frame: usize,
    current: Option<(Video, usize)>,
    shape: [usize; 2],
}

impl SyntheticSource {
    /// Streams the first `segments` samples of a dataset rendered from
    /// `config`, one after another.
    pub fn new(config: DatasetConfig, segments: usize) -> Self {
        let shape = [config.height, config.width];
        SyntheticSource {
            dataset: Dataset::new(config, segments.max(1)),
            segments,
            segment: 0,
            frame: 0,
            current: None,
            shape,
        }
    }

    /// Frames per segment (every segment renders the same clip length).
    pub fn segment_frames(&self) -> usize {
        self.dataset.config().frames
    }

    /// Number of segments this source streams.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Ground-truth action label of segment `i` — what a perfect
    /// label-change detector should settle on while streaming it.
    /// Computed without rendering the segment's frames.
    ///
    /// # Panics
    ///
    /// Panics if `i >= segments`.
    pub fn segment_label(&self, i: usize) -> usize {
        self.dataset.label(i)
    }
}

impl FrameSource for SyntheticSource {
    fn frame_shape(&self) -> [usize; 2] {
        self.shape
    }

    fn next_frame(&mut self) -> Result<Option<Tensor>, StreamError> {
        if self.segment >= self.segments {
            return Ok(None);
        }
        if self.current.is_none() {
            let sample = self.dataset.sample(self.segment);
            self.current = Some((sample.video, sample.label));
            self.frame = 0;
        }
        let (video, _) = self.current.as_ref().expect("just rendered");
        let frame = video.frame(self.frame).map_err(|e| StreamError::Source {
            context: format!("segment {} frame {}: {e}", self.segment, self.frame),
        })?;
        self.frame += 1;
        if self.frame == video.num_frames() {
            self.current = None;
            self.segment += 1;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_video::ssv2_like;

    fn counting_video(n: usize) -> Video {
        let mut data = Vec::new();
        for i in 0..n {
            data.extend([i as f32; 4]);
        }
        Video::new(Tensor::from_vec(data, &[n, 2, 2]).unwrap()).unwrap()
    }

    fn drain(source: &mut impl FrameSource) -> Vec<f32> {
        let mut seen = Vec::new();
        while let Some(frame) = source.next_frame().unwrap() {
            assert_eq!(frame.shape(), source.frame_shape());
            seen.push(frame.as_slice()[0]);
        }
        seen
    }

    #[test]
    fn replay_yields_frames_in_order_then_ends() {
        let mut source = ReplaySource::new(counting_video(3));
        assert_eq!(source.frame_shape(), [2, 2]);
        assert_eq!(source.total_frames(), 3);
        assert_eq!(drain(&mut source), vec![0.0, 1.0, 2.0]);
        // Exhausted sources stay exhausted.
        assert!(source.next_frame().unwrap().is_none());
    }

    #[test]
    fn looped_replay_repeats_the_clip() {
        let mut source = ReplaySource::looped(counting_video(2), 3);
        assert_eq!(source.total_frames(), 6);
        assert_eq!(drain(&mut source), vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        let mut empty = ReplaySource::looped(counting_video(2), 0);
        assert!(empty.next_frame().unwrap().is_none());
        assert_eq!(source.video().num_frames(), 2);
    }

    #[test]
    fn synthetic_streams_segments_deterministically() {
        let config = ssv2_like(4, 8, 8);
        let mut a = SyntheticSource::new(config.clone(), 2);
        let mut b = SyntheticSource::new(config, 2);
        assert_eq!(a.frame_shape(), [8, 8]);
        assert_eq!(a.segment_frames(), 4);
        assert_eq!(a.segments(), 2);
        let mut frames = 0;
        while let Some(frame) = a.next_frame().unwrap() {
            let again = b.next_frame().unwrap().expect("same length");
            assert!(frame.approx_eq(&again, 0.0), "frame {frames} reproducible");
            frames += 1;
        }
        assert_eq!(frames, 8, "2 segments x 4 frames");
        assert!(b.next_frame().unwrap().is_none());
        // Labels are exposed for ground truth and stay in range.
        assert!(a.segment_label(0) < 10);
        assert!(a.segment_label(1) < 10);
    }
}
