//! Streaming-layer errors, plus the bridge into the umbrella
//! [`snappix::Error`].

use snappix_serve::ServeError;
use std::fmt;

/// Everything that can go wrong between a frame entering a stream and
/// its window's result (or drop) being accounted for.
///
/// Policy *outcomes* — a window shed under overload, a deadline expiring
/// — are not errors: they are counted in
/// [`StreamStats`](crate::StreamStats) and recorded per window. This
/// enum covers genuine failures: misconfiguration, geometry mismatches,
/// a source that cannot produce frames, or a serving failure that is not
/// an overload/deadline outcome.
///
/// The enum is `#[non_exhaustive]`: the streaming layer can grow failure
/// modes without a breaking release.
#[derive(Debug)]
#[non_exhaustive]
pub enum StreamError {
    /// A session or runner was misconfigured (window geometry that does
    /// not match the server's model, a zero-length window, ...).
    Config {
        /// Human-readable description of the problem.
        context: String,
    },
    /// A frame did not match the stream's `[h, w]` geometry.
    Frame {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// A frame source failed to produce its next frame.
    Source {
        /// Human-readable description of the failure.
        context: String,
    },
    /// The serving layer failed in a way no overload policy covers
    /// (batch inference error, worker death, shutdown mid-stream).
    Serve(ServeError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Config { context } => write!(f, "stream misconfigured: {context}"),
            StreamError::Frame { context } => write!(f, "bad frame: {context}"),
            StreamError::Source { context } => write!(f, "frame source failed: {context}"),
            StreamError::Serve(e) => write!(f, "serving failure: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for StreamError {
    fn from(e: ServeError) -> Self {
        StreamError::Serve(e)
    }
}

impl From<StreamError> for snappix::Error {
    fn from(e: StreamError) -> Self {
        snappix::Error::Stream(Box::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases = [
            (
                StreamError::Config {
                    context: "window 0".into(),
                }
                .to_string(),
                "window 0",
            ),
            (
                StreamError::Frame {
                    context: "got [3, 3]".into(),
                }
                .to_string(),
                "got [3, 3]",
            ),
            (
                StreamError::Source {
                    context: "decoder died".into(),
                }
                .to_string(),
                "decoder died",
            ),
            (
                StreamError::Serve(ServeError::Disconnected).to_string(),
                "disconnected",
            ),
        ];
        for (display, needle) in cases {
            assert!(display.contains(needle), "{display} should name {needle}");
        }
    }

    #[test]
    fn converts_into_the_umbrella_error() {
        let unified: snappix::Error = StreamError::Serve(ServeError::ShuttingDown).into();
        assert!(matches!(unified, snappix::Error::Stream(_)));
        assert!(unified.to_string().contains("shutting down"));
        let source = std::error::Error::source(&unified).expect("chained");
        let stream = source.downcast_ref::<StreamError>().expect("stream error");
        // The serve error is still one more hop down the chain.
        assert!(std::error::Error::source(stream).is_some());
    }
}
