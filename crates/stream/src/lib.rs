//! `snappix-stream`: real-time multi-stream video inference over the
//! SnapPix serving layer.
//!
//! The serving layer (`snappix-serve`) answers *requests*: a client
//! shows up with a finished `[t, h, w]` clip and waits for its
//! prediction. A deployed coded-exposure sensor does not see clips — it
//! sees an endless sequence of frames per camera, and the node must
//! window them, classify the windows, smooth the labels over time, and
//! raise an event when the observed action actually changes. This crate
//! is that last layer:
//!
//! * **Frame sources** — [`FrameSource`] pulls grayscale `[h, w]` frames
//!   one at a time; [`ReplaySource`] replays a rendered
//!   [`Video`](snappix_video::Video) and [`SyntheticSource`] streams
//!   procedurally-rendered scenes whose action class changes per
//!   segment (ground truth for event detection).
//! * **Window assembly** — [`WindowAssembler`] turns the frame stream
//!   into sliding `[t, h, w]` windows (configurable hop) using a fixed
//!   `t`-frame ring buffer, producing *exactly* the tensors
//!   [`Video::windows`](snappix_video::Video::windows) yields offline.
//! * **Sessions** — a [`StreamSession`] submits windows through a shared
//!   [`Server`](snappix_serve::Server), processes results strictly in
//!   window order, smooths labels ([`Smoothing`]: EMA over logits or
//!   majority vote), and emits hysteresis-debounced label-change
//!   [`Event`]s. When the server sheds load, the per-stream
//!   [`OverloadPolicy`] decides: block (never lose a window), skip the
//!   window (stay current), or buffer-and-drop-oldest (absorb bursts).
//! * **The runner** — [`StreamRunner`] drives N sessions concurrently
//!   (real-time pacing or max throughput) against one server, whose
//!   dynamic batcher coalesces windows *across streams* into shared
//!   forward passes; [`StreamStats`] reports frames, windows
//!   inferred/dropped, events, and end-to-end latency percentiles per
//!   stream and aggregate.
//!
//! Streaming changes the schedule, never the numbers: with a
//! deterministic backend, every window's raw prediction is bit-for-bit
//! identical to an offline `Pipeline::infer` loop over
//! `Video::windows(t, hop)` of the same frames, at every
//! `SNAPPIX_THREADS` setting (pinned by `tests/streaming.rs`).
//!
//! # Quickstart
//!
//! ```no_run
//! use snappix_stream::prelude::*;
//!
//! # fn main() -> Result<(), snappix::Error> {
//! let mask = patterns::long_exposure(8, (8, 8))?;
//! let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
//! let server = Server::builder(Pipeline::builder(model))
//!     .with_workers(2)
//!     .build()?;
//!
//! // Four live streams at 30 fps; skip windows rather than fall behind.
//! let mut runner = StreamRunner::new(&server)
//!     .with_pacing(Pacing::fps(30.0).map_err(snappix::Error::from)?);
//! for i in 0..4 {
//!     runner.add_stream(
//!         SyntheticSource::new(ssv2_like(32, 16, 16), 3),
//!         SessionConfig::new(8, 4)
//!             .with_smoothing(Smoothing::Majority { k: 3 })
//!             .with_overload(OverloadPolicy::SkipWindow),
//!     );
//! }
//! let report = runner.run().map_err(snappix::Error::from)?;
//! for event in report.streams.iter().flat_map(|s| &s.events) {
//!     println!("{event}");
//! }
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod event;
mod runner;
mod session;
mod smooth;
mod source;
mod stats;
mod window;

pub use error::StreamError;
pub use event::{Event, EventDetector};
pub use runner::{Pacing, RunReport, StreamRunner};
pub use session::{
    DropReason, OverloadPolicy, SessionConfig, StreamReport, StreamSession, WindowResult,
};
pub use smooth::{Smoother, Smoothing};
pub use stats::StreamStats;
pub use window::WindowAssembler;

/// One-stop imports for streaming callers: everything from
/// [`snappix_serve::prelude`] (which includes [`snappix::prelude`]) plus
/// the streaming layer's types.
pub mod prelude {
    pub use crate::FrameSource;
    pub use crate::{
        DropReason, Event, EventDetector, OverloadPolicy, Pacing, ReplaySource, RunReport,
        SessionConfig, Smoother, Smoothing, StreamError, StreamReport, StreamRunner, StreamSession,
        StreamStats, SyntheticSource, WindowAssembler, WindowResult,
    };
    pub use snappix_serve::prelude::*;
}

pub use source::{FrameSource, ReplaySource, SyntheticSource};
