//! Label-change events with hysteresis.
//!
//! Streaming inference is only useful if something *acts* on it, and
//! acting on every per-window label would chase noise. The detector
//! watches the smoothed label stream and emits an [`Event`] only when a
//! new label has held for `hysteresis` consecutive windows — debouncing
//! the boundary flicker between actions the way a thermostat debounces
//! temperature.

use std::fmt;

/// A confirmed label change on one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The stream this event belongs to (the runner's stream id).
    pub stream: usize,
    /// Index of the window that confirmed the change.
    pub window: usize,
    /// Index of the last stream frame of that window — when, in frame
    /// time, the change was confirmed.
    pub at_frame: usize,
    /// The previously active label; `None` for the stream's first
    /// confirmed label.
    pub from: Option<usize>,
    /// The newly active label.
    pub to: usize,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(from) => write!(
                f,
                "stream {}: {} -> {} at frame {} (window {})",
                self.stream, from, self.to, self.at_frame, self.window
            ),
            None => write!(
                f,
                "stream {}: settled on {} at frame {} (window {})",
                self.stream, self.to, self.at_frame, self.window
            ),
        }
    }
}

/// Hysteresis state machine: a candidate label must persist for
/// `hysteresis` consecutive windows before it becomes active and an
/// [`Event`] fires. `hysteresis = 1` reacts to every smoothed change.
///
/// Public so schedulers other than
/// [`StreamSession`](crate::StreamSession) (the fleet simulator's
/// event-driven nodes, custom runners) can reuse the exact debouncing
/// semantics.
#[derive(Debug, Clone)]
pub struct EventDetector {
    hysteresis: usize,
    active: Option<usize>,
    candidate: Option<(usize, usize)>, // (label, consecutive windows seen)
}

impl EventDetector {
    /// A fresh detector requiring `hysteresis` consecutive windows
    /// (clamped to at least 1) to confirm a label.
    pub fn new(hysteresis: usize) -> Self {
        EventDetector {
            hysteresis: hysteresis.max(1),
            active: None,
            candidate: None,
        }
    }

    /// The currently active (last confirmed) label.
    pub fn active(&self) -> Option<usize> {
        self.active
    }

    /// Feeds one smoothed label; returns the event if this window
    /// confirms a change.
    pub fn observe(
        &mut self,
        stream: usize,
        window: usize,
        at_frame: usize,
        label: usize,
    ) -> Option<Event> {
        if self.active == Some(label) {
            // Back on the active label: any half-confirmed candidate was
            // a blip, forget it.
            self.candidate = None;
            return None;
        }
        let seen = match self.candidate {
            Some((cand, seen)) if cand == label => seen + 1,
            _ => 1,
        };
        if seen < self.hysteresis {
            self.candidate = Some((label, seen));
            return None;
        }
        let from = self.active;
        self.active = Some(label);
        self.candidate = None;
        Some(Event {
            stream,
            window,
            at_frame,
            from,
            to: label,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(detector: &mut EventDetector, seq: &[usize]) -> Vec<Event> {
        seq.iter()
            .enumerate()
            .filter_map(|(w, &l)| detector.observe(7, w, w * 2 + 3, l))
            .collect()
    }

    #[test]
    fn first_label_needs_confirmation_too() {
        let mut d = EventDetector::new(2);
        assert_eq!(d.active(), None);
        let events = labels(&mut d, &[4, 4]);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].from, None);
        assert_eq!(events[0].to, 4);
        assert_eq!(events[0].window, 1);
        assert_eq!(events[0].at_frame, 5);
        assert_eq!(events[0].stream, 7);
        assert_eq!(d.active(), Some(4));
        assert!(events[0].to_string().contains("settled on 4"));
    }

    #[test]
    fn single_window_blips_are_debounced() {
        let mut d = EventDetector::new(2);
        let events = labels(&mut d, &[1, 1, 3, 1, 1, 3, 3, 1]);
        // The lone 3s never persist for 2 windows; the trailing single 1
        // after the confirmed 3 doesn't either.
        assert_eq!(
            events.iter().map(|e| (e.from, e.to)).collect::<Vec<_>>(),
            vec![(None, 1), (Some(1), 3)]
        );
        assert_eq!(events[1].window, 6);
        assert!(events[1].to_string().contains("1 -> 3"));
    }

    #[test]
    fn hysteresis_one_fires_on_every_change() {
        let mut d = EventDetector::new(1);
        let events = labels(&mut d, &[2, 2, 5, 2]);
        assert_eq!(
            events.iter().map(|e| e.to).collect::<Vec<_>>(),
            vec![2, 5, 2]
        );
        // Zero clamps to 1.
        let mut z = EventDetector::new(0);
        assert_eq!(labels(&mut z, &[9]).len(), 1);
    }

    #[test]
    fn interleaved_candidates_reset_the_count() {
        // 3 never appears twice *consecutively*, so it is never
        // confirmed even though it appears often.
        let mut d = EventDetector::new(2);
        let events = labels(&mut d, &[0, 0, 3, 4, 3, 4, 3]);
        assert_eq!(events.iter().map(|e| e.to).collect::<Vec<_>>(), vec![0]);
        assert_eq!(d.active(), Some(0));
    }
}
