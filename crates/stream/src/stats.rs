//! Streaming telemetry: per-stream (and aggregate) counters plus
//! end-to-end latency percentiles.

use snappix_serve::LatencySummary;
use std::fmt;
use std::time::Duration;

/// Counters and latency percentiles for one stream — or, via
/// [`StreamStats::aggregate`], for a whole multi-stream run.
///
/// Accounting is conserved per stream: every assembled window ends up in
/// exactly one of `inferred`, `shed`, or `expired`.
///
/// End-to-end latency is measured per inferred window from the instant
/// its last frame arrived (the window *could* first exist) to the
/// instant its prediction was received back from the server — it spans
/// admission queueing, batching delay, and compute. Percentiles are
/// nearest-rank over all of the stream's samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamStats {
    /// Frames ingested from the source.
    pub frames: u64,
    /// Full windows assembled out of those frames.
    pub windows: u64,
    /// Windows that came back with a prediction.
    pub inferred: u64,
    /// Windows dropped by the overload policy (skipped at admission or
    /// displaced as the oldest pending window).
    pub shed: u64,
    /// Windows whose per-window deadline expired in the server queue.
    pub expired: u64,
    /// Label-change events emitted.
    pub events: u64,
    /// End-to-end (window-complete to prediction-received) latency.
    pub latency: LatencySummary,
}

impl StreamStats {
    /// Fraction of assembled windows that were inferred (1.0 for an
    /// unloaded stream; less under shedding). Zero windows → 1.0.
    pub fn service_ratio(&self) -> f64 {
        if self.windows == 0 {
            return 1.0;
        }
        self.inferred as f64 / self.windows as f64
    }

    /// Sums counters across streams and re-ranks latency percentiles
    /// over the pooled samples (percentiles do not average; they must be
    /// recomputed from the union).
    pub fn aggregate<'a>(
        per_stream: impl IntoIterator<Item = &'a StreamStats>,
        pooled_latencies: &[Duration],
    ) -> StreamStats {
        let mut total = StreamStats::default();
        for s in per_stream {
            total.frames += s.frames;
            total.windows += s.windows;
            total.inferred += s.inferred;
            total.shed += s.shed;
            total.expired += s.expired;
            total.events += s.events;
        }
        total.latency = summarize(pooled_latencies);
        total
    }
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} frames -> {} windows ({} inferred, {} shed, {} expired), {} events; \
             e2e latency p50 {:.2?} p95 {:.2?} p99 {:.2?} max {:.2?}",
            self.frames,
            self.windows,
            self.inferred,
            self.shed,
            self.expired,
            self.events,
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.max,
        )
    }
}

/// Nearest-rank percentiles over a finite latency sample set — the
/// serving layer's shared implementation.
pub(crate) fn summarize(samples: &[Duration]) -> LatencySummary {
    LatencySummary::from_samples(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_is_nearest_rank() {
        let samples: Vec<Duration> = (1..=200).map(Duration::from_millis).collect();
        let s = summarize(&samples);
        assert_eq!(s.samples, 200);
        assert_eq!(s.p50, Duration::from_millis(100));
        assert_eq!(s.p95, Duration::from_millis(190));
        assert_eq!(s.p99, Duration::from_millis(198));
        assert_eq!(s.max, Duration::from_millis(200));
        assert_eq!(summarize(&[]), LatencySummary::default());
    }

    #[test]
    fn aggregate_sums_counters_and_pools_latencies() {
        let a = StreamStats {
            frames: 100,
            windows: 20,
            inferred: 18,
            shed: 2,
            expired: 0,
            events: 3,
            latency: summarize(&[Duration::from_millis(1)]),
        };
        let b = StreamStats {
            frames: 50,
            windows: 10,
            inferred: 7,
            shed: 1,
            expired: 2,
            events: 1,
            latency: summarize(&[Duration::from_millis(9)]),
        };
        let pooled = [Duration::from_millis(1), Duration::from_millis(9)];
        let total = StreamStats::aggregate([&a, &b], &pooled);
        assert_eq!(total.frames, 150);
        assert_eq!(total.windows, 30);
        assert_eq!(total.inferred, 25);
        assert_eq!(total.shed, 3);
        assert_eq!(total.expired, 2);
        assert_eq!(total.events, 4);
        assert_eq!(total.inferred + total.shed + total.expired, total.windows);
        assert_eq!(total.latency.samples, 2);
        assert_eq!(total.latency.max, Duration::from_millis(9));
        assert!((total.service_ratio() - 25.0 / 30.0).abs() < 1e-12);
        assert_eq!(StreamStats::default().service_ratio(), 1.0);
        let text = total.to_string();
        assert!(text.contains("25 inferred"));
        assert!(text.contains("p99"));
    }
}
