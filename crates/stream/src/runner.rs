//! Driving many streams concurrently against one shared server.

use crate::{FrameSource, SessionConfig, StreamError, StreamReport, StreamSession, StreamStats};
use snappix_serve::Server;
use std::fmt;
use std::time::{Duration, Instant};

/// How fast the runner feeds frames into each stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Feed frames as fast as sources produce them — the throughput
    /// mode benchmarks and offline replays use.
    MaxThroughput,
    /// Feed one frame per interval per stream, like a live camera. A
    /// stream that falls behind (e.g. blocked on backpressure) does not
    /// try to catch up by bursting — late is late.
    RealTime(Duration),
}

impl Pacing {
    /// Real-time pacing at `fps` frames per second.
    ///
    /// # Errors
    ///
    /// [`StreamError::Config`] unless `fps` is finite and positive —
    /// a NaN, infinite, zero, or negative rate has no meaningful frame
    /// interval. (Earlier versions silently clamped these, which turned
    /// a config typo into a 1000-second frame interval.)
    pub fn fps(fps: f64) -> Result<Self, StreamError> {
        if !fps.is_finite() || fps <= 0.0 {
            return Err(StreamError::Config {
                context: format!("pacing fps must be finite and positive, got {fps}"),
            });
        }
        Ok(Pacing::RealTime(Duration::from_secs_f64(1.0 / fps)))
    }
}

/// Everything a finished multi-stream run reports: one
/// [`StreamReport`] per stream plus the aggregate view.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-stream reports, indexed by stream id.
    pub streams: Vec<StreamReport>,
    /// Counters summed across streams; latency percentiles re-ranked
    /// over the pooled samples.
    pub aggregate: StreamStats,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl RunReport {
    /// Aggregate inferred windows per wall-clock second — the headline
    /// throughput number of a streaming deployment.
    pub fn windows_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.aggregate.inferred as f64 / secs
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for report in &self.streams {
            writeln!(f, "stream {}: {}", report.id, report.stats)?;
        }
        write!(
            f,
            "aggregate ({} streams, {:.2?}): {} — {:.1} windows/s",
            self.streams.len(),
            self.wall,
            self.aggregate,
            self.windows_per_sec(),
        )
    }
}

/// Runs N frame streams concurrently against one shared [`Server`] —
/// one thread per stream, each owning a [`StreamSession`], all feeding
/// the same dynamic batcher (which is what lets concurrent streams'
/// windows share forward passes).
///
/// # Examples
///
/// ```no_run
/// use snappix_serve::prelude::*;
/// use snappix_stream::prelude::*;
///
/// # fn main() -> Result<(), snappix::Error> {
/// let mask = patterns::long_exposure(8, (8, 8))?;
/// let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
/// let server = Server::builder(Pipeline::builder(model)).build()?;
///
/// let mut runner = StreamRunner::new(&server).with_pacing(Pacing::fps(30.0)?);
/// for i in 0..4 {
///     let video = Dataset::new(ssv2_like(32, 16, 16), 8).sample(i).video;
///     runner.add_stream(ReplaySource::new(video), SessionConfig::new(8, 4));
/// }
/// let report = runner.run().map_err(snappix::Error::from)?;
/// println!("{report}");
/// # Ok(())
/// # }
/// ```
pub struct StreamRunner<'a> {
    server: &'a Server,
    pacing: Pacing,
    streams: Vec<(Box<dyn FrameSource + Send + 'a>, SessionConfig)>,
}

impl<'a> StreamRunner<'a> {
    /// A runner over `server` with [`Pacing::MaxThroughput`] and no
    /// streams yet.
    pub fn new(server: &'a Server) -> Self {
        StreamRunner {
            server,
            pacing: Pacing::MaxThroughput,
            streams: Vec::new(),
        }
    }

    /// Sets the pacing applied to every stream.
    #[must_use]
    pub fn with_pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Adds a stream, returning its id (ids are dense, in add order, and
    /// index [`RunReport::streams`]).
    pub fn add_stream(
        &mut self,
        source: impl FrameSource + Send + 'a,
        config: SessionConfig,
    ) -> usize {
        self.streams.push((Box::new(source), config));
        self.streams.len() - 1
    }

    /// Number of streams added so far.
    pub fn streams(&self) -> usize {
        self.streams.len()
    }

    /// Drains every source through its session concurrently and collects
    /// the reports. Returns once all streams have finished (sources
    /// exhausted, in-flight work resolved).
    ///
    /// # Errors
    ///
    /// The first [`StreamError`] any stream hit; the remaining streams
    /// still run to completion first (bounded by their sources).
    pub fn run(self) -> Result<RunReport, StreamError> {
        let started = Instant::now();
        let server = self.server;
        let pacing = self.pacing;
        let outcomes: Vec<Result<StreamReport, StreamError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .streams
                .into_iter()
                .enumerate()
                .map(|(id, (mut source, config))| {
                    scope.spawn(move || -> Result<StreamReport, StreamError> {
                        let mut session = StreamSession::new(id, server, config)?;
                        let interval = match pacing {
                            Pacing::MaxThroughput => None,
                            Pacing::RealTime(interval) => Some(interval),
                        };
                        let t0 = Instant::now();
                        let mut n: u32 = 0;
                        while let Some(frame) = source.next_frame()? {
                            if let Some(interval) = interval {
                                let due = t0 + interval * n;
                                let now = Instant::now();
                                if due > now {
                                    std::thread::sleep(due - now);
                                }
                            }
                            n = n.saturating_add(1);
                            session.push(&frame)?;
                        }
                        session.finish()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stream thread panicked"))
                .collect()
        });
        let mut streams = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            streams.push(outcome?);
        }
        let pooled: Vec<Duration> = streams
            .iter()
            .flat_map(|r| r.results.iter().map(|w| w.latency))
            .collect();
        let aggregate = StreamStats::aggregate(streams.iter().map(|r| &r.stats), &pooled);
        Ok(RunReport {
            streams,
            aggregate,
            wall: started.elapsed(),
        })
    }
}

impl fmt::Debug for StreamRunner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamRunner")
            .field("streams", &self.streams.len())
            .field("pacing", &self.pacing)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_constructors() {
        assert_eq!(
            Pacing::fps(50.0).unwrap(),
            Pacing::RealTime(Duration::from_millis(20))
        );
        // Nonsense rates are rejected at construction, not clamped into
        // a silently-absurd interval.
        for bad in [0.0, -30.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Pacing::fps(bad).expect_err("bad fps must be rejected");
            assert!(matches!(err, StreamError::Config { .. }), "{err}");
        }
    }

    #[test]
    fn empty_run_report_is_sane() {
        let report = RunReport {
            streams: Vec::new(),
            aggregate: StreamStats::default(),
            wall: Duration::ZERO,
        };
        assert_eq!(report.windows_per_sec(), 0.0);
        assert!(report.to_string().contains("0 streams"));
    }
}
