//! One stream's session: frames in, smoothed per-window results and
//! label-change events out.
//!
//! A [`StreamSession`] owns the per-stream state machine between a frame
//! source and a shared [`Server`]: the sliding-window assembler, the
//! overload policy that decides what happens when the server cannot keep
//! up, a FIFO of in-flight tickets (so results are processed strictly in
//! window order no matter how the server batches them), the temporal
//! smoother, and the event detector. Sessions are single-threaded by
//! design — the [`StreamRunner`](crate::StreamRunner) drives one per
//! stream thread — and many sessions share one server, which is where
//! cross-stream dynamic batching happens.

use crate::smooth::Smoother;
use crate::stats::summarize;
use crate::{Event, EventDetector, Smoothing, StreamError, StreamStats, WindowAssembler};
use snappix::Prediction;
use snappix_metrics::{Counter, Histogram, HistogramOpts, Registry};
use snappix_serve::{ServeError, Server, Ticket};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// What a session does with a freshly-assembled window when the server's
/// admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block until the queue has room (`Server::submit`): no window is
    /// ever lost, but the stream falls behind real time under sustained
    /// overload. The right policy for offline replay and for the
    /// bit-for-bit equivalence guarantee.
    Block,
    /// Try to submit (`Server::try_submit`) and *skip* the window when
    /// shed: the stream stays current by serving fewer windows. The
    /// freshest-data policy for live feeds where an old answer is worse
    /// than no answer.
    SkipWindow,
    /// Hold up to `pending` unadmitted windows in a session-side buffer,
    /// displacing the *oldest* buffered window when a new one arrives
    /// while the buffer is full. Smooths bursts without falling behind
    /// by more than `pending` windows. `pending` is clamped to at
    /// least 1.
    DropOldest {
        /// Maximum unadmitted windows buffered per stream.
        pending: usize,
    },
}

/// Per-stream configuration, built `with_*`-style like the rest of the
/// workspace.
///
/// # Examples
///
/// ```
/// use snappix_stream::{OverloadPolicy, SessionConfig, Smoothing};
///
/// let config = SessionConfig::new(8, 2)
///     .with_smoothing(Smoothing::Majority { k: 3 })
///     .with_hysteresis(2)
///     .with_overload(OverloadPolicy::SkipWindow);
/// assert_eq!(config.window, 8);
/// assert_eq!(config.hop, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Window length `t` in frames — must equal the served model's slot
    /// count (`Server::expected_clip()[0]`).
    pub window: usize,
    /// Frames between consecutive window starts (clamped to ≥ 1).
    pub hop: usize,
    /// Temporal smoothing of the per-window labels.
    pub smoothing: Smoothing,
    /// Consecutive windows a new smoothed label must persist before a
    /// label-change [`Event`] fires (clamped to ≥ 1).
    pub hysteresis: usize,
    /// What to do when the server sheds load.
    pub overload: OverloadPolicy,
    /// Optional per-window deadline, measured from submission: windows
    /// still queued this long after admission expire server-side and are
    /// counted in [`StreamStats::expired`].
    pub deadline: Option<Duration>,
}

impl SessionConfig {
    /// A config with the given window length and hop; smoothing defaults
    /// to [`Smoothing::default`], hysteresis to 2, overload to
    /// [`OverloadPolicy::Block`], no deadline.
    pub fn new(window: usize, hop: usize) -> Self {
        SessionConfig {
            window,
            hop: hop.max(1),
            smoothing: Smoothing::default(),
            hysteresis: 2,
            overload: OverloadPolicy::Block,
            deadline: None,
        }
    }

    /// Sets the temporal smoothing mode.
    #[must_use]
    pub fn with_smoothing(mut self, smoothing: Smoothing) -> Self {
        self.smoothing = smoothing;
        self
    }

    /// Sets the event hysteresis in windows (clamped to ≥ 1).
    #[must_use]
    pub fn with_hysteresis(mut self, hysteresis: usize) -> Self {
        self.hysteresis = hysteresis.max(1);
        self
    }

    /// Sets the overload policy.
    #[must_use]
    pub fn with_overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// Sets a per-window deadline (measured from submission).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One inferred window's full record.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult {
    /// Window index `k` (window covers frames `[k * hop, k * hop + t)`).
    pub index: usize,
    /// First stream frame of the window, `k * hop`.
    pub start_frame: usize,
    /// The raw prediction — bit-for-bit what an offline
    /// `Pipeline::infer` over the same frames produces.
    pub prediction: Prediction,
    /// The temporally-smoothed label after folding this window in.
    pub smoothed: usize,
    /// End-to-end latency: last frame of the window arriving to the
    /// prediction being picked up (admission + batching + compute +
    /// the session's polling cadence).
    pub latency: Duration,
}

/// Why a window was not inferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The overload policy shed it (skipped at admission, or displaced
    /// as the oldest buffered window).
    Shed,
    /// Its deadline expired in the server queue.
    Expired,
}

/// Everything one finished stream reports.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The stream id the session was created with.
    pub id: usize,
    /// Counters and latency percentiles.
    pub stats: StreamStats,
    /// Per-window results in window order (inferred windows only).
    pub results: Vec<WindowResult>,
    /// Dropped windows as `(window index, reason)`, in drop order.
    pub dropped: Vec<(usize, DropReason)>,
    /// Confirmed label-change events, in emission order.
    pub events: Vec<Event>,
}

/// Handles into the server's [`Registry`] for the `snappix_stream_*`
/// families. Every session streaming into the same server re-registers
/// the same (name, label-set) families — registration is idempotent —
/// so the scraped counters aggregate across streams, exactly like
/// [`StreamRunner::stats`](crate::StreamRunner::stats) sums per-stream
/// reports. A server built with `Registry::disabled()` hands out no-op
/// handles and every record below vanishes.
struct Telemetry {
    frames: Counter,
    windows: Counter,
    inferred: Counter,
    shed: Counter,
    expired: Counter,
    events: Counter,
    latency: Histogram,
}

impl Telemetry {
    fn new(registry: &Registry) -> Self {
        Telemetry {
            frames: registry.counter(
                "snappix_stream_frames_total",
                "Frames ingested across all stream sessions.",
            ),
            windows: registry.counter(
                "snappix_stream_windows_total",
                "Clip windows assembled from ingested frames.",
            ),
            inferred: registry.counter(
                "snappix_stream_inferred_total",
                "Windows that came back with a prediction.",
            ),
            shed: registry.counter(
                "snappix_stream_shed_total",
                "Windows dropped by the overload policy.",
            ),
            expired: registry.counter(
                "snappix_stream_expired_total",
                "Windows whose deadline expired in the serving queue.",
            ),
            events: registry.counter(
                "snappix_stream_events_total",
                "Confirmed label-change events emitted.",
            ),
            latency: registry.histogram(
                "snappix_stream_window_latency_seconds",
                "End-to-end window latency: last frame of the window arriving \
                 to its prediction being picked up.",
                HistogramOpts::nanos(),
            ),
        }
    }
}

struct PendingWindow {
    index: usize,
    window: snappix_tensor::Tensor,
    completed_at: Instant,
}

struct InFlightWindow {
    index: usize,
    ticket: Ticket,
    completed_at: Instant,
}

/// The per-stream state machine; see the module docs for the role it
/// plays. Create one per stream over a shared [`Server`], feed it frames
/// with [`push`](Self::push), then [`finish`](Self::finish) it for the
/// [`StreamReport`].
///
/// # Examples
///
/// ```no_run
/// use snappix_serve::prelude::*;
/// use snappix_stream::{SessionConfig, StreamSession};
///
/// # fn main() -> Result<(), snappix::Error> {
/// let mask = patterns::long_exposure(8, (8, 8))?;
/// let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
/// let server = Server::builder(Pipeline::builder(model)).build()?;
/// let mut session = StreamSession::new(0, &server, SessionConfig::new(8, 4))
///     .map_err(snappix::Error::from)?;
/// for _ in 0..32 {
///     session
///         .push(&Tensor::zeros(&[16, 16]))
///         .map_err(snappix::Error::from)?;
/// }
/// let report = session.finish().map_err(snappix::Error::from)?;
/// println!("{}", report.stats);
/// # Ok(())
/// # }
/// ```
pub struct StreamSession<'a> {
    id: usize,
    server: &'a Server,
    assembler: WindowAssembler,
    smoother: Smoother,
    detector: EventDetector,
    overload: OverloadPolicy,
    deadline: Option<Duration>,
    hop: usize,
    window_len: usize,
    pending: VecDeque<PendingWindow>,
    in_flight: VecDeque<InFlightWindow>,
    results: Vec<WindowResult>,
    dropped: Vec<(usize, DropReason)>,
    events: Vec<Event>,
    telemetry: Telemetry,
}

impl<'a> StreamSession<'a> {
    /// Creates a session streaming into `server`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Config`] when `config.window` differs from
    /// the served model's slot count — a mismatched window would be
    /// rejected at every submission anyway, so it is rejected once,
    /// here.
    pub fn new(id: usize, server: &'a Server, config: SessionConfig) -> Result<Self, StreamError> {
        let [t, h, w] = server.expected_clip();
        if config.window != t {
            return Err(StreamError::Config {
                context: format!(
                    "window length {} does not match the served model's {t} exposure slots",
                    config.window
                ),
            });
        }
        Ok(StreamSession {
            id,
            server,
            assembler: WindowAssembler::new(config.window, config.hop, [h, w])?,
            smoother: Smoother::new(config.smoothing),
            detector: EventDetector::new(config.hysteresis),
            overload: config.overload,
            deadline: config.deadline,
            hop: config.hop.max(1),
            window_len: config.window,
            pending: VecDeque::new(),
            in_flight: VecDeque::new(),
            results: Vec::new(),
            dropped: Vec::new(),
            events: Vec::new(),
            telemetry: Telemetry::new(server.metrics()),
        })
    }

    /// The stream id events are tagged with.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The currently active (last confirmed) label, if any.
    pub fn active_label(&self) -> Option<usize> {
        self.detector.active()
    }

    /// Results completed so far (window order).
    pub fn results(&self) -> &[WindowResult] {
        &self.results
    }

    /// Events emitted so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// A point-in-time stats snapshot (latency percentiles over the
    /// results completed so far).
    pub fn stats(&self) -> StreamStats {
        let latencies: Vec<Duration> = self.results.iter().map(|r| r.latency).collect();
        StreamStats {
            frames: self.assembler.frames_in() as u64,
            windows: self.assembler.windows_out() as u64,
            inferred: self.results.len() as u64,
            shed: self
                .dropped
                .iter()
                .filter(|(_, r)| *r == DropReason::Shed)
                .count() as u64,
            expired: self
                .dropped
                .iter()
                .filter(|(_, r)| *r == DropReason::Expired)
                .count() as u64,
            events: self.events.len() as u64,
            latency: summarize(&latencies),
        }
    }

    /// Absorbs one `[h, w]` frame: assembles windows, applies the
    /// overload policy to any completed window, and opportunistically
    /// collects finished results (so smoothing and events advance while
    /// the stream is still running).
    ///
    /// # Errors
    ///
    /// [`StreamError::Frame`] for a geometry mismatch,
    /// [`StreamError::Serve`] when the server fails in a way the
    /// overload policy does not cover (shutdown, batch inference
    /// failure, worker death).
    pub fn push(&mut self, frame: &snappix_tensor::Tensor) -> Result<(), StreamError> {
        let assembled = self.assembler.push(frame)?;
        self.telemetry.frames.inc();
        if let Some(window) = assembled {
            self.telemetry.windows.inc();
            let index = self.assembler.windows_out() - 1;
            self.admit(PendingWindow {
                index,
                window,
                completed_at: Instant::now(),
            })?;
        }
        self.poll()
    }

    /// Flushes the session: one last admission pass for buffered
    /// windows, then waits out every in-flight result, and reports.
    ///
    /// Windows still unadmitted after the final pass are counted as
    /// shed — `finish` never blocks on a saturated server for work the
    /// overload policy already declined to force through.
    ///
    /// # Errors
    ///
    /// Same as [`push`](Self::push).
    pub fn finish(mut self) -> Result<StreamReport, StreamError> {
        self.drain_pending()?;
        while let Some(p) = self.pending.pop_front() {
            self.drop_window(p.index, DropReason::Shed);
        }
        while let Some(f) = self.in_flight.pop_front() {
            let InFlightWindow {
                index,
                ticket,
                completed_at,
            } = f;
            match ticket.wait() {
                Ok(prediction) => self.complete(index, completed_at, prediction),
                Err(ServeError::DeadlineExpired { .. }) => {
                    self.drop_window(index, DropReason::Expired);
                }
                Err(e) => return Err(e.into()),
            }
        }
        let stats = self.stats();
        debug_assert_eq!(
            stats.inferred + stats.shed + stats.expired,
            stats.windows,
            "window accounting must be conserved"
        );
        Ok(StreamReport {
            id: self.id,
            stats,
            results: self.results,
            dropped: self.dropped,
            events: self.events,
        })
    }

    /// Logs one dropped window in the report *and* the registry.
    fn drop_window(&mut self, index: usize, reason: DropReason) {
        match reason {
            DropReason::Shed => self.telemetry.shed.inc(),
            DropReason::Expired => self.telemetry.expired.inc(),
        }
        self.dropped.push((index, reason));
    }

    /// Routes one completed window through the overload policy.
    fn admit(&mut self, pending: PendingWindow) -> Result<(), StreamError> {
        match self.overload {
            OverloadPolicy::Block => {
                let admitted = match self.deadline {
                    Some(d) => self.server.submit_within(&pending.window, d),
                    None => self.server.submit(&pending.window),
                };
                let ticket = admitted.map_err(StreamError::from)?;
                self.in_flight.push_back(InFlightWindow {
                    index: pending.index,
                    ticket,
                    completed_at: pending.completed_at,
                });
                Ok(())
            }
            OverloadPolicy::SkipWindow => {
                let admitted = match self.deadline {
                    Some(d) => self.server.try_submit_within(&pending.window, d),
                    None => self.server.try_submit(&pending.window),
                };
                match admitted {
                    Ok(ticket) => {
                        self.in_flight.push_back(InFlightWindow {
                            index: pending.index,
                            ticket,
                            completed_at: pending.completed_at,
                        });
                        Ok(())
                    }
                    Err(ServeError::Overloaded { .. }) => {
                        self.drop_window(pending.index, DropReason::Shed);
                        Ok(())
                    }
                    Err(e) => Err(e.into()),
                }
            }
            OverloadPolicy::DropOldest { pending: cap } => {
                self.pending.push_back(pending);
                self.drain_pending()?;
                while self.pending.len() > cap.max(1) {
                    let victim = self.pending.pop_front().expect("len checked");
                    self.drop_window(victim.index, DropReason::Shed);
                }
                Ok(())
            }
        }
    }

    /// Tries to move buffered windows into the server, oldest first, so
    /// submission order always equals window order.
    fn drain_pending(&mut self) -> Result<(), StreamError> {
        while let Some(front) = self.pending.front() {
            let admitted = match self.deadline {
                Some(d) => self.server.try_submit_within(&front.window, d),
                None => self.server.try_submit(&front.window),
            };
            match admitted {
                Ok(ticket) => {
                    let p = self.pending.pop_front().expect("front checked");
                    self.in_flight.push_back(InFlightWindow {
                        index: p.index,
                        ticket,
                        completed_at: p.completed_at,
                    });
                }
                Err(ServeError::Overloaded { .. }) => break,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Collects every already-finished in-flight result without
    /// blocking, strictly in window order.
    fn poll(&mut self) -> Result<(), StreamError> {
        while let Some(front) = self.in_flight.front() {
            match front.ticket.try_wait() {
                Ok(None) => break,
                Ok(Some(prediction)) => {
                    let f = self.in_flight.pop_front().expect("front checked");
                    self.complete(f.index, f.completed_at, prediction);
                }
                Err(ServeError::DeadlineExpired { .. }) => {
                    let f = self.in_flight.pop_front().expect("front checked");
                    self.drop_window(f.index, DropReason::Expired);
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Folds one prediction into smoothing, event detection, and the
    /// results log.
    fn complete(&mut self, index: usize, completed_at: Instant, prediction: Prediction) {
        let latency = completed_at.elapsed();
        self.telemetry.inferred.inc();
        self.telemetry.latency.record(latency.as_nanos() as u64);
        let smoothed = self.smoother.observe(&prediction);
        let at_frame = index * self.hop + self.window_len - 1;
        if let Some(event) = self.detector.observe(self.id, index, at_frame, smoothed) {
            self.events.push(event);
            self.telemetry.events.inc();
        }
        self.results.push(WindowResult {
            index,
            start_frame: index * self.hop,
            prediction,
            smoothed,
            latency,
        });
    }
}

impl std::fmt::Debug for StreamSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("id", &self.id)
            .field("window", &self.window_len)
            .field("hop", &self.hop)
            .field("frames_in", &self.assembler.frames_in())
            .field("in_flight", &self.in_flight.len())
            .field("pending", &self.pending.len())
            .field("results", &self.results.len())
            .finish()
    }
}
