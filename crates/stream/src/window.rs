//! Sliding-window assembly over a live frame stream.
//!
//! The offline equivalent is [`Video::windows`](snappix_video::Video::windows):
//! window `k` covers frames `[k * hop, k * hop + t)`. The assembler
//! produces *exactly those tensors* from frames arriving one at a time,
//! holding only the last `t` frames in a fixed ring buffer — constant
//! memory no matter how long the stream runs (pinned by a unit test that
//! diffs it against the iterator).

use crate::StreamError;
use snappix_tensor::Tensor;

/// Turns a frame-at-a-time stream into sliding `[t, h, w]` windows.
///
/// Frames are written into a fixed `t`-frame ring buffer; a window is
/// emitted the moment its last frame arrives (start `k * hop`, length
/// `t`), which is also the instant its end-to-end latency clock starts.
/// `hop < t` overlaps windows, `hop == t` tiles the stream, `hop > t`
/// skips the frames between windows — gap frames still pass through the
/// ring (they are simply overwritten unemitted).
///
/// # Examples
///
/// ```
/// use snappix_stream::WindowAssembler;
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_stream::StreamError> {
/// let mut assembler = WindowAssembler::new(3, 2, [4, 4])?;
/// let mut windows = 0;
/// for i in 0..7 {
///     if let Some(window) = assembler.push(&Tensor::full(&[4, 4], i as f32))? {
///         assert_eq!(window.shape(), &[3, 4, 4]);
///         windows += 1;
///     }
/// }
/// assert_eq!(windows, 3); // starts 0, 2, 4
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WindowAssembler {
    /// Ring of the last `t` frames, laid out frame-major: slot
    /// `frame_index % t` holds that frame's `h * w` pixels.
    ring: Vec<f32>,
    t: usize,
    hop: usize,
    shape: [usize; 2],
    frames_in: usize,
}

impl WindowAssembler {
    /// An assembler for `[t, h, w]` windows at the given hop over
    /// `frame_shape = [h, w]` frames. `hop` is clamped to at least 1.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Config`] for a zero-length window or a
    /// zero-area frame.
    pub fn new(t: usize, hop: usize, frame_shape: [usize; 2]) -> Result<Self, StreamError> {
        if t == 0 {
            return Err(StreamError::Config {
                context: "window length t must be at least 1".to_string(),
            });
        }
        if frame_shape.contains(&0) {
            return Err(StreamError::Config {
                context: format!("frame shape {frame_shape:?} has a zero extent"),
            });
        }
        Ok(WindowAssembler {
            ring: vec![0.0; t * frame_shape[0] * frame_shape[1]],
            t,
            hop: hop.max(1),
            shape: frame_shape,
            frames_in: 0,
        })
    }

    /// Window length `t`.
    pub fn window(&self) -> usize {
        self.t
    }

    /// Hop between consecutive window starts.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Frames pushed so far.
    pub fn frames_in(&self) -> usize {
        self.frames_in
    }

    /// Windows emitted so far.
    pub fn windows_out(&self) -> usize {
        if self.frames_in < self.t {
            0
        } else {
            (self.frames_in - self.t) / self.hop + 1
        }
    }

    /// Absorbs one `[h, w]` frame; returns the completed `[t, h, w]`
    /// window when this frame is the last of one.
    ///
    /// A window starting at frame `s = k * hop` completes exactly when
    /// frame `s + t - 1` arrives, and the ring then holds precisely
    /// frames `[s, s + t)` — so assembly is a rotation-ordered copy out
    /// of the ring, never a re-buffering of the stream.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Frame`] when the frame's shape differs
    /// from the assembler's geometry.
    pub fn push(&mut self, frame: &Tensor) -> Result<Option<Tensor>, StreamError> {
        if frame.shape() != self.shape {
            return Err(StreamError::Frame {
                context: format!(
                    "expected an [h, w] = {:?} frame, got {:?}",
                    self.shape,
                    frame.shape()
                ),
            });
        }
        let frame_len = self.shape[0] * self.shape[1];
        let slot = self.frames_in % self.t;
        self.ring[slot * frame_len..(slot + 1) * frame_len].copy_from_slice(frame.as_slice());
        self.frames_in += 1;

        // Ready when the frame just pushed closes a window: with
        // `frames_in` now past the end, start = frames_in - t must be a
        // hop multiple.
        if self.frames_in < self.t || !(self.frames_in - self.t).is_multiple_of(self.hop) {
            return Ok(None);
        }
        let start = self.frames_in - self.t;
        let mut data = Vec::with_capacity(self.t * frame_len);
        for i in start..start + self.t {
            let slot = i % self.t;
            data.extend_from_slice(&self.ring[slot * frame_len..(slot + 1) * frame_len]);
        }
        let window = Tensor::from_vec(data, &[self.t, self.shape[0], self.shape[1]])
            .expect("ring data matches the window shape");
        Ok(Some(window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_video::Video;

    fn video(n: usize) -> Video {
        let data: Vec<f32> = (0..n * 6).map(|x| x as f32 * 0.25).collect();
        Video::new(Tensor::from_vec(data, &[n, 2, 3]).unwrap()).unwrap()
    }

    /// The defining property: streaming assembly reproduces
    /// `Video::windows` bit for bit, for overlapping, tiling and
    /// gapped hops, including clip lengths not divisible by the hop.
    #[test]
    fn assembler_matches_offline_windows_exactly() {
        for (n, t, hop) in [
            (11, 4, 1),
            (11, 4, 3),
            (12, 4, 4),
            (13, 2, 5),
            (3, 4, 1), // fewer frames than a window: no output
            (7, 7, 2), // single exact-fit window
        ] {
            let v = video(n);
            let offline: Vec<Tensor> = v.windows(t, hop).collect();
            let mut assembler = WindowAssembler::new(t, hop, [2, 3]).unwrap();
            let mut streamed = Vec::new();
            for i in 0..n {
                if let Some(w) = assembler.push(&v.frame(i).unwrap()).unwrap() {
                    streamed.push(w);
                }
            }
            assert_eq!(
                streamed.len(),
                offline.len(),
                "window count for n={n} t={t} hop={hop}"
            );
            assert_eq!(assembler.windows_out(), offline.len());
            assert_eq!(assembler.frames_in(), n);
            for (k, (s, o)) in streamed.iter().zip(&offline).enumerate() {
                assert!(
                    s.approx_eq(o, 0.0),
                    "window {k} differs for n={n} t={t} hop={hop}"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(matches!(
            WindowAssembler::new(0, 1, [2, 2]),
            Err(StreamError::Config { .. })
        ));
        assert!(matches!(
            WindowAssembler::new(2, 1, [0, 2]),
            Err(StreamError::Config { .. })
        ));
        let mut a = WindowAssembler::new(2, 1, [2, 2]).unwrap();
        assert!(matches!(
            a.push(&Tensor::zeros(&[3, 2])),
            Err(StreamError::Frame { .. })
        ));
        // A rejected frame is not absorbed.
        assert_eq!(a.frames_in(), 0);
        assert_eq!(a.window(), 2);
        assert_eq!(a.hop(), 1);
    }

    #[test]
    fn hop_zero_clamps_to_one() {
        let mut a = WindowAssembler::new(2, 0, [1, 1]).unwrap();
        assert_eq!(a.hop(), 1);
        let mut count = 0;
        for i in 0..4 {
            if a.push(&Tensor::full(&[1, 1], i as f32)).unwrap().is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 3);
    }
}
