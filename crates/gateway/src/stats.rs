//! Gateway telemetry: connection/request/byte counters and per-endpoint
//! latency percentiles, snapshotted as [`GatewayStats`].

use snappix_serve::LatencySummary;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Per-endpoint latency windows match the serving layer's sizing: the
/// percentiles track *current* behaviour, the counters are all-time.
const LATENCY_WINDOW: usize = 4096;

/// The gateway's routable endpoints, used as the `endpoint` label on
/// every request metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Endpoint {
    /// `POST /v1/classify` — binary clip in, prediction out.
    Classify,
    /// `GET /health` — liveness probe.
    Health,
    /// `GET /stats` — human-readable telemetry dump.
    Stats,
    /// `GET /metrics` — Prometheus text exposition.
    Metrics,
    /// `GET /debug/trace` — recent request traces as Chrome trace-event
    /// JSON.
    Trace,
    /// Anything else: unknown paths, wrong methods, unparseable
    /// requests.
    Other,
}

impl Endpoint {
    /// The `endpoint` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Classify => "classify",
            Endpoint::Health => "health",
            Endpoint::Stats => "stats",
            Endpoint::Metrics => "metrics",
            Endpoint::Trace => "trace",
            Endpoint::Other => "other",
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How many requests one `(endpoint, status)` pair has answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestCount {
    /// Which endpoint answered.
    pub endpoint: Endpoint,
    /// The HTTP status it answered with.
    pub status: u16,
    /// All-time count.
    pub count: u64,
}

/// Latency of one endpoint's answered requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointLatency {
    /// Which endpoint.
    pub endpoint: Endpoint,
    /// Sliding-window percentiles plus the all-time sample count and
    /// running total (same semantics as the serving layer's summaries).
    pub summary: LatencySummary,
    /// All-time total time spent answering (a Prometheus summary's
    /// `_sum`); equal to `summary.total`, kept for direct access.
    pub total: Duration,
}

/// A point-in-time snapshot of a [`Gateway`](crate::Gateway)'s
/// telemetry, from [`Gateway::stats`](crate::Gateway::stats).
///
/// Request latency here is *wire latency* — from the last header byte
/// parsed to the response flushed — so for classify it wraps the whole
/// serve-side queue + batch + compute round trip plus body decode and
/// response encode.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayStats {
    /// TCP connections accepted (all-time).
    pub connections: u64,
    /// Connections currently open.
    pub active_connections: usize,
    /// Connections turned away at the `max_connections` cap.
    pub connections_rejected: u64,
    /// Requests answered, by `(endpoint, status)`, in ascending order.
    pub requests: Vec<RequestCount>,
    /// Classify requests shed by the per-client rate limiter (each also
    /// counts as a `(classify, 429)` request).
    pub rate_limited: u64,
    /// Request bytes read off the wire (heads + bodies).
    pub bytes_read: u64,
    /// Response bytes written to the wire.
    pub bytes_written: u64,
    /// Per-endpoint request latency, ascending by endpoint; endpoints
    /// that have answered nothing are omitted.
    pub latency: Vec<EndpointLatency>,
    /// Time since the gateway started listening.
    pub uptime: Duration,
}

impl GatewayStats {
    /// All requests answered, across endpoints and statuses.
    pub fn requests_total(&self) -> u64 {
        self.requests.iter().map(|r| r.count).sum()
    }

    /// Requests answered by `endpoint` (summed over statuses).
    pub fn requests_to(&self, endpoint: Endpoint) -> u64 {
        self.requests
            .iter()
            .filter(|r| r.endpoint == endpoint)
            .map(|r| r.count)
            .sum()
    }

    /// Requests answered with `status` (summed over endpoints).
    pub fn requests_with_status(&self, status: u16) -> u64 {
        self.requests
            .iter()
            .filter(|r| r.status == status)
            .map(|r| r.count)
            .sum()
    }
}

impl fmt::Display for GatewayStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests over {} connections in {:.2?} ({} active, {} rejected, {} rate-limited)",
            self.requests_total(),
            self.connections,
            self.uptime,
            self.active_connections,
            self.connections_rejected,
            self.rate_limited,
        )?;
        writeln!(
            f,
            "bytes: {} in, {} out",
            self.bytes_read, self.bytes_written
        )?;
        for r in &self.requests {
            writeln!(f, "  {} {}: {}", r.endpoint, r.status, r.count)?;
        }
        for (i, l) in self.latency.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "  {} latency: p50 {:.2?}  p95 {:.2?}  p99 {:.2?}  max {:.2?}",
                l.endpoint, l.summary.p50, l.summary.p95, l.summary.p99, l.summary.max,
            )?;
        }
        Ok(())
    }
}

/// A bounded sliding latency window that also keeps the all-time sum
/// (for Prometheus summary `_sum`/`_count`).
#[derive(Debug, Default)]
struct Window {
    recent: VecDeque<Duration>,
    seen: u64,
    total: Duration,
}

impl Window {
    fn record(&mut self, sample: Duration) {
        if self.recent.len() == LATENCY_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back(sample);
        self.seen += 1;
        self.total += sample;
    }
}

#[derive(Debug, Default)]
struct Counters {
    connections: u64,
    active_connections: usize,
    connections_rejected: u64,
    requests: BTreeMap<(Endpoint, u16), u64>,
    rate_limited: u64,
    bytes_read: u64,
    bytes_written: u64,
    latency: BTreeMap<Endpoint, Window>,
}

/// The internally-locked recorder connection handlers write into.
#[derive(Debug)]
pub(crate) struct Recorder {
    started: Instant,
    counters: Mutex<Counters>,
}

impl Recorder {
    pub fn new() -> Self {
        Recorder {
            started: Instant::now(),
            counters: Mutex::new(Counters::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Counters> {
        self.counters.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn record_connection(&self) {
        let mut c = self.lock();
        c.connections += 1;
        c.active_connections += 1;
    }

    pub fn record_disconnect(&self) {
        let mut c = self.lock();
        c.active_connections = c.active_connections.saturating_sub(1);
    }

    pub fn record_connection_rejected(&self) {
        self.lock().connections_rejected += 1;
    }

    pub fn record_rate_limited(&self) {
        self.lock().rate_limited += 1;
    }

    /// One answered request: who answered, with what status, the bytes
    /// both ways, and the wire latency.
    pub fn record_request(
        &self,
        endpoint: Endpoint,
        status: u16,
        bytes_read: u64,
        bytes_written: u64,
        latency: Duration,
    ) {
        let mut c = self.lock();
        *c.requests.entry((endpoint, status)).or_insert(0) += 1;
        c.bytes_read += bytes_read;
        c.bytes_written += bytes_written;
        c.latency.entry(endpoint).or_default().record(latency);
    }

    pub fn snapshot(&self) -> GatewayStats {
        // Copy out under the lock; rank percentiles after releasing it.
        let (mut stats, windows) = {
            let c = self.lock();
            (
                GatewayStats {
                    connections: c.connections,
                    active_connections: c.active_connections,
                    connections_rejected: c.connections_rejected,
                    requests: c
                        .requests
                        .iter()
                        .map(|(&(endpoint, status), &count)| RequestCount {
                            endpoint,
                            status,
                            count,
                        })
                        .collect(),
                    rate_limited: c.rate_limited,
                    bytes_read: c.bytes_read,
                    bytes_written: c.bytes_written,
                    latency: Vec::new(),
                    uptime: self.started.elapsed(),
                },
                c.latency
                    .iter()
                    .map(|(&endpoint, w)| {
                        (
                            endpoint,
                            w.recent.iter().copied().collect::<Vec<_>>(),
                            w.seen,
                            w.total,
                        )
                    })
                    .collect::<Vec<_>>(),
            )
        };
        stats.latency = windows
            .into_iter()
            .map(|(endpoint, recent, seen, total)| EndpointLatency {
                endpoint,
                summary: LatencySummary {
                    samples: seen,
                    total,
                    ..LatencySummary::from_samples(&recent)
                },
                total,
            })
            .collect();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_every_counter() {
        let r = Recorder::new();
        r.record_connection();
        r.record_connection();
        r.record_disconnect();
        r.record_connection_rejected();
        r.record_rate_limited();
        r.record_request(Endpoint::Classify, 200, 4096, 120, Duration::from_millis(3));
        r.record_request(Endpoint::Classify, 200, 4096, 120, Duration::from_millis(5));
        r.record_request(Endpoint::Classify, 429, 64, 40, Duration::from_micros(20));
        r.record_request(Endpoint::Health, 200, 30, 50, Duration::from_micros(10));
        let s = r.snapshot();
        assert_eq!(s.connections, 2);
        assert_eq!(s.active_connections, 1);
        assert_eq!(s.connections_rejected, 1);
        assert_eq!(s.rate_limited, 1);
        assert_eq!(s.bytes_read, 4096 + 4096 + 64 + 30);
        assert_eq!(s.bytes_written, 120 + 120 + 40 + 50);
        assert_eq!(s.requests_total(), 4);
        assert_eq!(s.requests_to(Endpoint::Classify), 3);
        assert_eq!(s.requests_with_status(200), 3);
        assert_eq!(s.requests_with_status(429), 1);
        let classify = s
            .latency
            .iter()
            .find(|l| l.endpoint == Endpoint::Classify)
            .expect("classify latency tracked");
        assert_eq!(classify.summary.samples, 3);
        assert_eq!(classify.summary.max, Duration::from_millis(5));
        assert_eq!(
            classify.total,
            Duration::from_millis(8) + Duration::from_micros(20)
        );
        assert_eq!(
            classify.summary.total, classify.total,
            "the summary carries the same all-time total"
        );
        assert!(s.latency.iter().all(|l| l.endpoint != Endpoint::Metrics));

        let text = s.to_string();
        assert!(text.contains("classify 200: 2"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("1 rate-limited"), "{text}");
    }

    #[test]
    fn endpoint_labels_are_stable() {
        let all = [
            (Endpoint::Classify, "classify"),
            (Endpoint::Health, "health"),
            (Endpoint::Stats, "stats"),
            (Endpoint::Metrics, "metrics"),
            (Endpoint::Trace, "trace"),
            (Endpoint::Other, "other"),
        ];
        for (endpoint, label) in all {
            assert_eq!(endpoint.as_str(), label);
            assert_eq!(endpoint.to_string(), label);
        }
    }
}
