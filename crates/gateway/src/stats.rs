//! Gateway telemetry: connection/request/byte counters and per-endpoint
//! latency histograms, snapshotted as [`GatewayStats`].
//!
//! Like the serving layer, every number lives in a
//! [`snappix_metrics::Registry`] — the gateway registers its
//! `snappix_gateway_*` families into the *same* registry the fronted
//! server records into, so one render produces the whole `/metrics`
//! page. Per-endpoint wire latency is a log-linear histogram (every
//! request since start is counted; percentiles carry bounded relative
//! error and trace-id exemplars), and [`GatewayStats`] is derived from
//! the registry cells, so the struct and the page always agree.

use snappix_metrics::{Counter, Gauge, Histogram, HistogramOpts, Registry};
use snappix_serve::LatencySummary;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The gateway's routable endpoints, used as the `endpoint` label on
/// every request metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Endpoint {
    /// `POST /v1/classify` — binary clip in, prediction out.
    Classify,
    /// `GET /health` — liveness probe.
    Health,
    /// `GET /stats` — human-readable telemetry dump.
    Stats,
    /// `GET /metrics` — Prometheus text exposition.
    Metrics,
    /// `GET /debug/trace` — recent request traces as Chrome trace-event
    /// JSON.
    Trace,
    /// Anything else: unknown paths, wrong methods, unparseable
    /// requests.
    Other,
}

impl Endpoint {
    /// Every routable endpoint, in label order — the latency histogram
    /// for each is registered up front so the `/metrics` page's family
    /// shape does not depend on which endpoints have served traffic.
    pub const ALL: [Endpoint; 6] = [
        Endpoint::Classify,
        Endpoint::Health,
        Endpoint::Stats,
        Endpoint::Metrics,
        Endpoint::Trace,
        Endpoint::Other,
    ];

    /// The `endpoint` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Classify => "classify",
            Endpoint::Health => "health",
            Endpoint::Stats => "stats",
            Endpoint::Metrics => "metrics",
            Endpoint::Trace => "trace",
            Endpoint::Other => "other",
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How many requests one `(endpoint, status)` pair has answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestCount {
    /// Which endpoint answered.
    pub endpoint: Endpoint,
    /// The HTTP status it answered with.
    pub status: u16,
    /// All-time count.
    pub count: u64,
}

/// Latency of one endpoint's answered requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointLatency {
    /// Which endpoint.
    pub endpoint: Endpoint,
    /// All-time percentiles derived from the endpoint's latency
    /// histogram (same semantics as the serving layer's summaries:
    /// exact count/total/max, bounded-error percentiles).
    pub summary: LatencySummary,
    /// All-time total time spent answering (a Prometheus histogram's
    /// `_sum`); equal to `summary.total`, kept for direct access.
    pub total: Duration,
}

/// A point-in-time snapshot of a [`Gateway`](crate::Gateway)'s
/// telemetry, from [`Gateway::stats`](crate::Gateway::stats).
///
/// Request latency here is *wire latency* — from the last header byte
/// parsed to the response flushed — so for classify it wraps the whole
/// serve-side queue + batch + compute round trip plus body decode and
/// response encode.
///
/// With a [disabled](snappix_metrics::Registry::disabled) metrics
/// registry on the fronted server every field is zero; serving
/// behaviour on the wire is bit-for-bit identical either way.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayStats {
    /// TCP connections accepted (all-time).
    pub connections: u64,
    /// Connections currently open.
    pub active_connections: usize,
    /// Connections turned away at the `max_connections` cap.
    pub connections_rejected: u64,
    /// Requests answered, by `(endpoint, status)`, in ascending order.
    pub requests: Vec<RequestCount>,
    /// Classify requests shed by the per-client rate limiter (each also
    /// counts as a `(classify, 429)` request).
    pub rate_limited: u64,
    /// Request bytes read off the wire (heads + bodies).
    pub bytes_read: u64,
    /// Response bytes written to the wire.
    pub bytes_written: u64,
    /// Per-endpoint request latency, ascending by endpoint; endpoints
    /// that have answered nothing are omitted.
    pub latency: Vec<EndpointLatency>,
    /// Time since the gateway started listening.
    pub uptime: Duration,
}

impl GatewayStats {
    /// All requests answered, across endpoints and statuses.
    pub fn requests_total(&self) -> u64 {
        self.requests.iter().map(|r| r.count).sum()
    }

    /// Requests answered by `endpoint` (summed over statuses).
    pub fn requests_to(&self, endpoint: Endpoint) -> u64 {
        self.requests
            .iter()
            .filter(|r| r.endpoint == endpoint)
            .map(|r| r.count)
            .sum()
    }

    /// Requests answered with `status` (summed over endpoints).
    pub fn requests_with_status(&self, status: u16) -> u64 {
        self.requests
            .iter()
            .filter(|r| r.status == status)
            .map(|r| r.count)
            .sum()
    }
}

impl fmt::Display for GatewayStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests over {} connections in {:.2?} ({} active, {} rejected, {} rate-limited)",
            self.requests_total(),
            self.connections,
            self.uptime,
            self.active_connections,
            self.connections_rejected,
            self.rate_limited,
        )?;
        writeln!(
            f,
            "bytes: {} in, {} out",
            self.bytes_read, self.bytes_written
        )?;
        for r in &self.requests {
            writeln!(f, "  {} {}: {}", r.endpoint, r.status, r.count)?;
        }
        for (i, l) in self.latency.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "  {} latency: p50 {:.2?}  p95 {:.2?}  p99 {:.2?}  max {:.2?}",
                l.endpoint, l.summary.p50, l.summary.p95, l.summary.p99, l.summary.max,
            )?;
        }
        Ok(())
    }
}

/// The recorder connection handlers write into: registry handles for
/// every fixed family, plus a cache of `(endpoint, status)` counters
/// (registration is idempotent, but the cache keeps the hot path off
/// the registry lock).
#[derive(Debug)]
pub(crate) struct Recorder {
    started: Instant,
    registry: Registry,
    connections: Counter,
    active_connections: Gauge,
    connections_rejected: Counter,
    rate_limited: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    requests: Mutex<BTreeMap<(Endpoint, u16), Counter>>,
    latency: Vec<(Endpoint, Histogram)>,
    uptime: Gauge,
}

impl Recorder {
    /// Registers the `snappix_gateway_*` families (plus
    /// `snappix_build_info`) on `registry` — typically the fronted
    /// server's, so one page carries both layers.
    pub fn new(registry: Registry) -> Self {
        let connections = registry.counter(
            "snappix_gateway_connections_total",
            "TCP connections accepted by the gateway.",
        );
        let active_connections = registry.gauge(
            "snappix_gateway_connections_active",
            "Connections currently open.",
        );
        let connections_rejected = registry.counter(
            "snappix_gateway_connections_rejected_total",
            "Connections turned away at the max_connections cap.",
        );
        let rate_limited = registry.counter(
            "snappix_gateway_rate_limited_total",
            "Classify requests shed by the per-client token bucket.",
        );
        let bytes_read = registry.counter(
            "snappix_gateway_bytes_read_total",
            "Request bytes read off the wire (heads plus bodies).",
        );
        let bytes_written = registry.counter(
            "snappix_gateway_bytes_written_total",
            "Response bytes written to the wire.",
        );
        let latency = Endpoint::ALL
            .into_iter()
            .map(|endpoint| {
                (
                    endpoint,
                    registry.histogram_with(
                        "snappix_gateway_request_latency_seconds",
                        "Wire latency per endpoint: last header byte parsed to \
                         response flushed.",
                        HistogramOpts::nanos().with_exemplars(),
                        &[("endpoint", endpoint.as_str())],
                    ),
                )
            })
            .collect();
        let uptime = registry.gauge(
            "snappix_gateway_uptime_seconds",
            "Seconds since the gateway started listening.",
        );
        registry
            .gauge_with(
                "snappix_build_info",
                "Build metadata of the serving stack; the value is always 1.",
                &[("version", env!("CARGO_PKG_VERSION"))],
            )
            .set(1.0);
        Recorder {
            started: Instant::now(),
            registry,
            connections,
            active_connections,
            connections_rejected,
            rate_limited,
            bytes_read,
            bytes_written,
            requests: Mutex::new(BTreeMap::new()),
            latency,
            uptime,
        }
    }

    /// The registry the gateway's families live in (shared with the
    /// fronted server).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<(Endpoint, u16), Counter>> {
        self.requests.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn record_connection(&self) {
        self.connections.inc();
        self.active_connections.add(1.0);
    }

    pub fn record_disconnect(&self) {
        self.active_connections.add(-1.0);
    }

    pub fn record_connection_rejected(&self) {
        self.connections_rejected.inc();
    }

    pub fn record_rate_limited(&self) {
        self.rate_limited.inc();
    }

    /// One answered request: who answered, with what status, the bytes
    /// both ways, the wire latency, and the trace id carried on the
    /// response (0 when untraced) — attached to the latency histogram
    /// as an exemplar.
    pub fn record_request(
        &self,
        endpoint: Endpoint,
        status: u16,
        bytes_read: u64,
        bytes_written: u64,
        latency: Duration,
        trace_id: u64,
    ) {
        {
            let mut requests = self.lock();
            requests
                .entry((endpoint, status))
                .or_insert_with(|| {
                    self.registry.counter_with(
                        "snappix_gateway_requests_total",
                        "Requests answered, by endpoint and HTTP status.",
                        &[
                            ("endpoint", endpoint.as_str()),
                            ("status", &status.to_string()),
                        ],
                    )
                })
                .inc();
        }
        self.bytes_read.add(bytes_read);
        self.bytes_written.add(bytes_written);
        if let Some((_, hist)) = self.latency.iter().find(|(e, _)| *e == endpoint) {
            hist.record_with_trace(latency.as_nanos() as u64, trace_id);
        }
    }

    pub fn snapshot(&self) -> GatewayStats {
        let requests: Vec<RequestCount> = self
            .lock()
            .iter()
            .map(|(&(endpoint, status), counter)| RequestCount {
                endpoint,
                status,
                count: counter.get(),
            })
            .collect();
        let latency: Vec<EndpointLatency> = self
            .latency
            .iter()
            .filter_map(|(endpoint, hist)| {
                let snap = hist.snapshot();
                (snap.count > 0).then(|| {
                    let summary = LatencySummary::from_histogram(&snap);
                    EndpointLatency {
                        endpoint: *endpoint,
                        summary,
                        total: summary.total,
                    }
                })
            })
            .collect();
        let mut by_endpoint = latency;
        by_endpoint.sort_by_key(|l| l.endpoint);
        let uptime = self.started.elapsed();
        self.uptime.set(uptime.as_secs_f64());
        GatewayStats {
            connections: self.connections.get(),
            active_connections: self.active_connections.get().max(0.0) as usize,
            connections_rejected: self.connections_rejected.get(),
            requests,
            rate_limited: self.rate_limited.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            latency: by_endpoint,
            uptime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_every_counter() {
        let r = Recorder::new(Registry::new());
        r.record_connection();
        r.record_connection();
        r.record_disconnect();
        r.record_connection_rejected();
        r.record_rate_limited();
        let ms = Duration::from_millis;
        r.record_request(Endpoint::Classify, 200, 4096, 120, ms(3), 0xbeef);
        r.record_request(Endpoint::Classify, 200, 4096, 120, ms(5), 0);
        r.record_request(
            Endpoint::Classify,
            429,
            64,
            40,
            Duration::from_micros(20),
            0,
        );
        r.record_request(Endpoint::Health, 200, 30, 50, Duration::from_micros(10), 0);
        let s = r.snapshot();
        assert_eq!(s.connections, 2);
        assert_eq!(s.active_connections, 1);
        assert_eq!(s.connections_rejected, 1);
        assert_eq!(s.rate_limited, 1);
        assert_eq!(s.bytes_read, 4096 + 4096 + 64 + 30);
        assert_eq!(s.bytes_written, 120 + 120 + 40 + 50);
        assert_eq!(s.requests_total(), 4);
        assert_eq!(s.requests_to(Endpoint::Classify), 3);
        assert_eq!(s.requests_with_status(200), 3);
        assert_eq!(s.requests_with_status(429), 1);
        let classify = s
            .latency
            .iter()
            .find(|l| l.endpoint == Endpoint::Classify)
            .expect("classify latency tracked");
        assert_eq!(classify.summary.samples, 3);
        assert_eq!(classify.summary.max, ms(5));
        assert_eq!(classify.total, ms(8) + Duration::from_micros(20));
        assert_eq!(
            classify.summary.total, classify.total,
            "the summary carries the same all-time total"
        );
        assert!(s.latency.iter().all(|l| l.endpoint != Endpoint::Metrics));

        let text = s.to_string();
        assert!(text.contains("classify 200: 2"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("1 rate-limited"), "{text}");

        // The same numbers render straight off the shared registry,
        // including the trace exemplar on the classify histogram.
        let page = r.registry().render_openmetrics();
        for needle in [
            "snappix_gateway_connections_total 2\n",
            "snappix_gateway_connections_active 1\n",
            "snappix_gateway_requests_total{endpoint=\"classify\",status=\"200\"} 2\n",
            "snappix_gateway_requests_total{endpoint=\"classify\",status=\"429\"} 1\n",
            "snappix_gateway_request_latency_seconds_count{endpoint=\"classify\"} 3\n",
            "snappix_build_info{version=\"",
            "trace_id=\"48879\"", // 0xbeef, on a classify bucket
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
    }

    #[test]
    fn endpoint_labels_are_stable() {
        let all = [
            (Endpoint::Classify, "classify"),
            (Endpoint::Health, "health"),
            (Endpoint::Stats, "stats"),
            (Endpoint::Metrics, "metrics"),
            (Endpoint::Trace, "trace"),
            (Endpoint::Other, "other"),
        ];
        assert_eq!(Endpoint::ALL.len(), all.len());
        for (endpoint, label) in all {
            assert_eq!(endpoint.as_str(), label);
            assert_eq!(endpoint.to_string(), label);
        }
    }

    #[test]
    fn disabled_registry_reads_all_zero() {
        let r = Recorder::new(Registry::disabled());
        r.record_connection();
        r.record_request(Endpoint::Health, 200, 10, 10, Duration::from_micros(5), 0);
        let s = r.snapshot();
        assert_eq!(s.connections, 0);
        assert_eq!(s.requests.len(), 1, "the cache still tracks keys");
        assert_eq!(s.requests_total(), 0, "but the cells record nothing");
        assert!(s.latency.is_empty());
        assert_eq!(r.registry().render(), "");
    }
}
