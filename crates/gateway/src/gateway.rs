//! The front-end itself: a [`TcpListener`] accept loop, one handler
//! thread per connection (bounded by `max_connections`), and a graceful
//! shutdown path that drains the serving layer underneath.

use crate::handler::{handle, AppState, WireTiming};
use crate::http::{read_request, ParseError, Response};
use crate::ratelimit::{Limiter, RateLimit};
use crate::stats::{Endpoint, GatewayStats, Recorder};
use crate::GatewayError;
use snappix_serve::{Server, ServerStats};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Staged construction of a [`Gateway`], created by
/// [`Gateway::builder`].
///
/// # Examples
///
/// ```no_run
/// use snappix_gateway::prelude::*;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), snappix::Error> {
/// let mask = patterns::long_exposure(8, (8, 8))?;
/// let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
/// let server = Server::builder(Pipeline::builder(model))
///     .with_workers(2)
///     .build()?;
///
/// let gateway = Gateway::builder(server)
///     .with_addr("127.0.0.1:8080".parse().expect("socket address"))
///     .with_max_connections(256)
///     .with_rate_limit(RateLimit::new(100.0, 20).map_err(snappix::Error::from)?)
///     .bind()
///     .map_err(snappix::Error::from)?;
/// println!("listening on http://{}", gateway.local_addr());
/// // curl -X POST --data-binary @clip.f32le http://127.0.0.1:8080/v1/classify
/// // curl http://127.0.0.1:8080/metrics
/// let (gateway_stats, server_stats) = gateway.shutdown();
/// println!("{gateway_stats}\n{server_stats}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GatewayBuilder {
    server: Server,
    addr: SocketAddr,
    max_connections: usize,
    rate_limit: Option<RateLimit>,
    read_timeout: Duration,
}

impl GatewayBuilder {
    /// Sets the address to listen on. Defaults to `127.0.0.1:0`
    /// (loopback, OS-assigned port — read it back with
    /// [`Gateway::local_addr`]).
    #[must_use]
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Bounds concurrently open connections (clamped to at least 1);
    /// connections beyond the cap are answered `503` + `Retry-After`
    /// and closed immediately instead of queueing. Defaults to 256.
    #[must_use]
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Applies a per-client (per peer IP) token-bucket [`RateLimit`] to
    /// the classify endpoint. No limit by default.
    #[must_use]
    pub fn with_rate_limit(mut self, limit: RateLimit) -> Self {
        self.rate_limit = Some(limit);
        self
    }

    /// How long a connection may sit idle (or dribble bytes) before the
    /// gateway closes it. Bounds both slow-loris heads and abandoned
    /// keep-alive sessions. Defaults to 5 seconds.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Binds the listener and starts the acceptor thread.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Bind`] when the socket cannot be bound or
    /// configured, [`GatewayError::Config`] for a zero read timeout,
    /// [`GatewayError::Spawn`] when the acceptor thread cannot start.
    pub fn bind(self) -> Result<Gateway, GatewayError> {
        if self.read_timeout.is_zero() {
            return Err(GatewayError::Config {
                context: "read timeout must be non-zero (a zero timeout disables reads)".into(),
            });
        }
        let listener = TcpListener::bind(self.addr).map_err(|e| GatewayError::Bind {
            context: format!("{}: {e}", self.addr),
        })?;
        let local_addr = listener.local_addr().map_err(|e| GatewayError::Bind {
            context: format!("{}: local_addr: {e}", self.addr),
        })?;
        // The gateway's families join the fronted server's registry, so
        // one render covers both layers (and a disabled registry
        // disables both).
        let recorder = Recorder::new(self.server.metrics().clone());
        let state = Arc::new(AppState {
            server: self.server,
            recorder,
            limiter: self.rate_limit.map(Limiter::new),
            shutting_down: AtomicBool::new(false),
        });
        let conns = Arc::new(ConnRegistry::default());
        let acceptor = {
            let state = Arc::clone(&state);
            let conns = Arc::clone(&conns);
            let max_connections = self.max_connections;
            let read_timeout = self.read_timeout;
            std::thread::Builder::new()
                .name("snappix-gateway-accept".into())
                .spawn(move || {
                    run_acceptor(&listener, &state, &conns, max_connections, read_timeout);
                })
                .map_err(|e| GatewayError::Spawn {
                    context: format!("acceptor: {e}"),
                })?
        };
        Ok(Gateway {
            state: Some(state),
            conns,
            acceptor: Some(acceptor),
            local_addr,
            max_connections: self.max_connections,
        })
    }
}

/// A std-only HTTP/1.1 front-end over a [`Server`]: the process
/// boundary that makes the serving stack reachable (classify over TCP)
/// and observable (`/health`, `/stats`, Prometheus `/metrics`) without
/// any client-side Rust.
///
/// Overload never hangs a client: the per-client token bucket answers
/// `429 Too Many Requests`, a full admission queue answers
/// `503 Service Unavailable` (both with `Retry-After`), and a
/// per-request deadline that expires in the queue answers
/// `504 Gateway Timeout` — the HTTP projection of the serving layer's
/// shed/backpressure/deadline machinery.
///
/// Dropping the gateway shuts it down gracefully: the listener stops
/// accepting, open connections are closed, handler threads are joined,
/// and the owned server drains its queue. Prefer
/// [`shutdown`](Gateway::shutdown) to also collect the final telemetry.
#[derive(Debug)]
pub struct Gateway {
    /// `Some` until [`shutdown`](Gateway::shutdown) takes the state to
    /// recover the owned [`Server`].
    state: Option<Arc<AppState>>,
    conns: Arc<ConnRegistry>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
    max_connections: usize,
}

impl Gateway {
    /// Starts building a gateway over `server`; see [`GatewayBuilder`]
    /// for the knobs and their defaults.
    pub fn builder(server: Server) -> GatewayBuilder {
        GatewayBuilder {
            server,
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            max_connections: 256,
            rate_limit: None,
            read_timeout: Duration::from_secs(5),
        }
    }

    fn state(&self) -> &Arc<AppState> {
        self.state.as_ref().expect("state present until shutdown")
    }

    /// The bound address — with the default `127.0.0.1:0`, this is
    /// where the OS actually put the listener.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The concurrent-connection cap.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// The [`Server`] being fronted (for stats or direct in-process
    /// submission alongside the network path).
    pub fn server(&self) -> &Server {
        &self.state().server
    }

    /// A point-in-time snapshot of the gateway's own telemetry.
    pub fn stats(&self) -> GatewayStats {
        self.state().recorder.snapshot()
    }

    /// Shuts down gracefully — stop accepting, close connections, join
    /// handler threads, drain and join the server — and returns both
    /// layers' final telemetry.
    pub fn shutdown(mut self) -> (GatewayStats, ServerStats) {
        self.stop();
        let state = self.state.take().expect("first shutdown");
        let gateway_stats = state.recorder.snapshot();
        let server_stats = match Arc::try_unwrap(state) {
            Ok(app) => app.server.shutdown(),
            // Unreachable after every thread is joined, but a snapshot
            // is strictly better than a panic inside teardown.
            Err(shared) => shared.server.stats(),
        };
        (gateway_stats, server_stats)
    }

    fn stop(&mut self) {
        let Some(state) = &self.state else { return };
        state.shutting_down.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            // The acceptor is parked in accept(); a throwaway connection
            // wakes it so it can observe the flag and exit.
            let _ = TcpStream::connect(self.local_addr);
            let _ = acceptor.join();
        }
        self.conns.close_all();
        self.conns.join_all();
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Live connections (so shutdown can unblock their reads) plus handler
/// thread handles (so shutdown can join them).
#[derive(Debug, Default)]
struct ConnRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    next_id: u64,
    active: HashMap<u64, TcpStream>,
    handles: Vec<JoinHandle<()>>,
}

impl ConnRegistry {
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn active_count(&self) -> usize {
        self.lock().active.len()
    }

    fn register(&self, stream: TcpStream) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.active.insert(id, stream);
        id
    }

    fn attach(&self, handle: JoinHandle<()>) {
        self.lock().handles.push(handle);
    }

    fn deregister(&self, id: u64) {
        self.lock().active.remove(&id);
    }

    fn close_all(&self) {
        for stream in self.lock().active.values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn join_all(&self) {
        // Drain under the lock, join outside it: exiting handlers must
        // be able to deregister themselves while we wait.
        let handles = std::mem::take(&mut self.lock().handles);
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn run_acceptor(
    listener: &TcpListener,
    state: &Arc<AppState>,
    conns: &Arc<ConnRegistry>,
    max_connections: usize,
    read_timeout: Duration,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) if state.shutting_down.load(Ordering::SeqCst) => return,
            Err(_) => continue, // transient (EMFILE, ECONNABORTED): keep serving
        };
        if state.shutting_down.load(Ordering::SeqCst) {
            return; // the shutdown wake-up connection (or a last-instant client)
        }
        if conns.active_count() >= max_connections {
            state.recorder.record_connection_rejected();
            let _ = Response::text(503, "connection limit reached")
                .with_retry_after(1)
                .with_close()
                .write_to(&mut &stream);
            continue;
        }
        state.recorder.record_connection();
        let registered = match stream.try_clone() {
            Ok(clone) => conns.register(clone),
            Err(_) => {
                // Without a registered clone, shutdown could not unblock
                // this connection's reads; refuse it instead.
                state.recorder.record_disconnect();
                continue;
            }
        };
        let spawned = {
            let state = Arc::clone(state);
            let conns = Arc::clone(conns);
            std::thread::Builder::new()
                .name(format!("snappix-gateway-conn-{registered}"))
                .spawn(move || {
                    run_connection(&state, &stream, peer, read_timeout);
                    conns.deregister(registered);
                    state.recorder.record_disconnect();
                })
        };
        match spawned {
            Ok(handle) => conns.attach(handle),
            Err(_) => {
                conns.deregister(registered);
                state.recorder.record_disconnect();
            }
        }
    }
}

/// One keep-alive session: parse, route, respond, repeat until the peer
/// closes, errors, asks to close, or sends something unrecoverable.
fn run_connection(state: &AppState, stream: &TcpStream, peer: SocketAddr, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let max_body = state.clip_bytes();
    let tracer = state.server.tracer().clone();
    // Consumed by the first request's `accept` span; later requests on
    // the same keep-alive connection have no accept phase.
    let mut accepted_us = tracer.is_enabled().then(|| tracer.now_us());
    loop {
        let parse_start_us = tracer.now_us();
        match read_request(&mut reader, max_body) {
            Ok(request) => {
                let wire = WireTiming {
                    accepted_us: accepted_us.take(),
                    parse_start_us,
                    parse_end_us: tracer.now_us(),
                };
                let started = Instant::now();
                let (endpoint, mut response) = handle(state, &request, peer.ip(), wire);
                if !request.keep_alive {
                    response.close = true;
                }
                let respond_start_us = tracer.now_us();
                let Ok(written) = response.write_to(&mut writer) else {
                    return;
                };
                if let Some(trace) = response.trace {
                    // The response is on the wire; close the trace with
                    // a `respond` span under the request span.
                    tracer.record_span(
                        "respond",
                        trace.trace_id,
                        trace.span_id,
                        respond_start_us,
                        tracer.now_us(),
                        Vec::new(),
                    );
                }
                state.recorder.record_request(
                    endpoint,
                    response.status,
                    request.bytes_read as u64,
                    written as u64,
                    started.elapsed(),
                    response.trace.map_or(0, |t| t.trace_id),
                );
                if response.close {
                    return;
                }
            }
            Err(ParseError::Closed) | Err(ParseError::Io(_)) => return,
            Err(ParseError::Malformed { status, reason }) => {
                // Framing may be unrecoverable mid-stream; answer and close.
                let started = Instant::now();
                if let Ok(written) = Response::text(status, reason)
                    .with_close()
                    .write_to(&mut writer)
                {
                    state.recorder.record_request(
                        Endpoint::Other,
                        status,
                        0,
                        written as u64,
                        started.elapsed(),
                        0,
                    );
                }
                return;
            }
        }
    }
}
