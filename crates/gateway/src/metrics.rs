//! `/metrics` content negotiation over the shared registry.
//!
//! The page itself is rendered generically by
//! [`snappix_metrics::Registry`] — the gateway and the fronted server
//! register their families into one registry, so the hand-rolled
//! per-family writer this module used to hold is gone. What remains is
//! the HTTP-facing part: which exposition format a scraper asked for,
//! and the content types the two formats are served under. Every family
//! on the page is documented in `docs/METRICS.md`; a test in
//! `tests/gateway.rs` diffs that table against a live scrape in both
//! directions, so the reference cannot silently rot.

/// The content type of the classic Prometheus text format — the
/// default, and what plain `curl` gets.
pub const TEXT_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The OpenMetrics content type, served when the scraper's `Accept`
/// header asks for it. OpenMetrics pages carry exemplars (trace ids on
/// latency buckets) and end with the mandatory `# EOF` trailer.
pub const OPENMETRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// The media type scrapers put in `Accept` to request OpenMetrics.
pub const OPENMETRICS_MEDIA_TYPE: &str = "application/openmetrics-text";

/// Whether an `Accept` header value asks for OpenMetrics.
///
/// Prometheus sends a list like
/// `application/openmetrics-text;version=1.0.0;q=0.75,text/plain;q=0.5`;
/// any entry naming the OpenMetrics media type (with or without
/// parameters) selects it. No `Accept`, or one without the media type,
/// keeps the classic text format — the conservative default.
pub fn wants_openmetrics(accept: Option<&str>) -> bool {
    let Some(accept) = accept else { return false };
    accept.split(',').any(|entry| {
        entry
            .split(';')
            .next()
            .is_some_and(|media| media.trim().eq_ignore_ascii_case(OPENMETRICS_MEDIA_TYPE))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiates_openmetrics_only_when_asked() {
        assert!(!wants_openmetrics(None));
        assert!(!wants_openmetrics(Some("*/*")));
        assert!(!wants_openmetrics(Some("text/plain; version=0.0.4")));
        assert!(wants_openmetrics(Some("application/openmetrics-text")));
        assert!(wants_openmetrics(Some("Application/OpenMetrics-Text")));
        assert!(wants_openmetrics(Some(
            "application/openmetrics-text; version=1.0.0; charset=utf-8"
        )));
        assert!(wants_openmetrics(Some(
            "application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5"
        )));
        assert!(!wants_openmetrics(Some(
            "application/openmetrics-json, text/html"
        )));
    }
}
