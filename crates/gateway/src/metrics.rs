//! Prometheus text-exposition rendering for the `/metrics` endpoint.
//!
//! Std-only: the exposition format is line-oriented text
//! (`name{label="value"} number`), so no client library is needed.
//! Every metric family rendered here gets `# HELP` and `# TYPE` lines,
//! and every family is documented in `docs/METRICS.md` — a test in
//! `tests/gateway.rs` diffs that table against a live scrape in both
//! directions, so the reference cannot silently rot.

use crate::stats::GatewayStats;
use snappix_serve::{LatencySummary, ServerStats};
use std::fmt::Write as _;
use std::time::Duration;

/// Renders one Prometheus text-format page from a pair of snapshots:
/// the serving layer's [`ServerStats`] (as `snappix_server_*`) and the
/// front-end's [`GatewayStats`] (as `snappix_gateway_*`).
///
/// Also available to operators embedding the serving stack without a
/// gateway: take a [`Server::stats`](snappix_serve::Server::stats)
/// snapshot and push the rendered page wherever it is needed.
pub fn render(server: &ServerStats, gateway: &GatewayStats) -> String {
    let mut out = String::with_capacity(4096);
    render_gateway(&mut out, gateway);
    render_server(&mut out, server);
    out
}

fn render_gateway(out: &mut String, g: &GatewayStats) {
    family(
        out,
        "snappix_gateway_connections_total",
        "counter",
        "TCP connections accepted by the gateway.",
    );
    sample(out, "snappix_gateway_connections_total", &[], g.connections);

    family(
        out,
        "snappix_gateway_connections_active",
        "gauge",
        "Connections currently open.",
    );
    sample(
        out,
        "snappix_gateway_connections_active",
        &[],
        g.active_connections as u64,
    );

    family(
        out,
        "snappix_gateway_connections_rejected_total",
        "counter",
        "Connections turned away at the max_connections cap.",
    );
    sample(
        out,
        "snappix_gateway_connections_rejected_total",
        &[],
        g.connections_rejected,
    );

    family(
        out,
        "snappix_gateway_requests_total",
        "counter",
        "Requests answered, by endpoint and HTTP status.",
    );
    for r in &g.requests {
        let status = r.status.to_string();
        sample(
            out,
            "snappix_gateway_requests_total",
            &[("endpoint", r.endpoint.as_str()), ("status", &status)],
            r.count,
        );
    }

    family(
        out,
        "snappix_gateway_rate_limited_total",
        "counter",
        "Classify requests shed by the per-client token bucket.",
    );
    sample(
        out,
        "snappix_gateway_rate_limited_total",
        &[],
        g.rate_limited,
    );

    family(
        out,
        "snappix_gateway_bytes_read_total",
        "counter",
        "Request bytes read off the wire (heads plus bodies).",
    );
    sample(out, "snappix_gateway_bytes_read_total", &[], g.bytes_read);

    family(
        out,
        "snappix_gateway_bytes_written_total",
        "counter",
        "Response bytes written to the wire.",
    );
    sample(
        out,
        "snappix_gateway_bytes_written_total",
        &[],
        g.bytes_written,
    );

    family(
        out,
        "snappix_gateway_request_latency_seconds",
        "summary",
        "Wire latency per endpoint: last header byte parsed to response flushed.",
    );
    for l in &g.latency {
        let labels = [("endpoint", l.endpoint.as_str())];
        quantile_samples(
            out,
            "snappix_gateway_request_latency_seconds",
            &labels,
            &l.summary,
        );
        float_sample(
            out,
            "snappix_gateway_request_latency_seconds_sum",
            &labels,
            l.total.as_secs_f64(),
        );
        sample(
            out,
            "snappix_gateway_request_latency_seconds_count",
            &labels,
            l.summary.samples,
        );
    }

    family(
        out,
        "snappix_gateway_uptime_seconds",
        "gauge",
        "Seconds since the gateway started listening.",
    );
    float_sample(
        out,
        "snappix_gateway_uptime_seconds",
        &[],
        g.uptime.as_secs_f64(),
    );
}

fn render_server(out: &mut String, s: &ServerStats) {
    let counters: [(&str, &str, u64); 5] = [
        (
            "snappix_server_requests_submitted_total",
            "Requests admitted into the serving queue.",
            s.submitted,
        ),
        (
            "snappix_server_requests_completed_total",
            "Admitted requests answered with a prediction.",
            s.completed,
        ),
        (
            "snappix_server_requests_rejected_total",
            "Submissions shed with Overloaded (never admitted).",
            s.rejected,
        ),
        (
            "snappix_server_requests_expired_total",
            "Admitted requests expired at their deadline instead of being run.",
            s.expired,
        ),
        (
            "snappix_server_requests_failed_total",
            "Admitted requests that rode in a batch whose inference failed.",
            s.failed,
        ),
    ];
    for (name, help, value) in counters {
        family(out, name, "counter", help);
        sample(out, name, &[], value);
    }

    family(
        out,
        "snappix_server_requests_in_flight",
        "gauge",
        "Admitted requests not yet resolved (queued or mid-batch).",
    );
    sample(out, "snappix_server_requests_in_flight", &[], s.in_flight());

    family(
        out,
        "snappix_server_queue_depth",
        "gauge",
        "Requests sitting in the admission queue right now.",
    );
    sample(out, "snappix_server_queue_depth", &[], s.queue_depth as u64);

    family(
        out,
        "snappix_server_resident_weight_bytes",
        "gauge",
        "Bytes of model weights resident across all worker replicas (shared storage counted once).",
    );
    sample(
        out,
        "snappix_server_resident_weight_bytes",
        &[],
        s.resident_weight_bytes,
    );

    family(
        out,
        "snappix_server_batches_total",
        "counter",
        "Batched forward passes executed.",
    );
    sample(out, "snappix_server_batches_total", &[], s.batches);

    family(
        out,
        "snappix_server_batch_size",
        "histogram",
        "Executed batch sizes (clips per forward pass).",
    );
    let mut cumulative = 0u64;
    for (size, &count) in s.batch_sizes.iter().enumerate().skip(1) {
        cumulative += count;
        let le = size.to_string();
        sample(
            out,
            "snappix_server_batch_size_bucket",
            &[("le", &le)],
            cumulative,
        );
    }
    sample(
        out,
        "snappix_server_batch_size_bucket",
        &[("le", "+Inf")],
        s.batches,
    );
    sample(out, "snappix_server_batch_size_sum", &[], s.clips_batched());
    sample(out, "snappix_server_batch_size_count", &[], s.batches);

    family(
        out,
        "snappix_server_queue_latency_seconds",
        "summary",
        "Time requests spent queued before their batch was claimed.",
    );
    quantile_samples(
        out,
        "snappix_server_queue_latency_seconds",
        &[],
        &s.queue_latency,
    );
    float_sample(
        out,
        "snappix_server_queue_latency_seconds_sum",
        &[],
        s.queue_latency.total.as_secs_f64(),
    );
    sample(
        out,
        "snappix_server_queue_latency_seconds_count",
        &[],
        s.queue_latency.samples,
    );

    family(
        out,
        "snappix_server_compute_latency_seconds",
        "summary",
        "Time batches spent in the pipeline forward pass.",
    );
    quantile_samples(
        out,
        "snappix_server_compute_latency_seconds",
        &[],
        &s.compute_latency,
    );
    float_sample(
        out,
        "snappix_server_compute_latency_seconds_sum",
        &[],
        s.compute_latency.total.as_secs_f64(),
    );
    sample(
        out,
        "snappix_server_compute_latency_seconds_count",
        &[],
        s.compute_latency.samples,
    );

    family(
        out,
        "snappix_server_stage_latency_seconds",
        "summary",
        "Forward-pass wall time by pipeline stage, aggregated across worker replicas.",
    );
    for (stage, p) in [
        ("sense", s.profile.sense),
        ("forward", s.profile.forward),
        ("readout", s.profile.readout),
    ] {
        let labels = [("stage", stage)];
        float_sample(
            out,
            "snappix_server_stage_latency_seconds_sum",
            &labels,
            p.total.as_secs_f64(),
        );
        sample(
            out,
            "snappix_server_stage_latency_seconds_count",
            &labels,
            p.calls,
        );
    }

    family(
        out,
        "snappix_server_uptime_seconds",
        "gauge",
        "Seconds since the server started.",
    );
    float_sample(
        out,
        "snappix_server_uptime_seconds",
        &[],
        s.uptime.as_secs_f64(),
    );
}

/// `# HELP` + `# TYPE` header for one metric family.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// One integer-valued sample line.
fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    let _ = writeln!(out, "{}{} {value}", name, label_set(labels));
}

/// One float-valued sample line. Rust's shortest-round-trip float
/// formatting keeps the value exact for any scraper that parses f64.
fn float_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    let _ = writeln!(out, "{}{} {value}", name, label_set(labels));
}

/// The `(quantile, value)` lines of a latency summary, in seconds.
fn quantile_samples(out: &mut String, name: &str, labels: &[(&str, &str)], s: &LatencySummary) {
    for (quantile, value) in s.quantiles() {
        let q = quantile.to_string();
        let mut with_q: Vec<(&str, &str)> = labels.to_vec();
        with_q.push(("quantile", &q));
        float_sample(out, name, &with_q, as_seconds(value));
    }
}

fn as_seconds(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// `{a="x",b="y"}`, or the empty string for an unlabelled sample. Label
/// values here are endpoint names, statuses, and numbers — none contain
/// the `"`, `\` or newline characters the format would need escaped.
fn label_set(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(name, value)| format!("{name}=\"{value}\""))
        .collect();
    format!("{{{}}}", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Recorder;
    use crate::Endpoint;

    fn server_stats() -> ServerStats {
        let profile = snappix::PipelineProfile {
            sense: snappix::StageProfile {
                calls: 3,
                total: Duration::from_millis(6),
                max: Duration::from_millis(3),
            },
            forward: snappix::StageProfile {
                calls: 3,
                total: Duration::from_millis(30),
                max: Duration::from_millis(12),
            },
            readout: snappix::StageProfile {
                calls: 3,
                total: Duration::from_millis(3),
                max: Duration::from_millis(1),
            },
            batches: 3,
            clips: 7,
        };
        ServerStats {
            submitted: 10,
            completed: 7,
            rejected: 2,
            expired: 1,
            failed: 0,
            batches: 3,
            batch_sizes: vec![0, 1, 0, 2], // 1 single + 2 triples = 7 clips
            queue_depth: 1,
            resident_weight_bytes: 65536,
            uptime: Duration::from_secs(5),
            queue_latency: LatencySummary::from_samples(&[
                Duration::from_millis(1),
                Duration::from_millis(2),
            ]),
            compute_latency: LatencySummary::from_samples(&[Duration::from_millis(4)]),
            profile,
        }
    }

    fn gateway_stats() -> GatewayStats {
        let r = Recorder::new();
        r.record_connection();
        r.record_request(Endpoint::Classify, 200, 4096, 128, Duration::from_millis(2));
        r.record_request(Endpoint::Classify, 503, 4096, 64, Duration::from_micros(90));
        r.record_rate_limited();
        r.snapshot()
    }

    #[test]
    fn renders_declared_families_with_samples() {
        let page = render(&server_stats(), &gateway_stats());
        for needle in [
            "# TYPE snappix_gateway_connections_total counter\nsnappix_gateway_connections_total 1\n",
            "snappix_gateway_requests_total{endpoint=\"classify\",status=\"200\"} 1\n",
            "snappix_gateway_requests_total{endpoint=\"classify\",status=\"503\"} 1\n",
            "snappix_gateway_rate_limited_total 1\n",
            "snappix_gateway_request_latency_seconds{endpoint=\"classify\",quantile=\"0.5\"}",
            "snappix_gateway_request_latency_seconds_count{endpoint=\"classify\"} 2\n",
            "snappix_server_requests_submitted_total 10\n",
            "snappix_server_requests_in_flight 2\n",
            "snappix_server_resident_weight_bytes 65536\n",
            "snappix_server_batch_size_bucket{le=\"1\"} 1\n",
            "snappix_server_batch_size_bucket{le=\"3\"} 3\n",
            "snappix_server_batch_size_bucket{le=\"+Inf\"} 3\n",
            "snappix_server_batch_size_sum 7\n",
            "snappix_server_batch_size_count 3\n",
            "snappix_server_queue_latency_seconds{quantile=\"0.99\"} 0.002\n",
            "snappix_server_queue_latency_seconds_sum 0.003\n",
            "snappix_server_compute_latency_seconds_sum 0.004\n",
            "snappix_server_compute_latency_seconds_count 1\n",
            "snappix_server_stage_latency_seconds_sum{stage=\"sense\"} 0.006\n",
            "snappix_server_stage_latency_seconds_sum{stage=\"forward\"} 0.03\n",
            "snappix_server_stage_latency_seconds_count{stage=\"readout\"} 3\n",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
    }

    #[test]
    fn every_sample_line_belongs_to_a_declared_family() {
        let page = render(&server_stats(), &gateway_stats());
        let mut families = Vec::new();
        for line in page.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                families.push(rest.split(' ').next().expect("name").to_string());
            }
        }
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            let name = line
                .split(['{', ' '])
                .next()
                .expect("sample lines start with a metric name");
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|base| families.contains(&(*base).to_string()))
                .unwrap_or(name);
            assert!(
                families.contains(&base.to_string()),
                "sample {name} has no # TYPE declaration"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let page = render(&server_stats(), &gateway_stats());
        let bucket = |le: &str| -> u64 {
            let needle = format!("snappix_server_batch_size_bucket{{le=\"{le}\"}} ");
            page.lines()
                .find_map(|l| l.strip_prefix(&needle))
                .unwrap_or_else(|| panic!("bucket {le} missing"))
                .parse()
                .expect("integer")
        };
        assert!(bucket("1") <= bucket("2"));
        assert!(bucket("2") <= bucket("3"));
        assert_eq!(bucket("+Inf"), 3);
    }
}
