//! Per-client token-bucket rate limiting for the classify endpoint.
//!
//! Admission control happens in two layers: this bucket sheds clients
//! that are individually too chatty (`429 Too Many Requests` with a
//! `Retry-After` telling them when their next token lands), and the
//! serving layer's bounded queue sheds *aggregate* overload
//! (`503 Service Unavailable`). Both map to explicit backoff on the
//! wire instead of queueing without bound.

use crate::GatewayError;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A per-client token-bucket policy: sustained `rate` requests per
/// second with bursts of up to `burst` back-to-back requests.
///
/// Clients are keyed by peer IP address. Each client's bucket starts
/// full (a fresh client can always burst), refills continuously at
/// `rate` tokens per second, and caps at `burst` tokens; one classify
/// request spends one token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained tokens (requests) per second per client.
    pub rate: f64,
    /// Bucket capacity: the largest burst a client can spend at once.
    pub burst: u32,
}

impl RateLimit {
    /// A policy of `rate` requests per second with a burst of `burst`.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Config`] unless `rate` is finite and positive
    /// and `burst` is at least 1 — a zero-token bucket would shed every
    /// request, which is a misconfiguration, not a policy.
    pub fn new(rate: f64, burst: u32) -> Result<Self, GatewayError> {
        if !rate.is_finite() || rate <= 0.0 || burst == 0 {
            return Err(GatewayError::Config {
                context: format!(
                    "rate limit must be finite, positive, and allow a burst of at least 1 \
                     (got {rate} rps, burst {burst})"
                ),
            });
        }
        Ok(RateLimit { rate, burst })
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// The shared limiter: one bucket per client IP, behind one lock (the
/// critical section is a few float operations — negligible next to the
/// forward pass each admitted request buys).
#[derive(Debug)]
pub(crate) struct Limiter {
    policy: RateLimit,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl Limiter {
    pub fn new(policy: RateLimit) -> Self {
        Limiter {
            policy,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spends one token from `client`'s bucket at time `now`.
    ///
    /// `Err(wait)` means the bucket is empty; `wait` is how long until
    /// the next token lands (the `Retry-After` payload).
    pub fn admit(&self, client: IpAddr, now: Instant) -> Result<(), Duration> {
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = buckets.entry(client).or_insert(Bucket {
            tokens: f64::from(self.policy.burst),
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * self.policy.rate).min(f64::from(self.policy.burst));
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64(
                (1.0 - bucket.tokens) / self.policy.rate,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn rejects_degenerate_policies() {
        assert!(RateLimit::new(0.0, 4).is_err());
        assert!(RateLimit::new(-1.0, 4).is_err());
        assert!(RateLimit::new(f64::NAN, 4).is_err());
        assert!(RateLimit::new(f64::INFINITY, 4).is_err());
        assert!(RateLimit::new(10.0, 0).is_err());
        assert!(RateLimit::new(10.0, 1).is_ok());
    }

    #[test]
    fn bursts_then_refills_at_the_sustained_rate() {
        let limiter = Limiter::new(RateLimit::new(10.0, 3).expect("valid"));
        let t0 = Instant::now();
        // A fresh client gets its full burst...
        for _ in 0..3 {
            assert_eq!(limiter.admit(ip(1), t0), Ok(()));
        }
        // ...then is told to wait one token-interval (100 ms at 10 rps).
        let wait = limiter.admit(ip(1), t0).expect_err("bucket empty");
        assert!(
            (wait.as_secs_f64() - 0.1).abs() < 1e-6,
            "expected ~100 ms, got {wait:?}"
        );
        // Half a token refilled after 50 ms: still shed, shorter wait.
        let wait = limiter
            .admit(ip(1), t0 + Duration::from_millis(50))
            .expect_err("only half a token");
        assert!((wait.as_secs_f64() - 0.05).abs() < 1e-6, "got {wait:?}");
        // After a full interval the request is admitted again.
        assert_eq!(
            limiter.admit(ip(1), t0 + Duration::from_millis(150)),
            Ok(())
        );
    }

    #[test]
    fn clients_have_independent_buckets_and_refill_caps_at_burst() {
        let limiter = Limiter::new(RateLimit::new(1.0, 2).expect("valid"));
        let t0 = Instant::now();
        assert_eq!(limiter.admit(ip(1), t0), Ok(()));
        assert_eq!(limiter.admit(ip(1), t0), Ok(()));
        assert!(limiter.admit(ip(1), t0).is_err(), "client 1 exhausted");
        assert_eq!(limiter.admit(ip(2), t0), Ok(()), "client 2 unaffected");
        // An hour idle refills to the burst cap, not to 3600 tokens.
        let later = t0 + Duration::from_secs(3600);
        assert_eq!(limiter.admit(ip(1), later), Ok(()));
        assert_eq!(limiter.admit(ip(1), later), Ok(()));
        assert!(limiter.admit(ip(1), later).is_err(), "capped at burst 2");
    }
}
