//! `snappix-gateway`: a std-only HTTP/1.1 network front-end over the
//! SnapPix serving layer ([`snappix_serve::Server`]).
//!
//! Everything below this crate is in-process: the serving layer batches
//! and the streaming layer windows, but a client still has to be Rust
//! code linking the workspace. A deployed inference node needs a wire —
//! and an operator needs to see what the node is doing without writing
//! Rust. This crate is both, with no dependencies beyond `std`
//! (mirroring the workspace's vendored-only policy — the HTTP subset,
//! the metrics exposition, and the rate limiter are all small enough to
//! own):
//!
//! * **`POST /v1/classify`** — the clip goes on the wire as its raw
//!   little-endian `f32` samples (`Content-Length`-framed, exactly
//!   `t*h*w*4` bytes), the prediction comes back as JSON
//!   (`{"label":...,"logits":[...]}`) with shortest-round-trip float
//!   formatting, so the numbers parse back bit-for-bit.
//! * **Admission in layers** — an optional per-client token bucket
//!   ([`RateLimit`]) answers `429` with `Retry-After`; the serving
//!   layer's bounded queue ([`Server::try_submit`]) answers `503` with
//!   `Retry-After` when it sheds; an `X-Snappix-Deadline-Ms` header
//!   rides [`Server::try_submit_within`] so stale work expires in the
//!   queue and answers `504`. A saturated node never hangs a client.
//! * **Observability** — `GET /health` (liveness), `GET /stats` (the
//!   human-readable [`ServerStats`]/[`GatewayStats`] dump, conservation
//!   checked by [`ServerStats::debug_assert_conserved`]) and
//!   `GET /metrics`: both layers register into one shared
//!   [`snappix_metrics::Registry`] (the gateway joins
//!   [`Server::metrics`] at bind time), so the page is rendered
//!   generically from the registry — counters, gauges, and mergeable
//!   log-linear latency *histograms* covering every request since
//!   start. An `Accept: application/openmetrics-text` header selects
//!   the OpenMetrics rendering, with trace-id exemplars on latency
//!   buckets and the `# EOF` trailer; see `docs/METRICS.md` for the
//!   full reference, kept honest by a live-scrape diff test.
//! * **Tracing** — when the fronted server carries a
//!   [`Tracer`](snappix_trace::Tracer), every classify request is
//!   traced end to end (`accept`/`parse` → `queue_wait` → `batch` →
//!   `compute` → `respond`), an optional `X-Snappix-Trace` request
//!   header lets callers pick the trace id (echoed back either way),
//!   and `GET /debug/trace` serves the most recent traces as Chrome
//!   trace-event JSON — see `docs/TRACING.md`.
//!
//! The protocol subset is deliberately small: HTTP/1.1 keep-alive,
//! `Content-Length` framing only, bounded head/body sizes, no TLS, no
//! HTTP/2 — a front-end for trusted edges and load balancers, not the
//! open internet.
//!
//! # Quickstart
//!
//! ```no_run
//! use snappix_gateway::prelude::*;
//!
//! # fn main() -> Result<(), snappix::Error> {
//! let mask = patterns::long_exposure(8, (8, 8))?;
//! let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
//! let server = Server::builder(Pipeline::builder(model))
//!     .with_workers(2)
//!     .build()?;
//!
//! let gateway = Gateway::builder(server)
//!     .with_rate_limit(RateLimit::new(50.0, 10).map_err(snappix::Error::from)?)
//!     .bind()
//!     .map_err(snappix::Error::from)?;
//! println!("POST clips to http://{}/v1/classify", gateway.local_addr());
//! println!("scrape     http://{}/metrics", gateway.local_addr());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gateway;
mod handler;
mod http;
pub mod metrics;
mod ratelimit;
mod stats;

pub use error::GatewayError;
pub use gateway::{Gateway, GatewayBuilder};
pub use ratelimit::RateLimit;
pub use stats::{Endpoint, EndpointLatency, GatewayStats, RequestCount};

// Re-exported so gateway callers can name the serving types the docs
// reference without importing snappix-serve themselves.
pub use snappix_serve::{Server, ServerStats};

/// One-stop imports for gateway callers: everything from
/// [`snappix_serve::prelude`] (which includes [`snappix::prelude`])
/// plus the gateway layer's types.
pub mod prelude {
    pub use crate::{
        Endpoint, EndpointLatency, Gateway, GatewayBuilder, GatewayError, GatewayStats, RateLimit,
        RequestCount,
    };
    pub use snappix_serve::prelude::*;
}
