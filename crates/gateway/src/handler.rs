//! Endpoint routing: one parsed [`Request`](crate::http::Request) in,
//! one [`Response`](crate::http::Response) out, with every admission
//! failure mapped to an explicit HTTP status instead of a hang.

use crate::http::{Request, Response};
use crate::ratelimit::Limiter;
use crate::stats::{Endpoint, Recorder};
use snappix_serve::{ServeError, Server};
use snappix_tensor::Tensor;
use snappix_trace::SpanCtx;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::net::IpAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Optional per-request deadline on classify, in integer milliseconds.
/// A request still queued this long after admission is expired by the
/// serving layer and answered `504` instead of served late.
pub(crate) const DEADLINE_HEADER: &str = "x-snappix-deadline-ms";

/// Optional caller-chosen trace id on classify (a nonzero integer). The
/// gateway adopts it instead of minting one, records the request's
/// spans under it, and echoes it back on the response — so a caller can
/// correlate its own logs with the gateway's `/debug/trace` output.
pub(crate) const TRACE_HEADER: &str = "x-snappix-trace";

/// How many of the most recent request traces `GET /debug/trace`
/// serves; older traces (and eventually the rings themselves) rotate
/// out, keeping the page bounded.
const DEBUG_TRACE_LIMIT: usize = 64;

/// Tracer timestamps the connection loop measured before routing: when
/// the connection was accepted (first request only) and the interval
/// spent reading + framing the request off the wire. Classify turns
/// these into `accept`/`parse` spans under its request span.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WireTiming {
    /// When the connection was accepted — `Some` only for the first
    /// request of a connection.
    pub accepted_us: Option<u64>,
    /// When the request's first read began.
    pub parse_start_us: u64,
    /// When the request was fully parsed.
    pub parse_end_us: u64,
}

/// Everything a connection handler needs to answer requests, shared
/// across all connection threads behind one `Arc`.
#[derive(Debug)]
pub(crate) struct AppState {
    pub server: Server,
    pub recorder: Recorder,
    pub limiter: Option<Limiter>,
    pub shutting_down: AtomicBool,
}

impl AppState {
    /// The exact classify body size: `t * h * w` little-endian `f32`s.
    pub fn clip_bytes(&self) -> usize {
        self.server.expected_clip().iter().product::<usize>() * 4
    }
}

/// Routes one request. The returned endpoint tags the request in the
/// gateway's telemetry (including 404/405s, under [`Endpoint::Other`]).
pub(crate) fn handle(
    state: &AppState,
    request: &Request,
    peer: IpAddr,
    wire: WireTiming,
) -> (Endpoint, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/classify") => (Endpoint::Classify, classify(state, request, peer, wire)),
        ("GET", "/health") => (Endpoint::Health, health(state)),
        ("GET", "/stats") => (Endpoint::Stats, stats(state)),
        ("GET", "/metrics") => (Endpoint::Metrics, metrics(state, request)),
        ("GET", "/debug/trace") => (Endpoint::Trace, trace(state)),
        (_, "/v1/classify" | "/health" | "/stats" | "/metrics" | "/debug/trace") => (
            Endpoint::Other,
            Response::text(405, format!("method {} not allowed here", request.method)),
        ),
        (_, path) => (
            Endpoint::Other,
            Response::text(404, format!("no route for {path}")),
        ),
    }
}

/// `POST /v1/classify`: the tracing shell around [`classify_inner`] —
/// adopt or mint the request's trace id, open the `request` span (so
/// the serving layer's admission inherits it), turn the connection
/// loop's wire timing into `accept`/`parse` child spans, and echo the
/// id on the response.
fn classify(state: &AppState, request: &Request, peer: IpAddr, wire: WireTiming) -> Response {
    let tracer = state.server.tracer();
    let trace_id = match request.header(TRACE_HEADER) {
        None => tracer.new_trace_id(),
        Some(v) => match v.parse::<u64>() {
            Ok(id) if id != 0 => id,
            _ => {
                return Response::text(
                    400,
                    format!("{TRACE_HEADER} must be a nonzero integer trace id"),
                );
            }
        },
    };
    let mut span = tracer.span_in(
        "request",
        SpanCtx {
            trace_id,
            span_id: 0,
        },
    );
    span.arg("endpoint", "classify");
    let ctx = span.ctx();
    if tracer.is_enabled() {
        if let Some(accepted_us) = wire.accepted_us {
            tracer.record_span(
                "accept",
                trace_id,
                ctx.span_id,
                accepted_us,
                wire.parse_start_us,
                Vec::new(),
            );
        }
        tracer.record_span(
            "parse",
            trace_id,
            ctx.span_id,
            wire.parse_start_us,
            wire.parse_end_us,
            Vec::new(),
        );
    }
    let response = classify_inner(state, request, peer);
    drop(span);
    if trace_id != 0 {
        // Echo even when tracing is off but the client sent an id:
        // propagation is free and keeps multi-hop correlation working.
        response.with_trace(SpanCtx {
            trace_id,
            span_id: ctx.span_id,
        })
    } else {
        response
    }
}

/// The classify admission ladder — shutdown check, per-client
/// token bucket (429), body decode (400), then the serving layer's
/// bounded queue (503 on shed) and optional deadline (504 on expiry).
fn classify_inner(state: &AppState, request: &Request, peer: IpAddr) -> Response {
    if state.shutting_down.load(Ordering::SeqCst) {
        return Response::text(503, "gateway is shutting down")
            .with_retry_after(1)
            .with_close();
    }
    if let Some(limiter) = &state.limiter {
        if let Err(wait) = limiter.admit(peer, Instant::now()) {
            state.recorder.record_rate_limited();
            let seconds = (wait.as_secs_f64().ceil() as u64).max(1);
            return Response::text(429, "rate limit exceeded: slow down").with_retry_after(seconds);
        }
    }

    let expected = state.clip_bytes();
    if request.body.len() != expected {
        let [t, h, w] = state.server.expected_clip();
        return Response::text(
            400,
            format!(
                "classify body must be exactly {expected} bytes \
                 ({t}x{h}x{w} little-endian f32s), got {}",
                request.body.len()
            ),
        );
    }
    let samples: Vec<f32> = request
        .body
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    let clip = match Tensor::from_vec(samples, &state.server.expected_clip()) {
        Ok(clip) => clip,
        Err(e) => return Response::text(400, format!("clip rejected: {e}")),
    };

    let deadline = match request.header(DEADLINE_HEADER).map(str::parse::<u64>) {
        None => None,
        Some(Ok(ms)) => Some(Duration::from_millis(ms)),
        Some(Err(_)) => {
            return Response::text(
                400,
                format!("{DEADLINE_HEADER} must be an integer millisecond count"),
            );
        }
    };
    // Always the non-blocking admission path: a full queue becomes an
    // immediate 503 + Retry-After on the wire (the client's connection
    // is the wrong place to park backpressure), feeding the serving
    // layer's existing shed machinery.
    let submitted = match deadline {
        Some(d) => state.server.try_submit_within(&clip, d),
        None => state.server.try_submit(&clip),
    };
    let ticket = match submitted {
        Ok(ticket) => ticket,
        Err(ServeError::Overloaded { capacity }) => {
            return Response::text(
                503,
                format!("server overloaded: admission queue at capacity {capacity}"),
            )
            .with_retry_after(1);
        }
        Err(ServeError::ShuttingDown) => {
            return Response::text(503, "server is shutting down")
                .with_retry_after(1)
                .with_close();
        }
        Err(e) => return Response::text(400, format!("submission rejected: {e}")),
    };
    // Poll rather than park: a request riding a half-open batch can be
    // outlived by a gateway shutdown (the worker holds the batch open
    // for stragglers), and shutdown joins this thread — an unbounded
    // wait here would deadlock the teardown. The poll returns the
    // moment the answer lands; the interval is only how often an
    // in-flight request notices the shutdown flag.
    let answer = loop {
        match ticket.wait_timeout(Duration::from_millis(50)) {
            Ok(Some(prediction)) => break Ok(prediction),
            Ok(None) => {
                if state.shutting_down.load(Ordering::SeqCst) {
                    return Response::text(
                        503,
                        "gateway shut down while the request was in flight",
                    )
                    .with_retry_after(1)
                    .with_close();
                }
            }
            Err(e) => break Err(e),
        }
    };
    match answer {
        Ok(prediction) => {
            let mut body = format!("{{\"label\":{},\"logits\":[", prediction.label);
            for (i, logit) in prediction.logits.as_slice().iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                // Shortest-round-trip float formatting: parsing the JSON
                // number back as f32 reproduces the logit bit-for-bit.
                let _ = write!(body, "{logit}");
            }
            body.push_str("]}");
            Response::json(200, body)
        }
        Err(ServeError::DeadlineExpired { waited }) => Response::text(
            504,
            format!("deadline expired after {waited:?} in the serving queue"),
        ),
        Err(e) => Response::text(500, format!("inference failed: {e}")),
    }
}

/// `GET /health`: cheap liveness — never touches the admission queue.
fn health(state: &AppState) -> Response {
    let status = if state.shutting_down.load(Ordering::SeqCst) {
        "shutting-down"
    } else {
        "ok"
    };
    Response::json(
        200,
        format!(
            "{{\"status\":\"{status}\",\"workers\":{},\"queue_depth\":{}}}",
            state.server.workers(),
            state.server.queue_depth(),
        ),
    )
}

/// `GET /stats`: the human-readable telemetry dump, conservation-checked
/// (in debug builds a counter drift panics here — failing the test suite
/// — instead of publishing a wrong page).
fn stats(state: &AppState) -> Response {
    let server = state.server.stats();
    server.debug_assert_conserved();
    Response::text(
        200,
        format!(
            "--- server ---\n{server}\n--- gateway ---\n{}",
            state.recorder.snapshot()
        ),
    )
}

/// `GET /debug/trace`: the most recent request traces (plus the
/// background batch spans they reference) as Chrome trace-event JSON,
/// ready for Perfetto / `chrome://tracing`. Bounded two ways: the
/// tracer's rings cap resident records, and the page keeps only the
/// last [`DEBUG_TRACE_LIMIT`] trace ids.
fn trace(state: &AppState) -> Response {
    let tracer = state.server.tracer();
    if !tracer.is_enabled() {
        return Response::text(
            404,
            "tracing is disabled: build the server with ServerBuilder::with_tracer",
        );
    }
    let snapshot = tracer.snapshot();
    let recent: HashSet<u64> = snapshot
        .trace_ids()
        .into_iter()
        .rev()
        .take(DEBUG_TRACE_LIMIT)
        .collect();
    let bounded = snapshot.filtered(|r| r.trace_id == 0 || recent.contains(&r.trace_id));
    Response::json(200, bounded.to_chrome_json())
}

/// `GET /metrics`: the shared registry rendered as Prometheus text,
/// conservation-checked the same way as `/stats`. An
/// `Accept: application/openmetrics-text` header selects the
/// OpenMetrics rendering (exemplars on latency buckets, `# EOF`
/// trailer); anything else gets the classic 0.0.4 text format.
fn metrics(state: &AppState, request: &Request) -> Response {
    // Snapshot both layers first: this refreshes the scrape-time gauges
    // (queue depth, in-flight, uptimes) the render below will read, and
    // conservation-checks the page before publishing it.
    state.server.stats().debug_assert_conserved();
    let _ = state.recorder.snapshot();
    let registry = state.recorder.registry();
    let (page, content_type) = if crate::metrics::wants_openmetrics(request.header("accept")) {
        (
            registry.render_openmetrics(),
            crate::metrics::OPENMETRICS_CONTENT_TYPE,
        )
    } else {
        (registry.render(), crate::metrics::TEXT_CONTENT_TYPE)
    };
    Response {
        content_type,
        ..Response::text(200, page)
    }
}
