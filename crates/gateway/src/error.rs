//! Gateway-layer errors: socket setup and configuration failures, plus
//! the bridge into the umbrella [`snappix::Error`].

use std::fmt;

/// Everything that can go wrong standing up or tearing down a
/// [`Gateway`](crate::Gateway).
///
/// Per-request failures never surface here — they are answered on the
/// wire as HTTP status codes (400/413/429/503/504) so a misbehaving
/// client cannot take the front-end down. The enum is
/// `#[non_exhaustive]`: the gateway can grow failure modes (e.g. TLS
/// setup) without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GatewayError {
    /// Binding or configuring the listening socket failed.
    Bind {
        /// The address that was requested plus the OS error.
        context: String,
    },
    /// The builder was given an unusable configuration.
    Config {
        /// Human-readable description of the problem.
        context: String,
    },
    /// Spawning a gateway thread failed.
    Spawn {
        /// Which thread, plus the OS error.
        context: String,
    },
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Bind { context } => write!(f, "gateway bind failed: {context}"),
            GatewayError::Config { context } => write!(f, "gateway misconfigured: {context}"),
            GatewayError::Spawn { context } => write!(f, "gateway thread spawn failed: {context}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<GatewayError> for snappix::Error {
    fn from(e: GatewayError) -> Self {
        snappix::Error::Gateway(Box::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases = [
            (
                GatewayError::Bind {
                    context: "127.0.0.1:80: permission denied".into(),
                }
                .to_string(),
                "permission denied",
            ),
            (
                GatewayError::Config {
                    context: "rate limit of 0 rps".into(),
                }
                .to_string(),
                "0 rps",
            ),
            (
                GatewayError::Spawn {
                    context: "acceptor: EAGAIN".into(),
                }
                .to_string(),
                "acceptor",
            ),
        ];
        for (display, needle) in cases {
            assert!(display.contains(needle), "{display} should name {needle}");
        }
    }

    #[test]
    fn converts_into_the_umbrella_error() {
        let unified: snappix::Error = GatewayError::Bind {
            context: "in use".into(),
        }
        .into();
        assert!(matches!(unified, snappix::Error::Gateway(_)));
        assert!(unified.to_string().contains("in use"));
        let source = std::error::Error::source(&unified).expect("chained");
        assert!(source.downcast_ref::<GatewayError>().is_some());
    }
}
