//! Minimal HTTP/1.1 framing — just enough protocol for the gateway's
//! four endpoints, with no external dependencies (mirroring the
//! workspace's vendored-only policy).
//!
//! Supported: request-line + header parsing, `Content-Length` bodies,
//! keep-alive (HTTP/1.1 default, `Connection: close` honoured,
//! HTTP/1.0 defaults to close), and bounded head/body sizes so a
//! misbehaving client costs a bounded amount of memory. Deliberately
//! not supported: chunked transfer encoding (501), HTTP/2, TLS.

use std::io::{self, BufRead, Read, Write};

/// Hard cap on the request line + headers, after which parsing fails
/// with `431 Request Header Fields Too Large`.
pub(crate) const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request, plus the accounting the gateway's byte counters
/// need.
#[derive(Debug)]
pub(crate) struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any `?query` suffix stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Total bytes consumed off the wire for this request.
    pub bytes_read: usize,
    /// Whether the connection should be kept open after responding.
    pub keep_alive: bool,
}

impl Request {
    /// First value of `name` (must be lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub(crate) enum ParseError {
    /// The peer closed the connection cleanly before sending anything —
    /// the normal end of a keep-alive session, not an error to report.
    Closed,
    /// Socket-level failure (reset, read timeout, ...); the connection
    /// is unusable. The payload is carried for `Debug` logging only.
    #[allow(dead_code)]
    Io(io::Error),
    /// The bytes were not a request this gateway serves; answer with
    /// `status` and close (framing may be unrecoverable).
    Malformed {
        /// HTTP status to answer with (400/411/413/431/501/505).
        status: u16,
        /// Human-readable reason, sent as the response body.
        reason: String,
    },
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads one request off `reader`, enforcing [`MAX_HEAD_BYTES`] on the
/// head and `max_body` on the body.
pub(crate) fn read_request<R: BufRead>(
    reader: &mut R,
    max_body: usize,
) -> Result<Request, ParseError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line(reader, &mut head_bytes)? {
        Some(line) => line,
        None => return Err(ParseError::Closed),
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => {
            return Err(malformed(400, format!("bad request line {request_line:?}")));
        }
    };
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(malformed(505, format!("unsupported version {other:?}"))),
    };

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut head_bytes)? {
            Some(line) => line,
            None => return Err(malformed(400, "connection closed mid-headers".into())),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed(400, format!("malformed header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(malformed(501, "chunked bodies are not supported".into()));
    }
    let content_length = match find("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| malformed(400, format!("bad content-length {v:?}")))?,
        None if method == "POST" => {
            return Err(malformed(411, "POST requires content-length".into()));
        }
        None => 0,
    };
    if content_length > max_body {
        return Err(malformed(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => keep_alive_default,
    };
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request {
        method: method.to_string(),
        path,
        headers,
        body,
        bytes_read: head_bytes + content_length,
        keep_alive,
    })
}

fn malformed(status: u16, reason: String) -> ParseError {
    ParseError::Malformed { status, reason }
}

/// One CRLF- (or bare-LF-) terminated line, with the shared head-size
/// budget decremented. `Ok(None)` is clean EOF before any byte of the
/// line.
fn read_line<R: BufRead>(
    reader: &mut R,
    head_bytes: &mut usize,
) -> Result<Option<String>, ParseError> {
    let mut raw = Vec::new();
    let budget = MAX_HEAD_BYTES - *head_bytes;
    if budget == 0 {
        return Err(malformed(431, "request head too large".into()));
    }
    let read = reader
        .take(budget as u64)
        .read_until(b'\n', &mut raw)
        .map_err(ParseError::Io)?;
    if read == 0 {
        return Ok(None);
    }
    *head_bytes += read;
    if raw.last() != Some(&b'\n') {
        // Either the head outgrew its budget or the peer died mid-line.
        if *head_bytes >= MAX_HEAD_BYTES {
            return Err(malformed(431, "request head too large".into()));
        }
        return Err(malformed(400, "connection closed mid-line".into()));
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| malformed(400, "request head is not UTF-8".into()))
}

/// One response, serialized by [`Response::write_to`].
#[derive(Debug)]
pub(crate) struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Emits a `Retry-After: <seconds>` header (the 429/503 backoff
    /// contract).
    pub retry_after: Option<u64>,
    /// Emits `Connection: close` and ends the session after writing.
    pub close: bool,
    /// The request's trace context, echoed as an `X-Snappix-Trace`
    /// header (the id) and used by the connection loop to record the
    /// `respond` span into the right trace.
    pub trace: Option<snappix_trace::SpanCtx>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
            close: false,
            trace: None,
        }
    }

    /// An `application/json` response (the body must already be JSON).
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            content_type: "application/json",
            ..Response::text(status, body)
        }
    }

    /// Adds a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Marks the connection for closing after this response.
    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    /// Attaches the request's trace context: the id is echoed back as
    /// an `X-Snappix-Trace` header.
    pub fn with_trace(mut self, trace: snappix_trace::SpanCtx) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Serializes status line, headers and body, returning the bytes
    /// written (the gateway's `bytes_written` counter).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<usize> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("retry-after: {seconds}\r\n"));
        }
        if let Some(trace) = &self.trace {
            head.push_str(&format!("x-snappix-trace: {}\r\n", trace.trace_id));
        }
        if self.close {
            head.push_str("connection: close\r\n");
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()?;
        Ok(head.len() + self.body.len())
    }
}

/// Canonical reason phrase for the statuses the gateway emits.
pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8], max_body: usize) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw), max_body)
    }

    #[test]
    fn parses_a_post_with_body_and_accounts_bytes() {
        let raw = b"POST /v1/classify?tier=s HTTP/1.1\r\n\
                    Content-Length: 4\r\n\
                    X-Snappix-Deadline-Ms: 50\r\n\
                    \r\n\
                    \x01\x02\x03\x04";
        let req = parse(raw, 16).expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/classify", "query is stripped");
        assert_eq!(req.body, [1, 2, 3, 4]);
        assert_eq!(req.header("x-snappix-deadline-ms"), Some("50"));
        assert_eq!(req.bytes_read, raw.len(), "every byte accounted");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 0).expect("parses");
        assert!(!close.keep_alive);
        let old = parse(b"GET / HTTP/1.0\r\n\r\n", 0).expect("parses");
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let pinned = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 0).expect("parses");
        assert!(pinned.keep_alive);
    }

    #[test]
    fn malformed_requests_map_to_the_right_statuses() {
        let cases: [(&[u8], u16); 6] = [
            (b"NONSENSE\r\n\r\n", 400),
            (b"GET / HTTP/2\r\n\r\n", 505),
            (b"POST / HTTP/1.1\r\n\r\n", 411),
            (b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 413),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
            (b"GET / HTTP/1.1\r\nno-colon\r\n\r\n", 400),
        ];
        for (raw, expected) in cases {
            match parse(raw, 8) {
                Err(ParseError::Malformed { status, .. }) => {
                    assert_eq!(status, expected, "{:?}", String::from_utf8_lossy(raw));
                }
                other => panic!("expected {expected}, got {other:?}"),
            }
        }
    }

    #[test]
    fn clean_eof_is_closed_and_oversized_heads_are_431() {
        assert!(matches!(parse(b"", 0), Err(ParseError::Closed)));
        let mut huge = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        while huge.len() < MAX_HEAD_BYTES + 64 {
            huge.extend_from_slice(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        huge.extend_from_slice(b"\r\n");
        match parse(&huge, 0) {
            Err(ParseError::Malformed { status: 431, .. }) => {}
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn responses_serialize_with_framing_headers() {
        let mut out = Vec::new();
        let written = Response::json(503, "{\"error\":\"overloaded\"}")
            .with_retry_after(2)
            .with_close()
            .write_to(&mut out)
            .expect("in-memory write");
        let text = String::from_utf8(out).expect("utf-8");
        assert_eq!(written, text.len());
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("content-length: 22\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"overloaded\"}"));
    }

    #[test]
    fn trace_context_is_echoed_as_a_header() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_trace(snappix_trace::SpanCtx {
                trace_id: 42,
                span_id: 9,
            })
            .write_to(&mut out)
            .expect("in-memory write");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.contains("x-snappix-trace: 42\r\n"), "{text}");
        assert!(
            !text.contains("x-snappix-trace: 9"),
            "span id stays internal: {text}"
        );
    }

    #[test]
    fn a_keep_alive_session_parses_back_to_back_requests() {
        let raw: &[u8] = b"GET /health HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw);
        let first = read_request(&mut reader, 0).expect("first");
        assert_eq!(first.path, "/health");
        let second = read_request(&mut reader, 0).expect("second");
        assert_eq!(second.path, "/metrics");
        assert!(matches!(
            read_request(&mut reader, 0),
            Err(ParseError::Closed)
        ));
    }
}
