//! Clip augmentations.
//!
//! The paper's training recipe counts epochs as "repeated augmentations x
//! epochs" (Sec. VI-A); these are the augmentations the harness applies:
//! horizontal flips, brightness jitter in linear light, and temporal
//! reversal for classes where it yields a valid clip.

use crate::Video;
use rand::Rng;
use snappix_tensor::{Tensor, TensorError};

/// Horizontally mirrors every frame.
///
/// # Examples
///
/// ```
/// use snappix_video::{augment, Video};
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_tensor::TensorError> {
/// let v = Video::new(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2])?)?;
/// let f = augment::flip_horizontal(&v);
/// assert_eq!(f.frames().as_slice(), &[2.0, 1.0, 4.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn flip_horizontal(video: &Video) -> Video {
    let (t, h, w) = (video.num_frames(), video.height(), video.width());
    let mut out = Tensor::zeros(&[t, h, w]);
    let src = video.frames().as_slice();
    let dst = out.as_mut_slice();
    for f in 0..t {
        for y in 0..h {
            for x in 0..w {
                dst[(f * h + y) * w + x] = src[(f * h + y) * w + (w - 1 - x)];
            }
        }
    }
    Video::new(out).expect("same rank by construction")
}

/// Reverses the frame order (time reversal).
pub fn reverse_time(video: &Video) -> Video {
    let t = video.num_frames();
    let mut frames = Vec::with_capacity(t);
    for f in (0..t).rev() {
        frames.push(video.frame(f).expect("index within clip"));
    }
    let refs: Vec<&Tensor> = frames.iter().collect();
    Video::new(Tensor::stack(&refs, 0).expect("uniform shapes")).expect("rank 3")
}

/// Scales intensities by `gain` (linear light) and clamps to `[0, 1]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for a non-positive gain.
pub fn brightness(video: &Video, gain: f32) -> Result<Video, TensorError> {
    if gain <= 0.0 || !gain.is_finite() {
        return Err(TensorError::InvalidArgument {
            context: format!("brightness gain {gain} must be positive"),
        });
    }
    Video::new(video.frames().scale(gain).clamp(0.0, 1.0))
}

/// Randomly composes the augmentations: each is applied independently
/// with probability 1/2 (brightness gain drawn from `[0.8, 1.2]`).
pub fn random_augment<R: Rng + ?Sized>(video: &Video, rng: &mut R) -> Video {
    let mut v = video.clone();
    if rng.random::<f32>() < 0.5 {
        v = flip_horizontal(&v);
    }
    if rng.random::<f32>() < 0.5 {
        let gain = rng.random_range(0.8..1.2);
        v = brightness(&v, gain).expect("gain in valid range");
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn clip() -> Video {
        Video::new(
            Tensor::arange(2 * 2 * 3)
                .reshape(&[2, 2, 3])
                .unwrap()
                .scale(0.05),
        )
        .unwrap()
    }

    #[test]
    fn flip_is_involution() {
        let v = clip();
        assert_eq!(flip_horizontal(&flip_horizontal(&v)), v);
        assert_ne!(flip_horizontal(&v), v);
    }

    #[test]
    fn reverse_is_involution_and_swaps_ends() {
        let v = clip();
        let r = reverse_time(&v);
        assert_eq!(reverse_time(&r), v);
        assert_eq!(r.frame(0).unwrap(), v.frame(1).unwrap());
    }

    #[test]
    fn brightness_scales_and_clamps() {
        let v = clip();
        let b = brightness(&v, 2.0).unwrap();
        assert!(b.frames().max() <= 1.0);
        assert!(b.frames().mean() > v.frames().mean());
        assert!(brightness(&v, 0.0).is_err());
        assert!(brightness(&v, f32::NAN).is_err());
    }

    #[test]
    fn flip_preserves_energy() {
        let v = clip();
        let f = flip_horizontal(&v);
        assert!((f.frames().sum() - v.frames().sum()).abs() < 1e-5);
    }

    #[test]
    fn random_augment_is_seed_deterministic() {
        let v = clip();
        let a = random_augment(&v, &mut StdRng::seed_from_u64(3));
        let b = random_augment(&v, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn random_augment_stays_in_unit_range() {
        let v = clip();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let a = random_augment(&v, &mut rng);
            assert!(a.frames().min() >= 0.0);
            assert!(a.frames().max() <= 1.0);
        }
    }
}
