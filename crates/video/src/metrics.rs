//! Quality metrics.

use snappix_tensor::{Tensor, TensorError};

/// Peak signal-to-noise ratio in decibels between a reference and a
/// reconstruction, assuming a peak signal of 1.0 (linear-light videos in
/// `[0, 1]`).
///
/// This is the paper's reconstruction metric (REC task, Sec. VI-A).
/// Identical inputs return `f32::INFINITY`.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] when the shapes differ.
///
/// # Examples
///
/// ```
/// use snappix_video::psnr;
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_tensor::TensorError> {
/// let a = Tensor::full(&[4, 4], 0.5);
/// let b = Tensor::full(&[4, 4], 0.6);
/// let db = psnr(&a, &b)?;
/// assert!((db - 20.0).abs() < 0.01); // MSE 0.01 -> 20 dB
/// # Ok(())
/// # }
/// ```
pub fn psnr(reference: &Tensor, reconstruction: &Tensor) -> Result<f32, TensorError> {
    if reference.shape() != reconstruction.shape() {
        return Err(TensorError::IncompatibleShapes {
            context: format!(
                "psnr of {:?} vs {:?}",
                reference.shape(),
                reconstruction.shape()
            ),
        });
    }
    let diff = reference.sub(reconstruction)?;
    let mse = diff.mul(&diff)?.mean();
    if mse <= 0.0 {
        return Ok(f32::INFINITY);
    }
    Ok(-10.0 * mse.log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_infinite() {
        let a = Tensor::full(&[3, 3], 0.25);
        assert_eq!(psnr(&a, &a).unwrap(), f32::INFINITY);
    }

    #[test]
    fn known_mse_values() {
        let a = Tensor::zeros(&[10]);
        let b = Tensor::full(&[10], 0.1); // MSE = 0.01 -> 20 dB
        assert!((psnr(&a, &b).unwrap() - 20.0).abs() < 1e-4);
        let c = Tensor::full(&[10], 1.0); // MSE = 1 -> 0 dB
        assert!(psnr(&a, &c).unwrap().abs() < 1e-4);
    }

    #[test]
    fn better_reconstruction_scores_higher() {
        let reference = Tensor::linspace(0.0, 1.0, 100);
        let close = reference.add_scalar(0.01);
        let far = reference.add_scalar(0.2);
        assert!(psnr(&reference, &close).unwrap() > psnr(&reference, &far).unwrap());
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(psnr(&Tensor::zeros(&[2]), &Tensor::zeros(&[3])).is_err());
    }
}
