//! The video container type.

use snappix_tensor::{Tensor, TensorError};

/// A grayscale video clip in linear light: a `[t, h, w]` tensor with values
/// in `[0, 1]`.
///
/// The paper converts all datasets to grayscale in linear space before
/// simulating coded exposure (Sec. VI-A); this type is the in-memory
/// equivalent of one such clip.
///
/// # Examples
///
/// ```
/// use snappix_video::Video;
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_tensor::TensorError> {
/// let v = Video::new(Tensor::zeros(&[16, 32, 32]))?;
/// assert_eq!(v.num_frames(), 16);
/// assert_eq!(v.height(), 32);
/// assert_eq!(v.width(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Video {
    frames: Tensor,
}

impl Video {
    /// Wraps a `[t, h, w]` tensor as a video.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-3 tensors.
    pub fn new(frames: Tensor) -> Result<Self, TensorError> {
        if frames.rank() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: frames.rank(),
            });
        }
        Ok(Video { frames })
    }

    /// The underlying `[t, h, w]` tensor.
    pub fn frames(&self) -> &Tensor {
        &self.frames
    }

    /// Consumes the video, returning the frame tensor.
    pub fn into_frames(self) -> Tensor {
        self.frames
    }

    /// Number of frames `t`.
    pub fn num_frames(&self) -> usize {
        self.frames.shape()[0]
    }

    /// Frame height.
    pub fn height(&self) -> usize {
        self.frames.shape()[1]
    }

    /// Frame width.
    pub fn width(&self) -> usize {
        self.frames.shape()[2]
    }

    /// One frame as an `[h, w]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfRange`] for a bad index.
    pub fn frame(&self, t: usize) -> Result<Tensor, TensorError> {
        self.frames.index_axis(0, t)
    }

    /// Temporal average of all frames (`[h, w]`), i.e. what a full-length
    /// conventional exposure would capture up to normalization.
    pub fn temporal_mean(&self) -> Tensor {
        self.frames
            .mean_axis(0, false)
            .expect("rank-3 invariant guarantees axis 0 exists")
    }

    /// Spatially downsamples every frame by `factor x factor` average
    /// pooling — the paper's "simple compression baseline" (Sec. VI-D)
    /// downsamples 4x4 to match SnapPix's 16x rate.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when the frame extents are
    /// not divisible by `factor`.
    pub fn spatial_downsample(&self, factor: usize) -> Result<Video, TensorError> {
        let (t, h, w) = (self.num_frames(), self.height(), self.width());
        if factor == 0 || h % factor != 0 || w % factor != 0 {
            return Err(TensorError::InvalidArgument {
                context: format!("factor {factor} does not divide {h}x{w}"),
            });
        }
        let (oh, ow) = (h / factor, w / factor);
        let mut out = Tensor::zeros(&[t, oh, ow]);
        let src = self.frames.as_slice();
        let dst = out.as_mut_slice();
        let norm = 1.0 / (factor * factor) as f32;
        for f in 0..t {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for dy in 0..factor {
                        for dx in 0..factor {
                            acc += src[(f * h + oy * factor + dy) * w + ox * factor + dx];
                        }
                    }
                    dst[(f * oh + oy) * ow + ox] = acc * norm;
                }
            }
        }
        Video::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_wrong_rank() {
        assert!(Video::new(Tensor::zeros(&[4, 4])).is_err());
        assert!(Video::new(Tensor::zeros(&[2, 4, 4])).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Video::new(Tensor::arange(2 * 3 * 4).reshape(&[2, 3, 4]).unwrap()).unwrap();
        assert_eq!(v.num_frames(), 2);
        assert_eq!(v.height(), 3);
        assert_eq!(v.width(), 4);
        let f1 = v.frame(1).unwrap();
        assert_eq!(f1.shape(), &[3, 4]);
        assert_eq!(f1.get(&[0, 0]).unwrap(), 12.0);
        assert!(v.frame(2).is_err());
        assert_eq!(v.clone().into_frames().len(), 24);
    }

    #[test]
    fn temporal_mean_averages_frames() {
        let f0 = Tensor::zeros(&[2, 2]);
        let f1 = Tensor::full(&[2, 2], 2.0);
        let frames = Tensor::stack(&[&f0, &f1], 0).unwrap();
        let v = Video::new(frames).unwrap();
        assert_eq!(v.temporal_mean().as_slice(), &[1.0; 4]);
    }

    #[test]
    fn downsample_averages_blocks() {
        let frame = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 2, 2]).unwrap();
        let v = Video::new(frame).unwrap();
        let d = v.spatial_downsample(2).unwrap();
        assert_eq!(d.frames().as_slice(), &[1.5]);
        assert!(v.spatial_downsample(3).is_err());
        assert!(v.spatial_downsample(0).is_err());
    }
}
