//! The video container type.

use snappix_tensor::{Tensor, TensorError};

/// A grayscale video clip in linear light: a `[t, h, w]` tensor with values
/// in `[0, 1]`.
///
/// The paper converts all datasets to grayscale in linear space before
/// simulating coded exposure (Sec. VI-A); this type is the in-memory
/// equivalent of one such clip.
///
/// # Examples
///
/// ```
/// use snappix_video::Video;
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_tensor::TensorError> {
/// let v = Video::new(Tensor::zeros(&[16, 32, 32]))?;
/// assert_eq!(v.num_frames(), 16);
/// assert_eq!(v.height(), 32);
/// assert_eq!(v.width(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Video {
    frames: Tensor,
}

impl Video {
    /// Wraps a `[t, h, w]` tensor as a video.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-3 tensors.
    pub fn new(frames: Tensor) -> Result<Self, TensorError> {
        if frames.rank() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: frames.rank(),
            });
        }
        Ok(Video { frames })
    }

    /// The underlying `[t, h, w]` tensor.
    pub fn frames(&self) -> &Tensor {
        &self.frames
    }

    /// Consumes the video, returning the frame tensor.
    pub fn into_frames(self) -> Tensor {
        self.frames
    }

    /// Number of frames `t`.
    pub fn num_frames(&self) -> usize {
        self.frames.shape()[0]
    }

    /// Frame height.
    pub fn height(&self) -> usize {
        self.frames.shape()[1]
    }

    /// Frame width.
    pub fn width(&self) -> usize {
        self.frames.shape()[2]
    }

    /// One frame as an `[h, w]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfRange`] for a bad index.
    pub fn frame(&self, t: usize) -> Result<Tensor, TensorError> {
        self.frames.index_axis(0, t)
    }

    /// Temporal average of all frames (`[h, w]`), i.e. what a full-length
    /// conventional exposure would capture up to normalization.
    pub fn temporal_mean(&self) -> Tensor {
        self.frames
            .mean_axis(0, false)
            .expect("rank-3 invariant guarantees axis 0 exists")
    }

    /// Iterates over sliding `[t, h, w]` windows of the clip: window `k`
    /// covers frames `[k * hop, k * hop + t)`, so consecutive windows
    /// overlap when `hop < t`, tile the clip when `hop == t`, and skip
    /// frames when `hop > t`. A trailing stretch shorter than `t` frames
    /// is dropped — every yielded window is full-length.
    ///
    /// This is the offline face of streaming inference: a real-time
    /// window assembler over the same frame sequence must produce
    /// exactly these tensors (`snappix-stream` pins that equivalence).
    ///
    /// `hop` is clamped to at least 1; a window longer than the clip
    /// (or `t == 0`) yields nothing.
    ///
    /// # Examples
    ///
    /// ```
    /// use snappix_video::Video;
    /// use snappix_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), snappix_tensor::TensorError> {
    /// let v = Video::new(Tensor::arange(5 * 2 * 2).reshape(&[5, 2, 2])?)?;
    /// let windows: Vec<Tensor> = v.windows(2, 3).collect();
    /// assert_eq!(windows.len(), 2); // frames [0, 2) and [3, 5)
    /// assert_eq!(windows[1].shape(), &[2, 2, 2]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn windows(&self, t: usize, hop: usize) -> Windows<'_> {
        Windows {
            video: self,
            t,
            hop: hop.max(1),
            next_start: 0,
        }
    }

    /// Spatially downsamples every frame by `factor x factor` average
    /// pooling — the paper's "simple compression baseline" (Sec. VI-D)
    /// downsamples 4x4 to match SnapPix's 16x rate.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when the frame extents are
    /// not divisible by `factor`.
    pub fn spatial_downsample(&self, factor: usize) -> Result<Video, TensorError> {
        let (t, h, w) = (self.num_frames(), self.height(), self.width());
        if factor == 0 || h % factor != 0 || w % factor != 0 {
            return Err(TensorError::InvalidArgument {
                context: format!("factor {factor} does not divide {h}x{w}"),
            });
        }
        let (oh, ow) = (h / factor, w / factor);
        let mut out = Tensor::zeros(&[t, oh, ow]);
        let src = self.frames.as_slice();
        let dst = out.as_mut_slice();
        let norm = 1.0 / (factor * factor) as f32;
        for f in 0..t {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for dy in 0..factor {
                        for dx in 0..factor {
                            acc += src[(f * h + oy * factor + dy) * w + ox * factor + dx];
                        }
                    }
                    dst[(f * oh + oy) * ow + ox] = acc * norm;
                }
            }
        }
        Video::new(out)
    }
}

/// Iterator over sliding `[t, h, w]` windows of a [`Video`], created by
/// [`Video::windows`].
///
/// Each window is a freshly-allocated contiguous tensor (one memcpy of
/// `t` frames from the clip), ready to feed `Pipeline::infer_clip` or a
/// serving submission directly.
#[derive(Debug, Clone)]
pub struct Windows<'a> {
    video: &'a Video,
    t: usize,
    hop: usize,
    next_start: usize,
}

impl Iterator for Windows<'_> {
    type Item = Tensor;

    fn next(&mut self) -> Option<Tensor> {
        let n = self.video.num_frames();
        if self.t == 0 || self.next_start + self.t > n {
            return None;
        }
        let (h, w) = (self.video.height(), self.video.width());
        let frame_len = h * w;
        let src = self.video.frames().as_slice();
        let start = self.next_start * frame_len;
        let data = src[start..start + self.t * frame_len].to_vec();
        self.next_start += self.hop;
        Some(Tensor::from_vec(data, &[self.t, h, w]).expect("window data matches its shape"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.video.num_frames();
        let left = if self.t == 0 || self.next_start + self.t > n {
            0
        } else {
            (n - self.t - self.next_start) / self.hop + 1
        };
        (left, Some(left))
    }
}

impl ExactSizeIterator for Windows<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_wrong_rank() {
        assert!(Video::new(Tensor::zeros(&[4, 4])).is_err());
        assert!(Video::new(Tensor::zeros(&[2, 4, 4])).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Video::new(Tensor::arange(2 * 3 * 4).reshape(&[2, 3, 4]).unwrap()).unwrap();
        assert_eq!(v.num_frames(), 2);
        assert_eq!(v.height(), 3);
        assert_eq!(v.width(), 4);
        let f1 = v.frame(1).unwrap();
        assert_eq!(f1.shape(), &[3, 4]);
        assert_eq!(f1.get(&[0, 0]).unwrap(), 12.0);
        assert!(v.frame(2).is_err());
        assert_eq!(v.clone().into_frames().len(), 24);
    }

    #[test]
    fn temporal_mean_averages_frames() {
        let f0 = Tensor::zeros(&[2, 2]);
        let f1 = Tensor::full(&[2, 2], 2.0);
        let frames = Tensor::stack(&[&f0, &f1], 0).unwrap();
        let v = Video::new(frames).unwrap();
        assert_eq!(v.temporal_mean().as_slice(), &[1.0; 4]);
    }

    /// A 10-frame video whose frame `i` is constant `i`, so a window's
    /// content identifies exactly which frames it covers.
    fn counting_video(n: usize) -> Video {
        let mut data = Vec::with_capacity(n * 4);
        for i in 0..n {
            data.extend([i as f32; 4]);
        }
        Video::new(Tensor::from_vec(data, &[n, 2, 2]).unwrap()).unwrap()
    }

    fn starts(v: &Video, t: usize, hop: usize) -> Vec<usize> {
        v.windows(t, hop)
            .map(|w| w.as_slice()[0] as usize)
            .collect()
    }

    #[test]
    fn windows_with_hop_one_slide_densely() {
        let v = counting_video(5);
        // n - t + 1 windows, starting at every frame.
        assert_eq!(starts(&v, 3, 1), vec![0, 1, 2]);
        let first = v.windows(3, 1).next().unwrap();
        assert_eq!(first.shape(), &[3, 2, 2]);
        assert_eq!(
            first.as_slice(),
            &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0],
            "window content is the contiguous frame run"
        );
        assert_eq!(v.windows(3, 1).len(), 3, "exact size hint");
    }

    #[test]
    fn windows_with_hop_beyond_t_skip_frames() {
        let v = counting_video(10);
        // hop 4 > t 2: frames 2-3 and 6-7 belong to no window.
        assert_eq!(starts(&v, 2, 4), vec![0, 4, 8]);
        for (k, w) in v.windows(2, 4).enumerate() {
            assert_eq!(w.as_slice()[0] as usize, k * 4);
            assert_eq!(w.as_slice()[4] as usize, k * 4 + 1);
        }
    }

    #[test]
    fn windows_drop_a_partial_tail() {
        // 10 frames, t = 3, hop = 3: windows at 0, 3, 6 — frame 9 alone
        // cannot fill a window and is dropped.
        let v = counting_video(10);
        assert_eq!(starts(&v, 3, 3), vec![0, 3, 6]);
        // hop 2 with t 3 over 10 frames: starts 0, 2, 4, 6 — a window at
        // 8 would need frame 10, so the tail is dropped.
        assert_eq!(starts(&v, 3, 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn windows_degenerate_cases() {
        let v = counting_video(4);
        assert_eq!(v.windows(5, 1).count(), 0, "window longer than the clip");
        assert_eq!(v.windows(0, 1).count(), 0, "zero-length window");
        assert_eq!(starts(&v, 4, 1), vec![0], "window == clip is one window");
        assert_eq!(starts(&v, 2, 0), vec![0, 1, 2], "hop 0 clamps to 1");
        let mut it = v.windows(2, 3);
        assert_eq!(it.size_hint(), (1, Some(1)));
        it.next();
        assert_eq!(it.size_hint(), (0, Some(0)));
    }

    #[test]
    fn downsample_averages_blocks() {
        let frame = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 2, 2]).unwrap();
        let v = Video::new(frame).unwrap();
        let d = v.spatial_downsample(2).unwrap();
        assert_eq!(d.frames().as_slice(), &[1.5]);
        assert!(v.spatial_downsample(3).is_err());
        assert!(v.spatial_downsample(0).is_err());
    }
}
